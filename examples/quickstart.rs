//! Quickstart: the two halves of the system in five minutes.
//!
//! 1. The in-memory side — parse an XML document and run an XQuery update
//!    statement against it (paper Sections 3–4).
//! 2. The relational side — shred a document into tables, run the same
//!    style of update through SQL translation, and look at what the engine
//!    actually executed (paper Sections 5–6).
//!
//! Run with: `cargo run --example quickstart`

use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_xml::{dtd::Dtd, parse_with, samples, serializer, ParseOptions};
use xmlup_xquery::Store;

fn main() {
    // ----------------------------------------------------------------
    // 1. In-memory documents + XQuery updates
    // ----------------------------------------------------------------
    let opts = ParseOptions::with_ref_attrs(samples::BIO_REF_ATTRS);
    let doc = parse_with(samples::BIO_XML, &opts)
        .expect("bio.xml parses")
        .doc;

    let mut store = Store::new();
    store.parse_opts = opts;
    store.add_document("bio.xml", doc);

    // Paper Example 2: extend biologist smith1.
    store
        .execute_str(
            r#"FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
               UPDATE $bio {
                   INSERT new_attribute(age,"29"),
                   INSERT new_ref(worksAt,"ucla"),
                   INSERT <firstname>Jeff</firstname>
               }"#,
        )
        .expect("update applies");

    let doc = store.document("bio.xml").unwrap();
    let smith = doc.resolve_ref("smith1").unwrap();
    println!("== smith1 after Example 2 ==");
    println!(
        "{}\n",
        serializer::subtree_to_string(doc, smith, &Default::default())
    );

    // ----------------------------------------------------------------
    // 2. XML shredded into relations + SQL-translated updates
    // ----------------------------------------------------------------
    let dtd = Dtd::parse(samples::CUSTOMER_DTD).expect("Figure 4 DTD parses");
    let custdoc = xmlup_xml::parse(samples::CUSTOMER_XML)
        .expect("customer doc parses")
        .doc;

    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            delete_strategy: DeleteStrategy::PerTupleTrigger,
            insert_strategy: InsertStrategy::Table,
            ..RepoConfig::default()
        },
    )
    .expect("schema builds");
    let tuples = repo.load(&custdoc).expect("document shreds");
    println!(
        "== shredded {tuples} tuples into tables {:?} ==",
        repo.db.table_names()
    );

    // Paper Example 9: delete customers named John. With per-tuple
    // triggers this is ONE SQL statement; the engine cascades.
    repo.reset_stats();
    let n = repo
        .execute_xquery(
            r#"FOR $d IN document("custdb.xml")/CustDB,
                   $c IN $d/Customer[Name="John"]
               UPDATE $d { DELETE $c }"#,
        )
        .expect("delete translates and runs");
    let stats = repo.stats();
    println!(
        "deleted {n} customers with {} client SQL statement(s); \
         {} trigger firing(s) cascaded the subtree deletes",
        stats.client_statements, stats.trigger_firings
    );

    // Fetch what's left through the Sorted Outer Union.
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let (xml, roots) = repo.fetch(cust, None).expect("outer union runs");
    println!("\n== remaining customers (reconstructed from tuples) ==");
    for r in roots {
        println!(
            "{}",
            serializer::subtree_to_string(&xml, r, &Default::default())
        );
    }
}
