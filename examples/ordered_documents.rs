//! The two Section 8 extensions working together: an order-preserving
//! repository (gap-based `pos_` columns, positional XQuery inserts) and
//! typechecked in-memory updates that roll back DTD violations.
//!
//! Run with: `cargo run --example ordered_documents`

use xmlup_core::{InsertAt, RepoConfig, XmlRepository};
use xmlup_rdb::Value;
use xmlup_shred::loader::unshred;
use xmlup_xml::dtd::Dtd;
use xmlup_xml::samples::{CUSTOMER_DTD, CUSTOMER_XML};
use xmlup_xquery::Store;

fn main() {
    // ----------------------------------------------------------------
    // 1. Order-preserving relational storage
    // ----------------------------------------------------------------
    let dtd = Dtd::parse(
        "<!ELEMENT playlist (track*)>
         <!ELEMENT track (title, artist)>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT artist (#PCDATA)>",
    )
    .unwrap();
    let doc = xmlup_xml::parse(
        "<playlist>
           <track><title>One</title><artist>A</artist></track>
           <track><title>Two</title><artist>B</artist></track>
           <track><title>Three</title><artist>C</artist></track>
         </playlist>",
    )
    .unwrap()
    .doc;

    let mut repo = XmlRepository::new_ordered(&dtd, "playlist", RepoConfig::default()).unwrap();
    repo.load(&doc).unwrap();
    let track = repo.mapping.relation_by_element("track").unwrap();

    // Positional insert through the XQuery update language (the paper's
    // Example 3 pattern, translated to SQL over the pos_ column).
    repo.execute_xquery(
        r#"FOR $p IN document("pl")/playlist,
               $t IN $p/track[title="Two"]
           UPDATE $p {
               INSERT <track><title>One-and-a-half</title><artist>X</artist></track>
               BEFORE $t
           }"#,
    )
    .unwrap();

    // And one through the direct API, with the renumbering counter.
    let anchor = repo.ids_of(track)[0];
    let ins = repo
        .insert_tuple_at(
            track,
            repo.root_id().unwrap(),
            &[
                ("title".to_string(), Value::from("Zero")),
                ("artist".to_string(), Value::from("Y")),
            ],
            InsertAt::Before(anchor),
        )
        .unwrap();
    println!(
        "positional insert got pos={} (renumbered: {})",
        ins.pos, ins.renumbered
    );

    let rebuilt = unshred(&mut repo.db, &repo.mapping).unwrap();
    println!("\n== playlist in stored order ==");
    for &t in rebuilt.children(rebuilt.root()) {
        println!("  {}", rebuilt.string_value(rebuilt.children(t)[0]));
    }

    // ----------------------------------------------------------------
    // 2. Typechecked updates (validate against the DTD, roll back on
    //    violation)
    // ----------------------------------------------------------------
    let custdtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let custdoc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut store = Store::new();
    store.add_document("custdb.xml", custdoc);

    println!("\n== typechecked updates ==");
    let ok = store.execute_checked(
        r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"]
           UPDATE $c {
               INSERT <Order><Date>2001-05-21</Date>
                      <OrderLine><ItemName>pump</ItemName><Qty>1</Qty></OrderLine>
                      </Order>
           }"#,
        &[("custdb.xml", &custdtd)],
    );
    println!("valid order insert: {:?}", ok.is_ok());

    let bad = store.execute_checked(
        r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"],
               $n IN $c/Name
           UPDATE $c { DELETE $n }"#,
        &[("custdb.xml", &custdtd)],
    );
    match bad {
        Err(e) => println!("invalid name delete: rejected and rolled back\n  ({e})"),
        Ok(_) => unreachable!("deleting a required child must fail validation"),
    }
    // Mary still intact:
    let d = store.document("custdb.xml").unwrap();
    let names = d
        .descendants(d.root())
        .filter(|&n| d.name(n) == Some("Name"))
        .count();
    println!("customers with a Name after rollback: {names}");
}
