//! The relational pipeline on a generated customer database: shred,
//! query via the Sorted Outer Union, and compare the paper's delete and
//! insert strategies on identical data — reporting the engine's own
//! statement/scan counters instead of wall time, so the differences the
//! paper reasons about are visible deterministically.
//!
//! Run with: `cargo run --example customer_orders`

use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_workload::customer::{customer_document, customer_dtd, CustomerParams};
use xmlup_workload::{run_delete, run_insert, Workload};

fn fresh(ds: DeleteStrategy, is: InsertStrategy) -> XmlRepository {
    let dtd = customer_dtd();
    let doc = customer_document(&CustomerParams {
        customers: 200,
        ..Default::default()
    });
    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            delete_strategy: ds,
            insert_strategy: is,
            build_asr: ds == DeleteStrategy::Asr || is == InsertStrategy::Asr,
            ..RepoConfig::default()
        },
    )
    .expect("schema builds");
    repo.load(&doc).expect("document loads");
    repo
}

fn main() {
    // A first look at the data through a query.
    let mut repo = fresh(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    println!(
        "loaded {} tuples across {:?}",
        repo.tuple_count(),
        repo.db.table_names()
    );
    let (xml, roots) = repo
        .query_xml(
            r#"FOR $c IN document("cust.xml")/CustDB/Customer[Address/State="CA"] RETURN $c"#,
        )
        .expect("query runs");
    println!("Californian customers: {}", roots.len());
    if let Some(&first) = roots.first() {
        println!(
            "first one:\n{}\n",
            xmlup_xml::serializer::subtree_to_string(&xml, first, &Default::default())
        );
    }

    // Delete strategy comparison: random workload (10 subtrees), reported
    // through engine counters.
    println!("== delete strategies, random workload (10 customers) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "client SQL", "total SQL", "rows scanned", "trigger fires"
    );
    for ds in DeleteStrategy::ALL {
        let mut repo = fresh(ds, InsertStrategy::Table);
        let cust = repo.mapping.relation_by_element("Customer").unwrap();
        repo.reset_stats();
        run_delete(&mut repo, cust, Workload::random10()).expect("delete runs");
        let s = repo.stats();
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            ds.label(),
            s.client_statements,
            s.total_statements,
            s.rows_scanned,
            s.trigger_firings
        );
    }

    // Insert strategy comparison: copy 10 random customers.
    println!("\n== insert strategies, random workload (10 customers copied) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "strategy", "client SQL", "rows scanned", "rows inserted"
    );
    for is in InsertStrategy::ALL {
        let mut repo = fresh(DeleteStrategy::PerTupleTrigger, is);
        let cust = repo.mapping.relation_by_element("Customer").unwrap();
        repo.reset_stats();
        run_insert(&mut repo, cust, Workload::random10()).expect("insert runs");
        let s = repo.stats();
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            is.label(),
            s.client_statements,
            s.rows_scanned,
            s.rows_inserted
        );
    }
    println!(
        "\nNote how the tuple method issues one INSERT per copied tuple while the\n\
         table method stays near-constant in statements — the trade-off behind\n\
         the paper's Figures 10/11."
    );
}
