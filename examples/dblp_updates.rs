//! The paper's DBLP experiment (Table 2) as a runnable walkthrough: load
//! a bushy bibliography, delete the year-2000 publications under every
//! delete strategy, and replicate conferences under every insert
//! strategy, timing each on identical data.
//!
//! Run with: `cargo run --release --example dblp_updates`

use std::time::Instant;
use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_workload::dblp::{dblp_document, dblp_dtd, DblpParams};
use xmlup_workload::{run_insert, Workload};

fn main() {
    let params = DblpParams::default();
    let dtd = dblp_dtd();
    let doc = dblp_document(&params);
    println!(
        "synthetic DBLP: {} conferences, ~{} publications/conference",
        params.conferences, params.pubs_per_conf
    );

    println!("\n== delete publications of year 2000 ==");
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "strategy", "time ms", "pubs deleted", "client SQL"
    );
    for ds in DeleteStrategy::ALL {
        let mut repo = XmlRepository::new(
            &dtd,
            "dblp",
            RepoConfig {
                delete_strategy: ds,
                build_asr: ds == DeleteStrategy::Asr,
                ..RepoConfig::default()
            },
        )
        .expect("schema builds");
        repo.load(&doc).expect("loads");
        repo.reset_stats();
        let start = Instant::now();
        let n = repo
            .execute_xquery(
                r#"FOR $d IN document("dblp.xml")/dblp/conference,
                       $p IN $d/inproceedings[year="2000"]
                   UPDATE $d { DELETE $p }"#,
            )
            .expect("delete runs");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let s = repo.stats();
        println!(
            "{:<22} {:>10.2} {:>14} {:>12}",
            ds.label(),
            ms,
            n,
            s.client_statements
        );
    }

    println!("\n== replicate 10 random conference subtrees ==");
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "strategy", "time ms", "tuples copied", "client SQL"
    );
    for is in InsertStrategy::ALL {
        let mut repo = XmlRepository::new(
            &dtd,
            "dblp",
            RepoConfig {
                insert_strategy: is,
                build_asr: is == InsertStrategy::Asr,
                ..RepoConfig::default()
            },
        )
        .expect("schema builds");
        repo.load(&doc).expect("loads");
        let conf = repo.mapping.relation_by_element("conference").unwrap();
        repo.reset_stats();
        let start = Instant::now();
        let n = run_insert(&mut repo, conf, Workload::random10()).expect("insert runs");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let s = repo.stats();
        println!(
            "{:<22} {:>10.2} {:>14} {:>12}",
            is.label(),
            ms,
            n,
            s.client_statements
        );
    }
    println!(
        "\nThe paper's Table 2 findings: per-tuple trigger deletes win on bushy\n\
         data (per-statement methods rescan whole child relations); table-based\n\
         insert beats tuple-based by an order of magnitude in SQL statements."
    );
}
