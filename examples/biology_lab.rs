//! The paper's running example, end to end: the biology-labs document of
//! Figure 1 is transformed by Examples 1–5, finishing in the state of
//! Figure 3 (for the university subtree).
//!
//! Run with: `cargo run --example biology_lab`

use xmlup_xml::{parse_with, samples, serializer, ParseOptions};
use xmlup_xquery::{Outcome, Store};

fn show(store: &Store, heading: &str) {
    println!("== {heading} ==");
    println!(
        "{}\n",
        serializer::to_string(store.document("bio.xml").unwrap())
    );
}

fn apply(store: &mut Store, caption: &str, stmt: &str) {
    match store.execute_str(stmt).expect("statement runs") {
        Outcome::Updated {
            ops_applied,
            ops_skipped,
        } => {
            println!("-- {caption}: {ops_applied} primitive op(s) applied, {ops_skipped} skipped")
        }
        Outcome::Bindings(b) => println!("-- {caption}: {} binding(s)", b.len()),
    }
}

fn main() {
    let opts = ParseOptions::with_ref_attrs(samples::BIO_REF_ATTRS);
    let doc = parse_with(samples::BIO_XML, &opts)
        .expect("Figure 1 parses")
        .doc;
    let mut store = Store::new();
    store.parse_opts = opts;
    store.add_document("bio.xml", doc);

    show(&store, "Figure 1: the input document");

    apply(
        &mut store,
        "Example 1 (delete attribute, IDREF, subelement)",
        r#"FOR $p IN document("bio.xml")/db/paper,
               $cat IN $p/@category,
               $bio IN $p/ref(biologist,"smith1"),
               $ti IN $p/title
           UPDATE $p {
               DELETE $cat,
               DELETE $bio,
               DELETE $ti
           }"#,
    );

    apply(
        &mut store,
        "Example 2 (insert attribute, references, subelement)",
        r#"FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
           UPDATE $bio {
               INSERT new_attribute(age,"29"),
               INSERT new_ref(worksAt,"ucla"),
               INSERT new_ref(worksAt,"baselab"),
               INSERT <firstname>Jeff</firstname>
           }"#,
    );

    apply(
        &mut store,
        "Example 3 (positional insertion)",
        r#"FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
               $n IN $lab/name,
               $sref IN ref(managers,"smith1")
           UPDATE $lab {
               INSERT "jones1" BEFORE $sref,
               INSERT <street>Oak</street> AFTER $n
           }"#,
    );

    apply(
        &mut store,
        "Example 4 (replace element and reference)",
        r#"FOR $lab in document("bio.xml")/db/lab,
               $name IN $lab/name,
               $mgr IN $lab/ref(managers, *)
           UPDATE $lab {
               REPLACE $name WITH <appellation>Fancy Lab</>,
               REPLACE $mgr WITH new_attribute(managers,"jones1")
           }"#,
    );

    apply(
        &mut store,
        "Example 5 (multi-level nested update)",
        r#"FOR $u in document("bio.xml")/db/university[@ID="ucla"],
               $lab IN $u/lab
           WHERE $lab.index() = 0
           UPDATE $u {
               INSERT new_attribute(labs,"2"),
               INSERT <lab ID="newlab"><name>UCLA Secondary Lab</name></lab> BEFORE $lab,
               FOR $l1 IN $u/lab,
                   $labname IN $l1/name,
                   $ci IN $l1/city
               UPDATE $l1 {
                   REPLACE $labname WITH <name>UCLA Primary Lab</>,
                   DELETE $ci
               }
           }"#,
    );

    println!();
    show(
        &store,
        "After Examples 1-5 (university subtree matches Figure 3)",
    );

    // A final query: which biologists remain, and where do they work?
    let out = store
        .execute_str(r#"FOR $b IN document("bio.xml")/db/biologist, $n IN $b/lastname RETURN $n"#)
        .expect("query runs");
    if let Outcome::Bindings(names) = out {
        println!(
            "biologists: {}",
            names
                .iter()
                .map(|t| store.string_value(t))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
