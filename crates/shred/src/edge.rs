//! The Edge storage mapping (paper Section 5.1, after Florescu &
//! Kossmann): every XML object becomes one tuple of a single `Edge`
//! relation. Works without a DTD, at the cost of fragmenting every
//! element across tuples — the comparison point the paper cites for why
//! inlining is preferable.
//!
//! Schema: `Edge(id, parentId, ord, kind, name, value)` where `kind` is
//! `'elem'`, `'attr'`, or `'text'`; `ord` is the position among siblings.

use crate::error::Result;
use crate::loader::sql_literal;
use xmlup_rdb::{Database, Value};
use xmlup_xml::{Attr, Document, NodeId, NodeKind};

/// Name of the single edge table.
pub const EDGE_TABLE: &str = "Edge";

/// Create the `Edge` table with indexes on `id` and `parentId`.
pub fn create_schema(db: &mut Database) -> Result<()> {
    db.execute(
        "CREATE TABLE Edge (id INTEGER, parentId INTEGER, ord INTEGER,
                            kind VARCHAR(4), name TEXT, value TEXT)",
    )?;
    db.execute("CREATE INDEX idx_edge_id ON Edge (id)")?;
    db.execute("CREATE INDEX idx_edge_parent ON Edge (parentId)")?;
    Ok(())
}

/// Shred a document into the edge table. Returns tuples inserted.
pub fn shred(db: &mut Database, doc: &Document) -> Result<usize> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    walk(db, doc, doc.root(), 0, 0, &mut rows);
    let n = rows.len();
    for chunk in rows.chunks(256) {
        let tuples: Vec<String> = chunk
            .iter()
            .map(|r| {
                let vals: Vec<String> = r.iter().map(sql_literal).collect();
                format!("({})", vals.join(", "))
            })
            .collect();
        db.execute(&format!("INSERT INTO Edge VALUES {}", tuples.join(", ")))?;
    }
    Ok(n)
}

fn walk(
    db: &Database,
    doc: &Document,
    node: NodeId,
    parent_id: i64,
    ord: i64,
    rows: &mut Vec<Vec<Value>>,
) -> i64 {
    let id = db.allocate_ids(1);
    match doc.kind(node) {
        NodeKind::Text(s) => rows.push(vec![
            Value::Int(id),
            Value::Int(parent_id),
            Value::Int(ord),
            Value::from("text"),
            Value::Null,
            Value::Str(s.clone()),
        ]),
        NodeKind::Element(e) => {
            rows.push(vec![
                Value::Int(id),
                Value::Int(parent_id),
                Value::Int(ord),
                Value::from("elem"),
                Value::Str(e.name.clone()),
                Value::Null,
            ]);
            for (i, a) in e.attrs.iter().enumerate() {
                let aid = db.allocate_ids(1);
                rows.push(vec![
                    Value::Int(aid),
                    Value::Int(id),
                    Value::Int(i as i64),
                    Value::from("attr"),
                    Value::Str(a.name.clone()),
                    Value::Str(a.value.to_text()),
                ]);
            }
            for (i, &c) in e.children.iter().enumerate() {
                walk(db, doc, c, id, i as i64, rows);
            }
        }
    }
    id
}

/// Rebuild the document stored in the edge table (root = tuple with
/// `parentId = 0` and the smallest id).
pub fn unshred(db: &mut Database) -> Result<Document> {
    let rs = db.query(
        "SELECT id, parentId, ord, kind, name, value FROM Edge ORDER BY parentId, ord, id",
    )?;
    let mut doc = Document::new("__placeholder__");
    let mut by_parent: std::collections::HashMap<i64, Vec<&xmlup_rdb::Row>> =
        std::collections::HashMap::new();
    for row in &rs.rows {
        by_parent
            .entry(row[1].as_int().unwrap_or(0))
            .or_default()
            .push(row);
    }
    let roots = by_parent.get(&0).cloned().unwrap_or_default();
    let root_row = roots
        .first()
        .ok_or_else(|| crate::error::ShredError::Reconstruct("empty edge table".into()))?;
    let root = build(&mut doc, &by_parent, root_row);
    doc.replace_root(root)?;
    Ok(doc)
}

fn build(
    doc: &mut Document,
    by_parent: &std::collections::HashMap<i64, Vec<&xmlup_rdb::Row>>,
    row: &xmlup_rdb::Row,
) -> NodeId {
    let id = row[0].as_int().expect("id");
    match row[3].as_str() {
        Some("text") => doc.new_text(row[5].as_str().unwrap_or_default().to_string()),
        _ => {
            let el = doc.new_element(row[4].as_str().unwrap_or("?").to_string());
            if let Some(kids) = by_parent.get(&id) {
                for k in kids {
                    match k[3].as_str() {
                        Some("attr") => {
                            if let Some(e) = doc.element_mut(el) {
                                e.attrs.push(Attr::text(
                                    k[4].as_str().unwrap_or("?").to_string(),
                                    k[5].as_str().unwrap_or_default().to_string(),
                                ));
                            }
                        }
                        _ => {
                            let c = build(doc, by_parent, k);
                            doc.append_child(el, c).expect("fresh attach");
                        }
                    }
                }
            }
            el
        }
    }
}

/// Install the self-referential per-tuple delete trigger that cascades
/// element deletion down the edge table.
pub fn create_delete_trigger(db: &mut Database) -> Result<()> {
    db.execute(
        "CREATE TRIGGER edge_cascade AFTER DELETE ON Edge FOR EACH ROW BEGIN
            DELETE FROM Edge WHERE parentId = OLD.id;
         END",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlup_xml::samples::CUSTOMER_XML;

    #[test]
    fn shred_and_unshred_roundtrip() {
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        db.bump_next_id(1); // keep 0 as the "no parent" sentinel
        create_schema(&mut db).unwrap();
        let n = shred(&mut db, &doc).unwrap();
        assert!(n > 30, "one tuple per element/attr/text, got {n}");
        let rebuilt = unshred(&mut db).unwrap();
        assert!(doc.subtree_eq(doc.root(), &rebuilt, rebuilt.root()));
    }

    #[test]
    fn cascading_trigger_deletes_subtree() {
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        db.bump_next_id(1);
        create_schema(&mut db).unwrap();
        shred(&mut db, &doc).unwrap();
        create_delete_trigger(&mut db).unwrap();
        let before = db.table("edge").unwrap().len();
        // Delete the first Customer element (a single SQL statement).
        let cust_id = db
            .query("SELECT MIN(id) FROM Edge WHERE name = 'Customer'")
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        db.execute(&format!("DELETE FROM Edge WHERE id = {cust_id}"))
            .unwrap();
        let after = db.table("edge").unwrap().len();
        // First customer: Customer + Name(+text) + Address(+City/State+texts)
        // + 2 Orders with children — substantially more than 20 tuples.
        assert!(
            before - after > 20,
            "cascade removed {} tuples",
            before - after
        );
        // No orphans remain.
        let rs = db
            .query(
                "SELECT COUNT(*) FROM Edge WHERE parentId <> 0
                 AND parentId NOT IN (SELECT id FROM Edge)",
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn query_by_path_with_joins() {
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        db.bump_next_id(1);
        create_schema(&mut db).unwrap();
        shred(&mut db, &doc).unwrap();
        // Names of customers with a tire order line: 4 self-joins — the
        // fragmentation cost the paper attributes to the edge approach.
        let rs = db
            .query(
                "SELECT v.value FROM Edge c, Edge n, Edge t, Edge o, Edge l, Edge i, Edge iv, Edge v
                 WHERE c.name = 'Customer'
                   AND n.parentId = c.id AND n.name = 'Name'
                   AND v.parentId = n.id AND v.kind = 'text'
                   AND o.parentId = c.id AND o.name = 'Order'
                   AND l.parentId = o.id AND l.name = 'OrderLine'
                   AND i.parentId = l.id AND i.name = 'ItemName'
                   AND iv.parentId = i.id AND iv.kind = 'text'
                   AND iv.value = 'tire'
                   AND t.id = c.id",
            )
            .unwrap();
        let mut names: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["John", "Mary"]);
    }
}

/// Copy the subtree rooted at edge tuple `src_id` under `dst_parent_id`,
/// assigning fresh ids while preserving connectivity — the edge-store
/// analogue of the inlined mapping's complex insert (copy semantics, like
/// paper Section 6.2, but over the single fragmented relation). Returns
/// the number of tuples created.
pub fn copy_subtree(db: &mut Database, src_id: i64, dst_parent_id: i64) -> Result<usize> {
    // Breadth-first over the fragment forest, remapping ids level by
    // level. Each level is one SELECT; each tuple one INSERT (the edge
    // store has no schema to bulk-copy against, which is exactly the
    // fragmentation cost the paper attributes to this mapping).
    let mut frontier: Vec<(i64, i64)> = vec![(src_id, dst_parent_id)];
    let mut created = 0usize;
    while let Some((old_id, new_parent)) = frontier.pop() {
        let rs = db.query(&format!(
            "SELECT id, ord, kind, name, value FROM Edge WHERE id = {old_id}"
        ))?;
        let row = match rs.rows.first() {
            Some(r) => r.clone(),
            None => continue,
        };
        let new_id = db.allocate_ids(1);
        let vals = [
            xmlup_rdb::Value::Int(new_id),
            xmlup_rdb::Value::Int(new_parent),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
        ];
        let rendered: Vec<String> = vals.iter().map(sql_literal).collect();
        db.execute(&format!(
            "INSERT INTO Edge VALUES ({})",
            rendered.join(", ")
        ))?;
        created += 1;
        let kids = db.query(&format!(
            "SELECT id FROM Edge WHERE parentId = {old_id} ORDER BY ord DESC, id DESC"
        ))?;
        for k in kids.rows {
            if let Some(kid) = k[0].as_int() {
                frontier.push((kid, new_id));
            }
        }
    }
    Ok(created)
}

#[cfg(test)]
mod copy_tests {
    use super::*;
    use xmlup_xml::samples::CUSTOMER_XML;

    #[test]
    fn copy_subtree_duplicates_structure() {
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        db.bump_next_id(1);
        create_schema(&mut db).unwrap();
        shred(&mut db, &doc).unwrap();
        let root_id = db
            .query("SELECT MIN(id) FROM Edge WHERE name = 'CustDB'")
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        let cust_id = db
            .query("SELECT MIN(id) FROM Edge WHERE name = 'Customer'")
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        let before = db.table("edge").unwrap().len();
        let created = copy_subtree(&mut db, cust_id, root_id).unwrap();
        assert!(
            created > 10,
            "first customer fragment is sizable, got {created}"
        );
        assert_eq!(db.table("edge").unwrap().len(), before + created);
        // The rebuilt document now has four customers. The copy keeps the
        // source's ord (0), so it sorts directly after the original first
        // customer: [cust1, copy-of-cust1, cust2, cust3].
        let rebuilt = unshred(&mut db).unwrap();
        let kids: Vec<_> = rebuilt.children(rebuilt.root()).to_vec();
        assert_eq!(kids.len(), 4);
        assert!(rebuilt.subtree_eq(kids[0], &rebuilt, kids[1]));
    }

    #[test]
    fn copy_missing_source_is_noop() {
        let mut db = Database::new();
        db.bump_next_id(1);
        create_schema(&mut db).unwrap();
        assert_eq!(copy_subtree(&mut db, 999, 1).unwrap(), 0);
    }
}
