//! Shredding documents into relations and rebuilding subtrees from rows.

use crate::error::{Result, ShredError};
use crate::inline::{ColumnKind, Mapping, Relation, POS_GAP};
use xmlup_rdb::{Database, Row, Value};
use xmlup_xml::{Attr, Document, NodeId};

/// Create the mapping's tables (and `parentId` indexes) in `db`.
pub fn create_schema(db: &mut Database, mapping: &Mapping) -> Result<()> {
    for rel in &mapping.relations {
        db.execute(&rel.create_table_sql())?;
        db.execute(&format!(
            "CREATE INDEX idx_{t}_id ON {t} (id)",
            t = rel.table
        ))?;
        db.execute(&format!(
            "CREATE INDEX idx_{t}_parent ON {t} (parentId)",
            t = rel.table
        ))?;
    }
    Ok(())
}

/// Shred `doc` into the mapping's tables. Returns the number of tuples
/// inserted. Ids are assigned from the database's id counter, parents
/// before children.
pub fn shred(db: &mut Database, mapping: &Mapping, doc: &Document) -> Result<usize> {
    let root = doc.root();
    let root_rel = mapping.root();
    if doc.name(root) != Some(mapping.relations[root_rel].element.as_str()) {
        return Err(ShredError::Shred(format!(
            "document root <{}> does not match the mapping root <{}>",
            doc.name(root).unwrap_or("?"),
            mapping.relations[root_rel].element
        )));
    }
    let mut loader = Loader {
        db,
        mapping,
        doc,
        count: 0,
        buffers: vec![Vec::new(); mapping.relations.len()],
    };
    loader.shred_element(root, root_rel, 0, 0)?;
    loader.flush_all()?;
    Ok(loader.count)
}

/// Shred a single element subtree into the mapping's tables under an
/// existing parent tuple (used for cross-document inserts, paper Example
/// 10 / Section 6.2's "different document with the same DTD" case).
/// `node` must be an element whose tag matches `rel_idx`'s element.
pub fn shred_subtree(
    db: &mut Database,
    mapping: &Mapping,
    doc: &Document,
    node: NodeId,
    rel_idx: usize,
    parent_id: i64,
    ord: i64,
) -> Result<usize> {
    if doc.name(node) != Some(mapping.relations[rel_idx].element.as_str()) {
        return Err(ShredError::Shred(format!(
            "subtree root <{}> does not match relation <{}>",
            doc.name(node).unwrap_or("?"),
            mapping.relations[rel_idx].element
        )));
    }
    let mut loader = Loader {
        db,
        mapping,
        doc,
        count: 0,
        buffers: vec![Vec::new(); mapping.relations.len()],
    };
    loader.shred_element(node, rel_idx, parent_id, ord)?;
    loader.flush_all()?;
    Ok(loader.count)
}

/// Rows per bulk `INSERT` statement during loading. Batch loading is how
/// an application would populate the store; the per-statement client
/// overhead then amortizes across the batch.
const LOAD_BATCH: usize = 128;

struct Loader<'a> {
    db: &'a mut Database,
    mapping: &'a Mapping,
    doc: &'a Document,
    count: usize,
    /// Pending rows per relation, flushed in [`LOAD_BATCH`] chunks.
    buffers: Vec<Vec<Row>>,
}

impl Loader<'_> {
    fn shred_element(
        &mut self,
        node: NodeId,
        rel_idx: usize,
        parent_id: i64,
        ord: i64,
    ) -> Result<i64> {
        let rel = &self.mapping.relations[rel_idx];
        let id = self.db.allocate_ids(1);
        let mut row: Row = Vec::with_capacity(2 + rel.columns.len());
        row.push(Value::Int(id));
        row.push(Value::Int(parent_id));
        for col in &rel.columns {
            row.push(match col.kind {
                // Gap-spaced sibling position (ordered mappings only).
                ColumnKind::Position => Value::Int((ord + 1) * POS_GAP),
                _ => extract_column(self.doc, node, &col.path, &col.kind),
            });
        }
        self.buffers[rel_idx].push(row);
        if self.buffers[rel_idx].len() >= LOAD_BATCH {
            self.flush(rel_idx)?;
        }
        self.count += 1;
        // Repeatable children get their own tuples, in document order; the
        // ordinal counts across *all* relation-mapped children so sibling
        // order interleaves correctly between relations.
        let mut child_ord = 0i64;
        for &child in self.doc.children(node) {
            if let Some(cname) = self.doc.name(child) {
                if let Some(crel) = self.mapping.relations[rel_idx]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| self.mapping.relations[c].element == cname)
                {
                    self.shred_element(child, crel, id, child_ord)?;
                    child_ord += 1;
                }
            }
        }
        Ok(id)
    }

    fn flush(&mut self, rel_idx: usize) -> Result<()> {
        if self.buffers[rel_idx].is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buffers[rel_idx]);
        let tuples: Vec<String> = rows
            .iter()
            .map(|r| {
                let vals: Vec<String> = r.iter().map(sql_literal).collect();
                format!("({})", vals.join(", "))
            })
            .collect();
        self.db.execute(&format!(
            "INSERT INTO {} VALUES {}",
            self.mapping.relations[rel_idx].table,
            tuples.join(", ")
        ))?;
        Ok(())
    }

    fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.buffers.len() {
            self.flush(i)?;
        }
        Ok(())
    }
}

/// Extract the value of one inlined column from the element `node`.
pub fn extract_column(doc: &Document, node: NodeId, path: &[String], kind: &ColumnKind) -> Value {
    // Navigate the inlined path (each segment occurs at most once).
    let mut cur = node;
    for seg in path {
        match doc
            .children(cur)
            .iter()
            .copied()
            .find(|&c| doc.name(c) == Some(seg.as_str()))
        {
            Some(c) => cur = c,
            None => {
                return match kind {
                    ColumnKind::Presence => Value::Bool(false),
                    _ => Value::Null,
                }
            }
        }
    }
    match kind {
        ColumnKind::Position => Value::Null,
        ColumnKind::Presence => Value::Bool(true),
        ColumnKind::Pcdata => {
            let text: String = doc
                .children(cur)
                .iter()
                .filter_map(|&c| doc.text(c))
                .collect();
            if text.is_empty() && doc.children(cur).is_empty() {
                // <Name/> stores NULL; documented ambiguity with "absent".
                Value::Null
            } else {
                Value::Str(text)
            }
        }
        ColumnKind::Attribute(attr) => match doc.attr(cur, attr) {
            Some(a) => Value::Str(a.value.to_text()),
            None => Value::Null,
        },
    }
}

/// Render a value as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

/// Rebuild the element stored by one tuple of `rel` (without its
/// repeatable children): tag, attributes, inlined subelements, PCDATA.
/// Returns a detached node in `doc`.
pub fn build_element(doc: &mut Document, rel: &Relation, data: &[Value]) -> Result<NodeId> {
    let el = doc.new_element(rel.element.clone());
    // Group columns by their inlined path, creating nested elements on
    // demand. Paths are short (inlining depth), so linear search is fine.
    let mut made: Vec<(Vec<String>, NodeId)> = vec![(Vec::new(), el)];
    // First pass: presence flags decide which inlined elements exist.
    for (i, col) in rel.columns.iter().enumerate() {
        let v = data
            .get(i)
            .ok_or_else(|| ShredError::Reconstruct("row too narrow".into()))?;
        if col.path.is_empty() {
            continue;
        }
        let present = match col.kind {
            ColumnKind::Presence => v == &Value::Bool(true),
            ColumnKind::Position => false,
            _ => !v.is_null(),
        };
        if present {
            ensure_path(doc, &mut made, &col.path);
        }
    }
    // Second pass: fill attributes and PCDATA.
    for (i, col) in rel.columns.iter().enumerate() {
        let v = &data[i];
        if v.is_null() {
            continue;
        }
        let holder = match made.iter().find(|(p, _)| p == &col.path) {
            Some((_, n)) => *n,
            None => continue, // value for an absent inlined element
        };
        match &col.kind {
            ColumnKind::Presence | ColumnKind::Position => {}
            ColumnKind::Pcdata => {
                let t = doc.new_text(v.render());
                doc.append_child(holder, t)?;
            }
            ColumnKind::Attribute(attr) => {
                if let Some(e) = doc.element_mut(holder) {
                    e.attrs.push(Attr::text(attr.clone(), v.render()));
                }
            }
        }
    }
    Ok(el)
}

fn ensure_path(
    doc: &mut Document,
    made: &mut Vec<(Vec<String>, NodeId)>,
    path: &[String],
) -> NodeId {
    if let Some((_, n)) = made.iter().find(|(p, _)| p == path) {
        return *n;
    }
    let parent = ensure_path(doc, made, &path[..path.len() - 1]);
    let el = doc.new_element(path.last().unwrap().clone());
    doc.append_child(parent, el).expect("fresh attach");
    made.push((path.to_vec(), el));
    el
}

/// Rebuild the full document from the shredded tables (used by tests to
/// verify shred→reconstruct identity). Children are ordered by tuple id,
/// which preserves document order because the loader assigns ids in
/// document order.
pub fn unshred(db: &mut Database, mapping: &Mapping) -> Result<Document> {
    let mut doc = Document::new("__placeholder__");
    let root_rel = mapping.root();
    let rs = db.query(&format!(
        "SELECT * FROM {} ORDER BY id",
        mapping.relations[root_rel].table
    ))?;
    if rs.rows.len() != 1 {
        return Err(ShredError::Reconstruct(format!(
            "expected one root tuple, found {}",
            rs.rows.len()
        )));
    }
    let row = &rs.rows[0];
    let id = row[0].as_int().expect("root id");
    let el = build_element(&mut doc, &mapping.relations[root_rel], &row[2..])?;
    attach_children(db, mapping, &mut doc, root_rel, id, el)?;
    doc.replace_root(el)?;
    Ok(doc)
}

/// Recursively attach the repeatable children of tuple `id` to `el`.
fn attach_children(
    db: &mut Database,
    mapping: &Mapping,
    doc: &mut Document,
    rel_idx: usize,
    id: i64,
    el: NodeId,
) -> Result<()> {
    // Children of different relations interleave by id (document order).
    let mut kids: Vec<((i64, i64), usize, Row)> = Vec::new();
    for &crel in &mapping.relations[rel_idx].children {
        let rs = db.query(&format!(
            "SELECT * FROM {} WHERE parentId = {id} ORDER BY id",
            mapping.relations[crel].table
        ))?;
        let pos_col = mapping.relations[crel].find_column(&[], &ColumnKind::Position);
        for row in rs.rows {
            let cid = row[0].as_int().expect("child id");
            // Ordered mappings sort siblings by the pos_ column (id breaks
            // ties); otherwise tuple ids carry document order (the loader
            // assigns them that way).
            let key = match pos_col {
                Some(pi) => (row[2 + pi].as_int().unwrap_or(cid), cid),
                None => (cid, cid),
            };
            kids.push((key, crel, row));
        }
    }
    kids.sort_by_key(|(key, _, _)| *key);
    for ((_, cid), crel, row) in kids {
        let cel = build_element(doc, &mapping.relations[crel], &row[2..])?;
        doc.append_child(el, cel)?;
        attach_children(db, mapping, doc, crel, cid, cel)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlup_xml::dtd::Dtd;
    use xmlup_xml::samples::{CUSTOMER_DTD, CUSTOMER_XML};

    fn setup() -> (Database, Mapping, Document) {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        let mapping = Mapping::from_dtd(&dtd, "CustDB").unwrap();
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        (db, mapping, doc)
    }

    #[test]
    fn shred_counts_tuples() {
        let (mut db, mapping, doc) = setup();
        let n = shred(&mut db, &mapping, &doc).unwrap();
        // 1 CustDB + 3 Customer + 3 Order + 4 OrderLine = 11.
        assert_eq!(n, 11);
        assert_eq!(db.table("custdb").unwrap().len(), 1);
        assert_eq!(db.table("customer").unwrap().len(), 3);
        assert_eq!(db.table("order").unwrap().len(), 3);
        assert_eq!(db.table("orderline").unwrap().len(), 4);
    }

    #[test]
    fn inlined_values_land_in_columns() {
        let (mut db, mapping, doc) = setup();
        shred(&mut db, &mapping, &doc).unwrap();
        let rs = db
            .query("SELECT Name, Address_City, Address_State FROM Customer ORDER BY id")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Str("John".into()));
        assert_eq!(rs.rows[0][1], Value::Str("Seattle".into()));
        assert_eq!(rs.rows[2][2], Value::Str("CA".into()));
        let rs = db
            .query("SELECT COUNT(*) FROM OrderLine WHERE ItemName = 'tire'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn parent_child_links_hold() {
        let (mut db, mapping, doc) = setup();
        shred(&mut db, &mapping, &doc).unwrap();
        let rs = db
            .query(
                "SELECT COUNT(*) FROM Customer C, Order O, OrderLine L
                 WHERE O.parentId = C.id AND L.parentId = O.id AND C.Name = 'John'",
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn shred_unshred_roundtrip() {
        let (mut db, mapping, doc) = setup();
        shred(&mut db, &mapping, &doc).unwrap();
        let rebuilt = unshred(&mut db, &mapping).unwrap();
        assert!(
            doc.subtree_eq(doc.root(), &rebuilt, rebuilt.root()),
            "shred → unshred must be the identity:\noriginal:\n{}\nrebuilt:\n{}",
            xmlup_xml::serializer::to_string(&doc),
            xmlup_xml::serializer::to_string(&rebuilt)
        );
    }

    #[test]
    fn presence_flag_true_for_existing_address() {
        let (mut db, mapping, doc) = setup();
        shred(&mut db, &mapping, &doc).unwrap();
        let rs = db
            .query("SELECT COUNT(*) FROM Customer WHERE Address_present = TRUE")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn optional_status_null_when_absent() {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        let mapping = Mapping::from_dtd(&dtd, "CustDB").unwrap();
        let doc = xmlup_xml::parse(
            "<CustDB><Customer><Name>X</Name>
             <Address><City>C</City><State>S</State></Address>
             <Order><Date>2001-01-01</Date></Order></Customer></CustDB>",
        )
        .unwrap()
        .doc;
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        shred(&mut db, &mapping, &doc).unwrap();
        let rs = db.query("SELECT Status FROM Order").unwrap();
        assert_eq!(rs.rows[0][0], Value::Null);
        // And it reconstructs without a Status element.
        let rebuilt = unshred(&mut db, &mapping).unwrap();
        assert!(doc.subtree_eq(doc.root(), &rebuilt, rebuilt.root()));
    }

    #[test]
    fn root_mismatch_rejected() {
        let (mut db, mapping, _) = setup();
        let wrong = xmlup_xml::parse("<Other/>").unwrap().doc;
        assert!(matches!(
            shred(&mut db, &mapping, &wrong),
            Err(ShredError::Shred(_))
        ));
    }

    #[test]
    fn sql_literal_escapes_quotes() {
        assert_eq!(sql_literal(&Value::Str("John's".into())), "'John''s'");
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
    }

    #[test]
    fn document_order_preserved_across_sibling_relations() {
        // Orders and their lines interleave with other customers; ids are
        // assigned in document order so reconstruction preserves order.
        let (mut db, mapping, doc) = setup();
        shred(&mut db, &mapping, &doc).unwrap();
        let rebuilt = unshred(&mut db, &mapping).unwrap();
        let orig = xmlup_xml::serializer::to_compact_string(&doc);
        let back = xmlup_xml::serializer::to_compact_string(&rebuilt);
        assert_eq!(orig, back);
    }
}
