//! Access Support Relations (paper Section 5.3, after Kemper & Moerkotte,
//! SIGMOD '90), extended to the XML mapping: one column per relation of the
//! mapping tree, one tuple per root-to-leaf path of the stored document,
//! left-complete (NULLs only below the path's end), plus a `mark` column
//! used by the ASR-based delete/insert strategies' marking schemes
//! (Sections 6.1.3 and 6.2.3).

use crate::error::Result;
use crate::inline::Mapping;
use crate::loader::sql_literal;
use std::collections::HashMap;
use xmlup_rdb::{Database, Value};

/// An access support relation over the whole mapping tree.
#[derive(Debug, Clone)]
pub struct AsrIndex {
    /// The ASR's table name.
    pub table: String,
    /// Relations covered, in pre-order (column i ↔ relation `relations[i]`).
    pub relations: Vec<usize>,
    /// Id column names, same order.
    pub id_columns: Vec<String>,
}

impl AsrIndex {
    /// Create and populate the ASR from the mapping's already-loaded
    /// tables. Creates hash indexes on every id column.
    pub fn build(db: &mut Database, mapping: &Mapping) -> Result<AsrIndex> {
        let asr = AsrIndex::attach(mapping);
        let cols: Vec<String> = asr
            .id_columns
            .iter()
            .map(|c| format!("{c} INTEGER"))
            .collect();
        db.execute(&format!(
            "CREATE TABLE {} ({}, mark BOOLEAN)",
            asr.table,
            cols.join(", ")
        ))?;
        for c in &asr.id_columns {
            db.execute(&format!("CREATE INDEX idx_asr_{c} ON {} ({c})", asr.table))?;
        }
        // The marking schemes (Sections 6.1.3 / 6.2.3) repeatedly select
        // `WHERE mark = TRUE`; index the flag so marked paths are probed,
        // not scanned.
        db.execute(&format!(
            "CREATE INDEX idx_asr_mark ON {} (mark)",
            asr.table
        ))?;
        asr.populate(db, mapping)?;
        Ok(asr)
    }

    /// Reconstruct the descriptor of an ASR that already exists in the
    /// database — e.g. after crash recovery reopened a durable store
    /// whose WAL/snapshot carry the ASR table and its contents. Issues
    /// no DDL and touches no data; the descriptor is fully determined by
    /// the mapping, so it matches whatever [`AsrIndex::build`] created.
    pub fn attach(mapping: &Mapping) -> AsrIndex {
        let relations = mapping.subtree(mapping.root());
        let id_columns: Vec<String> = relations
            .iter()
            .map(|&r| format!("id_{}", mapping.relations[r].table))
            .collect();
        AsrIndex {
            table: "ASR".to_string(),
            relations,
            id_columns,
        }
    }

    /// Column position for a relation index, if covered.
    pub fn column_of(&self, rel: usize) -> Option<usize> {
        self.relations.iter().position(|&r| r == rel)
    }

    /// (Re)populate from the current table contents. The walk happens at
    /// the application level, mirroring how the paper's middleware had to
    /// construct ASRs above the RDBMS.
    pub fn populate(&self, db: &mut Database, mapping: &Mapping) -> Result<()> {
        db.execute(&format!("DELETE FROM {}", self.table))?;
        // parent id → child ids, per relation.
        let mut children: Vec<HashMap<i64, Vec<i64>>> = Vec::new();
        for &r in &self.relations {
            let t = db
                .table(&mapping.relations[r].table)
                .expect("mapping tables exist");
            let mut map: HashMap<i64, Vec<i64>> = HashMap::new();
            for row in t.rows() {
                let id = row[0].as_int().expect("id");
                let pid = row[1].as_int().unwrap_or(0);
                map.entry(pid).or_default().push(id);
            }
            for v in map.values_mut() {
                v.sort_unstable();
            }
            children.push(map);
        }
        // Roots of the subtree: all tuples of relation 0 of the plan.
        let root_ids: Vec<i64> = {
            let t = db
                .table(&mapping.relations[self.relations[0]].table)
                .expect("root table");
            let mut v: Vec<i64> = t.rows().map(|r| r[0].as_int().expect("id")).collect();
            v.sort_unstable();
            v
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut path: Vec<(usize, i64)> = Vec::new();
        for rid in root_ids {
            self.walk(mapping, 0, rid, &children, &mut path, &mut rows);
        }
        // Bulk insert in chunks to bound statement size.
        for chunk in rows.chunks(256) {
            let tuples: Vec<String> = chunk
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(sql_literal).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            db.execute(&format!(
                "INSERT INTO {} VALUES {}",
                self.table,
                tuples.join(", ")
            ))?;
        }
        Ok(())
    }

    fn walk(
        &self,
        mapping: &Mapping,
        level: usize,
        id: i64,
        children: &[HashMap<i64, Vec<i64>>],
        path: &mut Vec<(usize, i64)>,
        rows: &mut Vec<Vec<Value>>,
    ) {
        path.push((level, id));
        // Child levels: plan positions whose relation's parent is this
        // level's relation.
        let mut any_child = false;
        for cl in 0..self.relations.len() {
            if cl == level || self.parent_level_in(mapping, cl) != Some(level) {
                continue;
            }
            if let Some(kids) = children[cl].get(&id) {
                if !kids.is_empty() {
                    any_child = true;
                    for &k in kids {
                        self.walk(mapping, cl, k, children, path, rows);
                    }
                }
            }
        }
        if !any_child {
            // Left-complete tuple: ids along the path, NULL elsewhere.
            let mut row = vec![Value::Null; self.id_columns.len() + 1];
            for &(l, i) in path.iter() {
                row[l] = Value::Int(i);
            }
            *row.last_mut().unwrap() = Value::Bool(false);
            rows.push(row);
        }
        path.pop();
    }
    /// Parent plan-position of plan-position `cl`, given the mapping.
    pub fn parent_level_in(&self, mapping: &Mapping, cl: usize) -> Option<usize> {
        let rel = self.relations[cl];
        let parent = mapping.relations[rel].parent?;
        self.column_of(parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{create_schema, shred};
    use xmlup_xml::dtd::Dtd;
    use xmlup_xml::samples::{CUSTOMER_DTD, CUSTOMER_XML};

    fn setup() -> (Database, Mapping) {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        let mapping = Mapping::from_dtd(&dtd, "CustDB").unwrap();
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        shred(&mut db, &mapping, &doc).unwrap();
        (db, mapping)
    }

    #[test]
    fn one_tuple_per_root_to_leaf_path() {
        let (mut db, mapping) = setup();
        let asr = AsrIndex::build(&mut db, &mapping).unwrap();
        // Leaves: 4 order lines, plus 1 customer with no orders → 5 paths.
        let n = db.table(&asr.table.to_ascii_lowercase()).unwrap().len();
        assert_eq!(n, 5);
    }

    #[test]
    fn descendant_lookup_via_asr() {
        let (mut db, mapping) = setup();
        let asr = AsrIndex::build(&mut db, &mapping).unwrap();
        // Ids of order lines under customer John (id of first Customer).
        let cust_col = &asr.id_columns[asr
            .column_of(mapping.relation_by_element("Customer").unwrap())
            .unwrap()];
        let line_col = &asr.id_columns[asr
            .column_of(mapping.relation_by_element("OrderLine").unwrap())
            .unwrap()];
        let john_id = db
            .query("SELECT MIN(id) FROM Customer WHERE Name = 'John'")
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        let rs = db
            .query(&format!(
                "SELECT {line_col} FROM ASR WHERE {cust_col} = {john_id}"
            ))
            .unwrap();
        // First John has 3 order lines.
        let non_null = rs.rows.iter().filter(|r| !r[0].is_null()).count();
        assert_eq!(non_null, 3);
    }

    #[test]
    fn left_complete_nulls_at_bottom_only() {
        let (mut db, mapping) = setup();
        let asr = AsrIndex::build(&mut db, &mapping).unwrap();
        let rs = db.query(&format!("SELECT * FROM {}", asr.table)).unwrap();
        for row in &rs.rows {
            // Once a NULL id appears along a chain, everything below is NULL.
            let mut seen_null = false;
            for (cl, _) in asr.relations.iter().enumerate() {
                let is_null = row[cl].is_null();
                if let Some(pl) = asr.parent_level_in(&mapping, cl) {
                    if row[pl].is_null() {
                        assert!(is_null, "child id set under a NULL parent");
                    }
                }
                seen_null |= is_null;
            }
            let _ = seen_null;
        }
    }

    #[test]
    fn mark_column_starts_false() {
        let (mut db, mapping) = setup();
        AsrIndex::build(&mut db, &mapping).unwrap();
        let rs = db
            .query("SELECT COUNT(*) FROM ASR WHERE mark = TRUE")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn repopulate_after_data_change() {
        let (mut db, mapping) = setup();
        let asr = AsrIndex::build(&mut db, &mapping).unwrap();
        db.execute("DELETE FROM OrderLine").unwrap();
        asr.populate(&mut db, &mapping).unwrap();
        // Paths now end at orders (3) or customers without orders (1) → 4.
        assert_eq!(db.table("asr").unwrap().len(), 4);
    }
}
