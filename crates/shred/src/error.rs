//! Errors for the XML↔relational mapping layer.

use std::fmt;
use xmlup_rdb::DbError;
use xmlup_xml::XmlError;

/// Errors raised while building mappings, shredding documents, or
/// reconstructing XML from relational results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShredError {
    /// The DTD cannot be mapped (undeclared elements, unsupported shapes).
    Mapping(String),
    /// A document does not fit the mapping it is being shredded into.
    Shred(String),
    /// Reconstruction from a tuple stream failed.
    Reconstruct(String),
    /// Underlying database error.
    Db(DbError),
    /// Underlying XML error.
    Xml(XmlError),
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShredError::Mapping(m) => write!(f, "mapping error: {m}"),
            ShredError::Shred(m) => write!(f, "shredding error: {m}"),
            ShredError::Reconstruct(m) => write!(f, "reconstruction error: {m}"),
            ShredError::Db(e) => write!(f, "database error: {e}"),
            ShredError::Xml(e) => write!(f, "XML error: {e}"),
        }
    }
}

impl std::error::Error for ShredError {}

impl From<DbError> for ShredError {
    fn from(e: DbError) -> Self {
        ShredError::Db(e)
    }
}

impl From<XmlError> for ShredError {
    fn from(e: XmlError) -> Self {
        ShredError::Xml(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ShredError>;
