//! The Sorted Outer Union method (paper Section 5.2, after
//! Shanmugasundaram et al., VLDB '00): return an XML subtree stored across
//! multiple relations as a single sorted tuple stream, then reassemble it.
//!
//! The generated query has exactly the shape of the paper's Figure 5: one
//! `WITH` subquery per relation level, a wide NULL-padded tuple whose
//! child rows carry only their ancestors' *key* columns, `UNION ALL` over
//! the levels, and an `ORDER BY` over the id columns so every parent tuple
//! precedes its children and children of different parents are not
//! intermixed (NULLs sort first in this engine).

use crate::error::{Result, ShredError};
use crate::inline::Mapping;
use crate::loader::build_element;
use xmlup_rdb::{Database, ResultSet, Value};
use xmlup_xml::{Document, NodeId};

/// Layout of the wide outer-union tuple for a subtree of relations.
#[derive(Debug, Clone)]
pub struct OuterUnionPlan {
    /// Relations of the subtree, pre-order; entry 0 is the subtree root.
    pub relations: Vec<usize>,
    /// For each relation (same order): offset of its id column in the wide
    /// tuple. Data columns follow the id column.
    pub id_offsets: Vec<usize>,
    /// Total width of the wide tuple.
    pub width: usize,
    /// The SQL text.
    pub sql: String,
}

/// Build the Sorted Outer Union query for the subtree of `mapping` rooted
/// at relation `root_rel`, selecting root tuples that satisfy `filter`
/// (a SQL boolean expression over the root relation's columns, e.g.
/// `Name = 'John'`; `None` selects all).
pub fn plan(mapping: &Mapping, root_rel: usize, filter: Option<&str>) -> OuterUnionPlan {
    let relations = mapping.subtree(root_rel);
    // Wide layout: for each relation, [id, data columns…].
    let mut id_offsets = Vec::with_capacity(relations.len());
    let mut width = 0usize;
    for &r in &relations {
        id_offsets.push(width);
        width += 1 + mapping.relations[r].columns.len();
    }
    let col_names: Vec<String> = (1..=width).map(|i| format!("C{i}")).collect();

    // One CTE per relation. Q1 selects the roots (with the filter); each
    // child CTE joins its parent's CTE on parentId, carrying ancestor id
    // columns only.
    let mut ctes: Vec<String> = Vec::new();
    for (qi, &r) in relations.iter().enumerate() {
        let rel = &mapping.relations[r];
        let mut select: Vec<String> = vec!["NULL".to_string(); width];
        let own_off = id_offsets[qi];
        select[own_off] = "T.id".into();
        for (ci, col) in rel.columns.iter().enumerate() {
            select[own_off + 1 + ci] = format!("T.{}", col.name);
        }
        let body = if qi == 0 {
            let where_clause = match filter {
                Some(f) => format!(" WHERE {f}"),
                None => String::new(),
            };
            format!(
                "SELECT {} FROM {} T{}",
                select.join(", "),
                rel.table,
                where_clause
            )
        } else {
            // Parent CTE index within the subtree listing.
            let parent_rel = rel.parent.expect("non-root relation has a parent");
            let pq = relations
                .iter()
                .position(|&x| x == parent_rel)
                .expect("parent inside subtree");
            // Carry every ancestor id from the parent CTE.
            let mut cur = qi;
            loop {
                let prel = mapping.relations[relations[cur]].parent;
                match prel.and_then(|p| relations.iter().position(|&x| x == p)) {
                    Some(anc) => {
                        select[id_offsets[anc]] = format!("P.C{}", id_offsets[anc] + 1);
                        cur = anc;
                    }
                    None => break,
                }
            }
            format!(
                "SELECT {} FROM Q{} P, {} T WHERE T.parentId = P.C{}",
                select.join(", "),
                pq + 1,
                rel.table,
                id_offsets[pq] + 1
            )
        };
        ctes.push(format!(
            "Q{}({}) AS ({})",
            qi + 1,
            col_names.join(", "),
            body
        ));
    }
    let unions: Vec<String> = (1..=relations.len())
        .map(|i| format!("(SELECT * FROM Q{i})"))
        .collect();
    let order: Vec<String> = id_offsets.iter().map(|o| format!("C{}", o + 1)).collect();
    let sql = format!(
        "WITH {} {} ORDER BY {}",
        ctes.join(", "),
        unions.join(" UNION ALL "),
        order.join(", ")
    );
    OuterUnionPlan {
        relations,
        id_offsets,
        width,
        sql,
    }
}

/// Execute an outer-union plan. The query is prepared against the
/// engine's plan cache, so repeat executions of the same plan shape skip
/// re-parsing the (large) Figure 5 query text.
pub fn execute(db: &mut Database, p: &OuterUnionPlan) -> Result<ResultSet> {
    execute_params(db, p, &[])
}

/// Execute an outer-union plan whose root filter contains `?`/`$n`
/// placeholders (e.g. a plan built with `filter = Some("id = ?")`),
/// binding `params` to them. Lets per-subtree fetch loops reuse one
/// compiled plan across ids instead of parsing a fresh query per id.
pub fn execute_params(
    db: &mut Database,
    p: &OuterUnionPlan,
    params: &[Value],
) -> Result<ResultSet> {
    let stmt = db.prepare(&p.sql)?;
    Ok(db.query_prepared(&stmt, params)?)
}

/// Reassemble the sorted tuple stream into detached XML subtrees inside
/// `doc` — one per selected root tuple. Also returns, for each constructed
/// element, its originating tuple id (useful for id remapping).
pub fn reassemble(
    doc: &mut Document,
    mapping: &Mapping,
    p: &OuterUnionPlan,
    rs: &ResultSet,
) -> Result<Vec<NodeId>> {
    if rs.columns.len() != p.width {
        return Err(ShredError::Reconstruct(format!(
            "outer union width mismatch: {} vs {}",
            rs.columns.len(),
            p.width
        )));
    }
    let mut roots = Vec::new();
    // Open element per level: (tuple id, node).
    let mut open: Vec<Option<(i64, NodeId)>> = vec![None; p.relations.len()];
    // Ordered mappings: remember each constructed node's pos_ value and
    // which parents gained children, to restore document order afterwards.
    let mut pos_of: std::collections::HashMap<NodeId, i64> = std::collections::HashMap::new();
    let mut parents: Vec<NodeId> = Vec::new();
    for row in &rs.rows {
        // The row's level is the deepest relation whose own id column is
        // non-NULL and whose ancestor keys match; since children carry only
        // ancestor keys, that is simply the *last* non-null id column.
        let mut level = None;
        for (li, &off) in p.id_offsets.iter().enumerate() {
            if !row[off].is_null() {
                level = Some(li);
            }
        }
        let level =
            level.ok_or_else(|| ShredError::Reconstruct("row with no id columns set".into()))?;
        let off = p.id_offsets[level];
        let id = row[off]
            .as_int()
            .ok_or_else(|| ShredError::Reconstruct(format!("non-integer id {:?}", row[off])))?;
        let rel = &mapping.relations[p.relations[level]];
        let data = &row[off + 1..off + 1 + rel.columns.len()];
        let el = build_element(doc, rel, data)?;
        if mapping.ordered {
            if let Some(pi) = rel.find_column(&[], &crate::inline::ColumnKind::Position) {
                if let Some(pos) = data[pi].as_int() {
                    pos_of.insert(el, pos);
                }
            }
        }
        if level == 0 {
            roots.push(el);
        } else {
            // Parent level: the relation-tree parent of this level.
            let parent_rel = rel.parent.expect("child level has parent");
            let plevel = p
                .relations
                .iter()
                .position(|&r| r == parent_rel)
                .expect("parent in plan");
            let (pid, pnode) = open[plevel].ok_or_else(|| {
                ShredError::Reconstruct("child row arrived before its parent".into())
            })?;
            let expected = row[p.id_offsets[plevel]].as_int();
            if expected != Some(pid) {
                return Err(ShredError::Reconstruct(format!(
                    "child row parent key {expected:?} does not match open parent {pid}"
                )));
            }
            doc.append_child(pnode, el)?;
            if mapping.ordered {
                parents.push(pnode);
            }
        }
        open[level] = Some((id, el));
        for o in open.iter_mut().skip(level + 1) {
            *o = None;
        }
    }
    if mapping.ordered {
        parents.sort_unstable();
        parents.dedup();
        for pnode in parents {
            if let Some(e) = doc.element_mut(pnode) {
                // Stable sort: children without a pos (the tuple's own
                // inlined content) keep their places ahead of positioned
                // relation children.
                let mut kids = e.children.clone();
                kids.sort_by_key(|c| pos_of.get(c).copied().unwrap_or(i64::MIN));
                e.children = kids;
            }
        }
    }
    Ok(roots)
}

/// Convenience: run the outer union for `root_rel` and return the rebuilt
/// subtrees as detached elements of a fresh document (plus the document).
pub fn fetch_subtrees(
    db: &mut Database,
    mapping: &Mapping,
    root_rel: usize,
    filter: Option<&str>,
) -> Result<(Document, Vec<NodeId>)> {
    fetch_subtrees_params(db, mapping, root_rel, filter, &[])
}

/// [`fetch_subtrees`] with `?`/`$n` placeholders in the filter bound to
/// `params` — e.g. `filter = Some("id = ?")` fetches one subtree per call
/// while reusing a single compiled outer-union plan across ids.
pub fn fetch_subtrees_params(
    db: &mut Database,
    mapping: &Mapping,
    root_rel: usize,
    filter: Option<&str>,
    params: &[Value],
) -> Result<(Document, Vec<NodeId>)> {
    let p = plan(mapping, root_rel, filter);
    let rs = execute_params(db, &p, params)?;
    let mut doc = Document::new("__results__");
    let roots = reassemble(&mut doc, mapping, &p, &rs)?;
    Ok((doc, roots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{create_schema, shred};
    use xmlup_xml::dtd::Dtd;
    use xmlup_xml::samples::{CUSTOMER_DTD, CUSTOMER_XML};

    fn setup() -> (Database, Mapping, Document) {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        let mapping = Mapping::from_dtd(&dtd, "CustDB").unwrap();
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        shred(&mut db, &mapping, &doc).unwrap();
        (db, mapping, doc)
    }

    #[test]
    fn sql_has_figure5_shape() {
        let (_, mapping, _) = setup();
        let cust = mapping.relation_by_element("Customer").unwrap();
        let p = plan(&mapping, cust, Some("Name = 'John'"));
        assert!(p.sql.starts_with("WITH Q1("));
        assert!(p.sql.contains("UNION ALL"));
        assert!(p.sql.contains("WHERE Name = 'John'"));
        assert!(p.sql.contains("ORDER BY"));
        // Three levels: Customer, Order, OrderLine.
        assert_eq!(p.relations.len(), 3);
        assert!(p.sql.contains("Q3"));
    }

    #[test]
    fn returns_customer_john_example6() {
        let (mut db, mapping, _) = setup();
        let cust = mapping.relation_by_element("Customer").unwrap();
        let (doc, roots) = fetch_subtrees(&mut db, &mapping, cust, Some("Name = 'John'")).unwrap();
        assert_eq!(roots.len(), 2);
        // First John: 2 orders with 2+1 lines.
        let orders: Vec<_> = doc
            .children(roots[0])
            .iter()
            .filter(|&&c| doc.name(c) == Some("Order"))
            .copied()
            .collect();
        assert_eq!(orders.len(), 2);
        let lines = doc
            .children(orders[0])
            .iter()
            .filter(|&&c| doc.name(c) == Some("OrderLine"))
            .count();
        assert_eq!(lines, 2);
        // Inlined values reconstructed.
        let name = doc.children(roots[0])[0];
        assert_eq!(doc.name(name), Some("Name"));
        assert_eq!(doc.string_value(name), "John");
        // Second John has no orders.
        assert!(doc
            .children(roots[1])
            .iter()
            .all(|&c| doc.name(c) != Some("Order")));
    }

    #[test]
    fn whole_document_roundtrip_through_outer_union() {
        let (mut db, mapping, orig) = setup();
        let (doc, roots) = fetch_subtrees(&mut db, &mapping, mapping.root(), None).unwrap();
        assert_eq!(roots.len(), 1);
        assert!(orig.subtree_eq(orig.root(), &doc, roots[0]));
    }

    #[test]
    fn filter_selecting_nothing_returns_empty() {
        let (mut db, mapping, _) = setup();
        let cust = mapping.relation_by_element("Customer").unwrap();
        let (_, roots) = fetch_subtrees(&mut db, &mapping, cust, Some("Name = 'Nobody'")).unwrap();
        assert!(roots.is_empty());
    }

    #[test]
    fn subtree_from_middle_level() {
        let (mut db, mapping, _) = setup();
        let order = mapping.relation_by_element("Order").unwrap();
        let (doc, roots) =
            fetch_subtrees(&mut db, &mapping, order, Some("Status = 'ready'")).unwrap();
        assert_eq!(roots.len(), 2);
        for r in roots {
            assert_eq!(doc.name(r), Some("Order"));
            assert!(doc
                .children(r)
                .iter()
                .any(|&c| doc.name(c) == Some("OrderLine")));
        }
    }
}
