//! The Shared Inlining storage mapping (paper Section 5.1, after
//! Shanmugasundaram et al., VLDB '99).
//!
//! Driven by a DTD: child elements that occur *at most once* under their
//! parent are inlined as columns of the parent's relation (recursively);
//! children under `*`/`+` get their own relation linked by
//! `id`/`parentId`. Inlined non-leaf elements carry a boolean presence
//! flag so deletion can distinguish "absent" from "present but empty"
//! (paper Section 6.1).

use crate::error::{Result, ShredError};
use std::collections::HashMap;
use xmlup_rdb::{ColumnDef, DataType};
use xmlup_xml::dtd::Dtd;

/// What an inlined column stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnKind {
    /// The PCDATA content of the element at `path`.
    Pcdata,
    /// An attribute of the element at `path`.
    Attribute(String),
    /// Presence flag for the inlined (non-leaf) element at `path`.
    Presence,
    /// Document-order position among siblings (order-preserving mappings
    /// only; see [`Mapping::from_dtd_ordered`]). Values are spaced by
    /// [`POS_GAP`] so positional inserts rarely renumber.
    Position,
}

/// Gap between consecutive sibling positions in order-preserving
/// mappings. A midpoint insert needs a gap of at least 2; renumbering
/// restores full gaps when one is exhausted.
pub const POS_GAP: i64 = 1 << 20;

/// One data column of a relation (besides `id` and `parentId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataColumn {
    /// SQL column name.
    pub name: String,
    /// Element path from the relation's element down to the item
    /// (empty for the relation element's own attributes/PCDATA).
    pub path: Vec<String>,
    /// What the column stores.
    pub kind: ColumnKind,
}

/// One relation of the mapping.
#[derive(Debug, Clone)]
pub struct Relation {
    /// SQL table name (unique within the mapping).
    pub table: String,
    /// The element tag this relation stores.
    pub element: String,
    /// Index of the parent relation (`None` for the root relation).
    pub parent: Option<usize>,
    /// Child relation indices in DTD order.
    pub children: Vec<usize>,
    /// Data columns (the physical schema is `id, parentId, data…`).
    pub columns: Vec<DataColumn>,
    /// Element path from the document root to this relation's element.
    pub element_path: Vec<String>,
}

impl Relation {
    /// Full SQL schema: `id`, `parentId`, then the data columns.
    pub fn column_defs(&self) -> Vec<ColumnDef> {
        let mut defs = vec![
            ColumnDef {
                name: "id".into(),
                ty: DataType::Integer,
            },
            ColumnDef {
                name: "parentId".into(),
                ty: DataType::Integer,
            },
        ];
        for c in &self.columns {
            let ty = match c.kind {
                ColumnKind::Presence => DataType::Boolean,
                ColumnKind::Position => DataType::Integer,
                _ => DataType::Text,
            };
            defs.push(ColumnDef {
                name: c.name.clone(),
                ty,
            });
        }
        defs
    }

    /// Index of a data column (0-based among data columns) by its path and
    /// kind.
    pub fn find_column(&self, path: &[String], kind: &ColumnKind) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.path == *path && c.kind == *kind)
    }

    /// `CREATE TABLE` DDL for this relation.
    pub fn create_table_sql(&self) -> String {
        let cols: Vec<String> = self
            .column_defs()
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        format!("CREATE TABLE {} ({})", self.table, cols.join(", "))
    }
}

/// A complete Shared Inlining mapping: a tree of relations.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// All relations; index 0 is the root relation.
    pub relations: Vec<Relation>,
    /// Whether relations carry a `pos_` document-order column (the
    /// order-preservation extension of paper Section 8).
    pub ordered: bool,
    by_path: HashMap<String, usize>,
}

impl Mapping {
    /// Build a mapping from a DTD, rooted at `root` (which must be
    /// declared).
    pub fn from_dtd(dtd: &Dtd, root: &str) -> Result<Mapping> {
        Self::build(dtd, root, false)
    }

    /// Build an *order-preserving* mapping: every relation additionally
    /// stores a `pos_` column holding the tuple's document-order position
    /// among its parent's children, with values spaced [`POS_GAP`] apart.
    /// This is the extension the paper lists as future work in Section 8
    /// ("preservation of order within the XML document"), using the
    /// gap-based scheme it sketches.
    pub fn from_dtd_ordered(dtd: &Dtd, root: &str) -> Result<Mapping> {
        Self::build(dtd, root, true)
    }

    fn build(dtd: &Dtd, root: &str, ordered: bool) -> Result<Mapping> {
        if dtd.element(root).is_none() {
            return Err(ShredError::Mapping(format!(
                "root element <{root}> not declared"
            )));
        }
        let mut m = Mapping {
            relations: Vec::new(),
            ordered,
            by_path: HashMap::new(),
        };
        let mut used_tables: HashMap<String, usize> = HashMap::new();
        m.build_relation(dtd, root, None, &mut Vec::new(), &mut used_tables)?;
        Ok(m)
    }

    /// The root relation's index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Look up a relation by its element path from the root, e.g.
    /// `["CustDB", "Customer", "Order"]`.
    pub fn relation_by_path(&self, path: &[&str]) -> Option<usize> {
        self.by_path.get(&path.join("/")).copied()
    }

    /// Look up the unique relation storing `element`, if unambiguous.
    pub fn relation_by_element(&self, element: &str) -> Option<usize> {
        let mut found = None;
        for (i, r) in self.relations.iter().enumerate() {
            if r.element == element {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// Relations of the subtree rooted at `rel`, in pre-order (including
    /// `rel` itself).
    pub fn subtree(&self, rel: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![rel];
        while let Some(r) = stack.pop() {
            out.push(r);
            // Reverse to preserve DTD order in the pre-order listing.
            for &c in self.relations[r].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of the relation tree (root = 1).
    pub fn depth(&self) -> usize {
        fn go(m: &Mapping, r: usize) -> usize {
            1 + m.relations[r]
                .children
                .iter()
                .map(|&c| go(m, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root())
    }

    /// Ancestor relations of `rel`, root first (excluding `rel` itself).
    pub fn ancestor_chain(&self, rel: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut cur = self.relations[rel].parent;
        while let Some(r) = cur {
            chain.push(r);
            cur = self.relations[r].parent;
        }
        chain.reverse();
        chain
    }

    /// Depth of one relation below the root relation (root = 0).
    pub fn relation_depth(&self, rel: usize) -> usize {
        let mut d = 0;
        let mut cur = rel;
        while let Some(p) = self.relations[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// `CREATE TABLE` statements for all relations.
    pub fn ddl(&self) -> Vec<String> {
        self.relations
            .iter()
            .map(Relation::create_table_sql)
            .collect()
    }

    /// Resolve an element path from the root to either a relation or an
    /// inlined column of a relation.
    pub fn resolve_path(&self, path: &[&str]) -> Option<PathTarget> {
        if let Some(r) = self.relation_by_path(path) {
            return Some(PathTarget::Relation(r));
        }
        // Longest relation prefix, remainder must be an inlined path.
        for cut in (1..path.len()).rev() {
            if let Some(r) = self.relation_by_path(&path[..cut]) {
                let rest: Vec<String> = path[cut..].iter().map(|s| s.to_string()).collect();
                let rel = &self.relations[r];
                if let Some(ci) = rel.find_column(&rest, &ColumnKind::Pcdata) {
                    return Some(PathTarget::Column {
                        relation: r,
                        column: ci,
                    });
                }
                if let Some(ci) = rel.find_column(&rest, &ColumnKind::Presence) {
                    return Some(PathTarget::InlinedElement {
                        relation: r,
                        presence: Some(ci),
                    });
                }
                // An inlined element with columns but no presence flag
                // (PCDATA-only leaf) resolves to its PCDATA column above;
                // otherwise check whether any column lives under this path.
                let has_descendant_cols = rel
                    .columns
                    .iter()
                    .any(|c| c.path.len() > rest.len() && c.path[..rest.len()] == rest[..]);
                if has_descendant_cols {
                    return Some(PathTarget::InlinedElement {
                        relation: r,
                        presence: None,
                    });
                }
                return None;
            }
        }
        None
    }

    fn build_relation(
        &mut self,
        dtd: &Dtd,
        element: &str,
        parent: Option<usize>,
        ancestors: &mut Vec<String>,
        used_tables: &mut HashMap<String, usize>,
    ) -> Result<usize> {
        // Unique table name: element name, disambiguated on collision.
        let table = {
            let n = used_tables.entry(element.to_string()).or_insert(0);
            *n += 1;
            if *n == 1 {
                element.to_string()
            } else {
                format!("{element}_{n}")
            }
        };
        let idx = self.relations.len();
        let mut element_path = ancestors.clone();
        element_path.push(element.to_string());
        self.relations.push(Relation {
            table,
            element: element.to_string(),
            parent,
            children: Vec::new(),
            columns: Vec::new(),
            element_path: element_path.clone(),
        });
        self.by_path.insert(element_path.join("/"), idx);
        if let Some(p) = parent {
            self.relations[p].children.push(idx);
        }

        ancestors.push(element.to_string());
        let mut columns = Vec::new();
        if self.ordered {
            columns.push(DataColumn {
                name: "pos_".into(),
                path: Vec::new(),
                kind: ColumnKind::Position,
            });
        }
        self.inline_into(dtd, element, &mut Vec::new(), &mut columns, true, ancestors)?;
        // Underscore-joined path names can collide (`a_b` from path [a,b]
        // vs attribute `b` of inlined `a`); disambiguate with a numeric
        // suffix so the generated CREATE TABLE stays valid.
        let mut seen: HashMap<String, usize> = HashMap::new();
        for col in &mut columns {
            let n = seen.entry(col.name.to_ascii_lowercase()).or_insert(0);
            *n += 1;
            if *n > 1 {
                col.name = format!("{}_{n}", col.name);
            }
        }
        self.relations[idx].columns = columns;

        // Child relations for repeatable children (and recursive ones).
        for (child, card) in dtd.child_cardinalities(element) {
            if !card.repeatable {
                continue;
            }
            if ancestors.contains(&child) {
                return Err(ShredError::Mapping(format!(
                    "recursive DTD element <{child}> is not supported by the inlining mapping \
                     (use the edge mapping instead)"
                )));
            }
            self.build_relation(dtd, &child, Some(idx), ancestors, used_tables)?;
        }
        ancestors.pop();
        Ok(idx)
    }

    /// Recursively add inlined columns for `element`'s attributes, PCDATA,
    /// and non-repeatable children.
    fn inline_into(
        &self,
        dtd: &Dtd,
        element: &str,
        path: &mut Vec<String>,
        out: &mut Vec<DataColumn>,
        is_relation_root: bool,
        ancestors: &[String],
    ) -> Result<()> {
        // Attributes (ID/IDREF/IDREFS stored as text, per Section 5.1's
        // uniform treatment).
        for decl in dtd.attrs(element) {
            out.push(DataColumn {
                name: mangle(&column_name(path, &decl.name)),
                path: path.clone(),
                kind: ColumnKind::Attribute(decl.name.clone()),
            });
        }
        // PCDATA content.
        if dtd.is_pcdata_only(element) {
            if !is_relation_root || path.is_empty() {
                let name = if path.is_empty() {
                    // The relation element itself is PCDATA-only: store its
                    // text under a `value` column.
                    "value_".to_string()
                } else {
                    mangle(&path.join("_"))
                };
                out.push(DataColumn {
                    name,
                    path: path.clone(),
                    kind: ColumnKind::Pcdata,
                });
            }
            return Ok(());
        }
        // Mixed content on a relation root stores its text too.
        if let Some(xmlup_xml::ContentModel::Mixed(_)) = dtd.element(element) {
            let name = if path.is_empty() {
                "value_".to_string()
            } else {
                mangle(&path.join("_"))
            };
            out.push(DataColumn {
                name,
                path: path.clone(),
                kind: ColumnKind::Pcdata,
            });
        }
        // Presence flag for inlined non-leaf elements.
        if !path.is_empty() {
            out.push(DataColumn {
                name: mangle(&format!("{}_present", path.join("_"))),
                path: path.clone(),
                kind: ColumnKind::Presence,
            });
        }
        // Non-repeatable children inline recursively.
        for (child, card) in dtd.child_cardinalities(element) {
            if card.repeatable {
                continue;
            }
            if dtd.element(&child).is_none() {
                return Err(ShredError::Mapping(format!(
                    "element <{child}> not declared"
                )));
            }
            if ancestors.contains(&child) || path.contains(&child) {
                return Err(ShredError::Mapping(format!(
                    "recursive inlined element <{child}> is not supported"
                )));
            }
            path.push(child.clone());
            self.inline_into(dtd, &child, path, out, false, ancestors)?;
            path.pop();
        }
        Ok(())
    }
}

fn column_name(path: &[String], attr: &str) -> String {
    if path.is_empty() {
        attr.to_string()
    } else {
        format!("{}_{attr}", path.join("_"))
    }
}

/// Avoid collisions with the fixed `id`/`parentId` columns.
fn mangle(name: &str) -> String {
    if name.eq_ignore_ascii_case("id") || name.eq_ignore_ascii_case("parentid") {
        format!("{name}_a")
    } else {
        name.to_string()
    }
}

/// Result of [`Mapping::resolve_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTarget {
    /// The path names an element with its own relation.
    Relation(usize),
    /// The path names an inlined PCDATA item: a column of a relation.
    Column {
        /// Relation index.
        relation: usize,
        /// Data-column index within the relation.
        column: usize,
    },
    /// The path names an inlined non-leaf element (presence column given
    /// when one exists).
    InlinedElement {
        /// Relation index.
        relation: usize,
        /// Presence-flag column index, if any.
        presence: Option<usize>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlup_xml::samples::CUSTOMER_DTD;

    fn customer_mapping() -> Mapping {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        Mapping::from_dtd(&dtd, "CustDB").unwrap()
    }

    #[test]
    fn customer_dtd_produces_four_relations() {
        let m = customer_mapping();
        let tables: Vec<&str> = m.relations.iter().map(|r| r.table.as_str()).collect();
        // Paper Section 5.1: CustDB, Customer, Order, OrderLine.
        assert_eq!(tables, vec!["CustDB", "Customer", "Order", "OrderLine"]);
    }

    #[test]
    fn customer_inlines_name_and_address() {
        let m = customer_mapping();
        let cust = &m.relations[m.relation_by_element("Customer").unwrap()];
        let names: Vec<&str> = cust.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Name"));
        assert!(names.contains(&"Address_City"));
        assert!(names.contains(&"Address_State"));
        assert!(
            names.contains(&"Address_present"),
            "non-leaf inlined element gets a flag"
        );
    }

    #[test]
    fn order_inlines_optional_status() {
        let m = customer_mapping();
        let ord = &m.relations[m.relation_by_element("Order").unwrap()];
        let names: Vec<&str> = ord.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Date"));
        assert!(names.contains(&"Status"));
    }

    #[test]
    fn relation_tree_structure() {
        let m = customer_mapping();
        let root = m.root();
        assert_eq!(m.relations[root].element, "CustDB");
        assert_eq!(m.relations[root].children.len(), 1);
        let cust = m.relations[root].children[0];
        assert_eq!(m.relations[cust].element, "Customer");
        let order = m.relations[cust].children[0];
        assert_eq!(m.relations[order].element, "Order");
        assert_eq!(m.relations[order].parent, Some(cust));
        assert_eq!(m.depth(), 4);
        assert_eq!(m.relation_depth(order), 2);
    }

    #[test]
    fn resolve_paths() {
        let m = customer_mapping();
        let cust = m.relation_by_element("Customer").unwrap();
        assert_eq!(
            m.resolve_path(&["CustDB", "Customer"]),
            Some(PathTarget::Relation(cust))
        );
        match m.resolve_path(&["CustDB", "Customer", "Name"]) {
            Some(PathTarget::Column { relation, column }) => {
                assert_eq!(relation, cust);
                assert_eq!(m.relations[cust].columns[column].name, "Name");
            }
            other => panic!("{other:?}"),
        }
        match m.resolve_path(&["CustDB", "Customer", "Address"]) {
            Some(PathTarget::InlinedElement {
                relation,
                presence: Some(_),
            }) => {
                assert_eq!(relation, cust)
            }
            other => panic!("{other:?}"),
        }
        match m.resolve_path(&["CustDB", "Customer", "Address", "City"]) {
            Some(PathTarget::Column { .. }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.resolve_path(&["CustDB", "Nothing"]), None);
    }

    #[test]
    fn ddl_is_valid_sql() {
        let m = customer_mapping();
        let mut db = xmlup_rdb::Database::new();
        for ddl in m.ddl() {
            db.execute(&ddl).unwrap();
        }
        assert_eq!(db.table_names().len(), 4);
        let cust = db.table("customer").unwrap();
        assert_eq!(cust.schema.columns[0].name, "id");
        assert_eq!(cust.schema.columns[1].name, "parentId");
    }

    #[test]
    fn subtree_preorder() {
        let m = customer_mapping();
        let subtree = m.subtree(m.root());
        assert_eq!(subtree.len(), 4);
        assert_eq!(subtree[0], m.root());
        let cust = m.relation_by_element("Customer").unwrap();
        assert_eq!(m.subtree(cust).len(), 3);
    }

    #[test]
    fn id_attribute_collision_mangled() {
        let dtd = Dtd::parse(
            r#"<!ELEMENT db (item*)>
               <!ELEMENT item (#PCDATA)>
               <!ATTLIST item id CDATA #IMPLIED>"#,
        )
        .unwrap();
        let m = Mapping::from_dtd(&dtd, "db").unwrap();
        let item = &m.relations[m.relation_by_element("item").unwrap()];
        assert!(item.columns.iter().any(|c| c.name == "id_a"));
    }

    #[test]
    fn recursive_dtd_rejected() {
        let dtd = Dtd::parse(
            r#"<!ELEMENT part (part*)>
               "#,
        )
        .unwrap();
        assert!(matches!(
            Mapping::from_dtd(&dtd, "part"),
            Err(ShredError::Mapping(_))
        ));
    }

    #[test]
    fn same_tag_under_two_parents_gets_two_relations() {
        let dtd = Dtd::parse(
            r#"<!ELEMENT db (a*, b*)>
               <!ELEMENT a (x*)>
               <!ELEMENT b (x*)>
               <!ELEMENT x (#PCDATA)>"#,
        )
        .unwrap();
        let m = Mapping::from_dtd(&dtd, "db").unwrap();
        let tables: Vec<&str> = m.relations.iter().map(|r| r.table.as_str()).collect();
        assert_eq!(tables, vec!["db", "a", "x", "b", "x_2"]);
        assert!(m.relation_by_element("x").is_none(), "ambiguous element");
        assert!(m.relation_by_path(&["db", "a", "x"]).is_some());
        assert!(m.relation_by_path(&["db", "b", "x"]).is_some());
    }

    #[test]
    fn pcdata_only_relation_root_gets_value_column() {
        let dtd = Dtd::parse(
            r#"<!ELEMENT db (note*)>
               <!ELEMENT note (#PCDATA)>"#,
        )
        .unwrap();
        let m = Mapping::from_dtd(&dtd, "db").unwrap();
        let note = &m.relations[m.relation_by_element("note").unwrap()];
        assert_eq!(note.columns.len(), 1);
        assert_eq!(note.columns[0].name, "value_");
        assert_eq!(note.columns[0].kind, ColumnKind::Pcdata);
    }
}
