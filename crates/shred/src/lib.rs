//! # xmlup-shred
//!
//! The XML↔relational storage layer of the *Updating XML* reproduction
//! (paper Section 5): the Shared Inlining mapping driven by a DTD, a
//! document shredder/reconstructor, the Sorted Outer Union result method
//! (Figure 5), Access Support Relations, and the DTD-less Edge mapping as
//! the comparison baseline.
//!
//! ```
//! use xmlup_rdb::Database;
//! use xmlup_shred::{inline::Mapping, loader, outer_union};
//! use xmlup_xml::{dtd::Dtd, samples};
//!
//! let dtd = Dtd::parse(samples::CUSTOMER_DTD).unwrap();
//! let mapping = Mapping::from_dtd(&dtd, "CustDB").unwrap();
//! let doc = xmlup_xml::parse(samples::CUSTOMER_XML).unwrap().doc;
//!
//! let mut db = Database::new();
//! loader::create_schema(&mut db, &mapping).unwrap();
//! loader::shred(&mut db, &mapping, &doc).unwrap();
//!
//! // Example 6: customers named John, via the Sorted Outer Union.
//! let cust = mapping.relation_by_element("Customer").unwrap();
//! let (result_doc, roots) =
//!     outer_union::fetch_subtrees(&mut db, &mapping, cust, Some("Name = 'John'")).unwrap();
//! assert_eq!(roots.len(), 2);
//! # let _ = result_doc;
//! ```

pub mod asr;
pub mod edge;
pub mod error;
pub mod inline;
pub mod loader;
pub mod outer_union;

pub use asr::AsrIndex;
pub use error::{Result, ShredError};
pub use inline::{ColumnKind, DataColumn, Mapping, PathTarget, Relation};
pub use outer_union::OuterUnionPlan;
