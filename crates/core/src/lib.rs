//! # xmlup-core
//!
//! The primary contribution of *Updating XML* (SIGMOD 2001): executing
//! XQuery update statements over XML shredded into a relational database.
//!
//! * [`delete`] — the four complex-delete strategies of Section 6.1
//!   (per-tuple trigger, per-statement trigger, cascading, ASR-based) plus
//!   simple inlined deletes.
//! * [`insert`] — the three complex-insert strategies of Section 6.2
//!   (tuple-based, table-based, ASR-based) plus simple inlined inserts.
//! * [`translate`] — XQuery → SQL translation for the supported statement
//!   subset, including ASR-accelerated path predicates (Section 5.3).
//! * [`repository`] — [`XmlRepository`], the middleware facade tying the
//!   mapping, strategies, and Sorted Outer Union together.
//!
//! ```
//! use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
//! use xmlup_xml::{dtd::Dtd, samples};
//!
//! let dtd = Dtd::parse(samples::CUSTOMER_DTD).unwrap();
//! let doc = xmlup_xml::parse(samples::CUSTOMER_XML).unwrap().doc;
//! let mut repo = XmlRepository::new(&dtd, "CustDB", RepoConfig {
//!     delete_strategy: DeleteStrategy::PerTupleTrigger,
//!     insert_strategy: InsertStrategy::Table,
//!     build_asr: false,
//!     statement_cost_us: 0,
//!     ..RepoConfig::default()
//! }).unwrap();
//! repo.load(&doc).unwrap();
//!
//! // Paper Example 9: delete customers named John — one SQL statement,
//! // triggers cascade inside the engine.
//! let n = repo.execute_xquery(
//!     r#"FOR $d IN document("custdb.xml")/CustDB,
//!            $c IN $d/Customer[Name="John"]
//!        UPDATE $d { DELETE $c }"#,
//! ).unwrap();
//! assert_eq!(n, 2);
//! ```

pub mod concurrent;
pub mod delete;
pub mod error;
pub mod insert;
pub mod ordered;
pub mod repository;
pub mod translate;

pub use concurrent::{RepoSnapshot, SharedRepository};
pub use delete::DeleteStrategy;
pub use error::{CoreError, Result};
pub use insert::InsertStrategy;
pub use ordered::{insert_tuple_at, InsertAt, PositionalInsert};
pub use repository::{RepoConfig, XmlRepository};
pub use translate::{QuerySpec, TranslatedOp};
