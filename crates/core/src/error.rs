//! Errors for the update-translation layer.

use std::fmt;
use xmlup_rdb::DbError;
use xmlup_shred::ShredError;
use xmlup_xquery::QueryError;

/// Errors raised while translating or executing XML updates over the
/// relational store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The statement uses features outside the translatable subset.
    Unsupported(String),
    /// A path in the statement does not resolve against the mapping.
    Path(String),
    /// Strategy-level failure.
    Strategy(String),
    /// Underlying relational error.
    Db(DbError),
    /// Underlying mapping error.
    Shred(ShredError),
    /// Underlying XQuery error.
    Query(QueryError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
            CoreError::Path(m) => write!(f, "path error: {m}"),
            CoreError::Strategy(m) => write!(f, "strategy error: {m}"),
            CoreError::Db(e) => write!(f, "{e}"),
            CoreError::Shred(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl CoreError {
    /// True when the root cause is an injected fault
    /// ([`DbError::FaultInjected`]): the failing statement — and the
    /// enclosing translated operation, which the repository runs as one
    /// transaction — has been rolled back, and the operation can simply
    /// be retried.
    pub fn is_injected_fault(&self) -> bool {
        let db = match self {
            CoreError::Db(e) => e,
            CoreError::Shred(ShredError::Db(e)) => e,
            _ => return false,
        };
        matches!(db.root_cause(), DbError::FaultInjected(_))
    }
}

impl std::error::Error for CoreError {}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<ShredError> for CoreError {
    fn from(e: ShredError) -> Self {
        CoreError::Shred(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
