//! `XmlRepository`: the paper's middleware — an XML store whose documents
//! live shredded in the relational engine, with pluggable delete/insert
//! strategies and XQuery update execution.

use crate::delete::{self, DeleteStrategy};
use crate::error::{CoreError, Result};
use crate::insert::{self, InsertStrategy};
use crate::translate::{self, TranslatedOp};
use xmlup_rdb::{BackendKind, Database, Span, Stats, StorageConfig, Value};
use xmlup_shred::{loader, outer_union, AsrIndex, Mapping};
use xmlup_xml::dtd::Dtd;
use xmlup_xml::{Document, NodeId};
use xmlup_xquery::parse_statement;

/// Repository configuration.
#[derive(Debug, Clone, Copy)]
pub struct RepoConfig {
    /// Strategy for complex deletes.
    pub delete_strategy: DeleteStrategy,
    /// Strategy for complex inserts.
    pub insert_strategy: InsertStrategy,
    /// Build (and maintain) the Access Support Relation. Forced on when
    /// either strategy is ASR-based.
    pub build_asr: bool,
    /// Simulated per-client-statement overhead in microseconds (the
    /// JDBC round-trip + SQL compilation cost of the paper's DB2 setup).
    /// Zero disables the simulation; the benchmark harness enables it so
    /// statement-count trade-offs behave as they did against a real
    /// client/server RDBMS. See DESIGN.md.
    pub statement_cost_us: u64,
    /// Maximum rows folded into one translated SQL statement: multi-row
    /// `INSERT ... VALUES (...), (...)` and `DELETE ... WHERE id IN (...)`
    /// chunks. `1` reproduces the paper's one-statement-per-tuple
    /// translation; larger windows amortize the per-statement cost that
    /// dominates §6's tuple-binding numbers.
    pub batch_size: usize,
    /// Storage backend for durable repositories: heap tables serialized
    /// as a full snapshot per checkpoint (`Memory`, the default) or the
    /// paged B-tree store with incremental checkpoints (`Paged`).
    /// Ignored by in-memory constructors ([`XmlRepository::new`]).
    pub backend: BackendKind,
    /// Buffer-pool frame budget for the paged backend (pages held in
    /// memory at once). Ignored by the memory backend.
    pub pool_frames: usize,
}

impl Default for RepoConfig {
    fn default() -> Self {
        RepoConfig {
            delete_strategy: DeleteStrategy::PerTupleTrigger,
            insert_strategy: InsertStrategy::Table,
            build_asr: false,
            statement_cost_us: 0,
            batch_size: 256,
            backend: BackendKind::Memory,
            pool_frames: 1024,
        }
    }
}

impl RepoConfig {
    /// Whether the configuration needs an ASR.
    pub fn needs_asr(&self) -> bool {
        self.build_asr
            || self.delete_strategy == DeleteStrategy::Asr
            || self.insert_strategy == InsertStrategy::Asr
    }
}

/// An XML repository over the relational engine.
#[derive(Debug)]
pub struct XmlRepository {
    /// The relational store (public for inspection and experiments).
    pub db: Database,
    /// The inlining mapping.
    pub mapping: Mapping,
    /// The ASR, when configured.
    pub asr: Option<AsrIndex>,
    config: RepoConfig,
}

impl XmlRepository {
    /// Create a repository for documents conforming to `dtd` with the
    /// given root element: builds the schema, installs the strategy's
    /// triggers.
    pub fn new(dtd: &Dtd, root: &str, config: RepoConfig) -> Result<Self> {
        Self::with_mapping(Mapping::from_dtd(dtd, root)?, config)
    }

    /// Like [`XmlRepository::new`] but with the order-preserving mapping
    /// (`pos_` columns + gap-based positional inserts; the paper's
    /// Section 8 extension).
    pub fn new_ordered(dtd: &Dtd, root: &str, config: RepoConfig) -> Result<Self> {
        Self::with_mapping(Mapping::from_dtd_ordered(dtd, root)?, config)
    }

    /// Build a repository over an already-constructed mapping.
    pub fn with_mapping(mapping: Mapping, config: RepoConfig) -> Result<Self> {
        let mut db = Database::new();
        db.set_statement_cost(std::time::Duration::from_micros(config.statement_cost_us));
        loader::create_schema(&mut db, &mapping)?;
        delete::install_triggers(&mut db, &mapping, config.delete_strategy)?;
        Ok(XmlRepository {
            db,
            mapping,
            asr: None,
            config,
        })
    }

    /// Open (or create) a durable repository rooted at `path`: the
    /// relational store lives on disk behind a write-ahead log (see
    /// [`Database::open`]). A fresh directory gets the schema and the
    /// strategy's triggers; an existing one is crash-recovered to its
    /// last committed state — snapshot and WAL already carry the schema,
    /// triggers, data, and id counter, so nothing is re-created, and a
    /// previously built ASR is reattached rather than rebuilt.
    pub fn open_durable(
        path: impl AsRef<std::path::Path>,
        mapping: Mapping,
        config: RepoConfig,
    ) -> Result<Self> {
        let storage = StorageConfig {
            backend: config.backend,
            pool_frames: config.pool_frames,
            ..StorageConfig::default()
        };
        let mut db = Database::open_with(path, storage)?;
        db.set_statement_cost(std::time::Duration::from_micros(config.statement_cost_us));
        if db.table_names().is_empty() {
            loader::create_schema(&mut db, &mapping)?;
            delete::install_triggers(&mut db, &mapping, config.delete_strategy)?;
        }
        let asr = if config.needs_asr() && db.table("ASR").is_some() {
            Some(AsrIndex::attach(&mapping))
        } else {
            None
        };
        Ok(XmlRepository {
            db,
            mapping,
            asr,
            config,
        })
    }

    /// Checkpoint the underlying durable store: write a full snapshot
    /// and truncate the write-ahead log. Errors on a non-durable
    /// repository or inside an open transaction.
    pub fn checkpoint(&mut self) -> Result<()> {
        Ok(self.db.checkpoint()?)
    }

    /// Flush and fsync the WAL, then close the store. A no-op beyond
    /// dropping for an in-memory repository. Crash recovery does not
    /// require this — dropping the repository is equivalent to a kill,
    /// and committed state survives either way — but a clean close
    /// surfaces any deferred I/O error instead of swallowing it.
    pub fn close_durable(self) -> Result<()> {
        Ok(self.db.close()?)
    }

    /// Run `f` as one transaction against the store — the paper
    /// Section 3 atomicity guarantee for a translated update: either
    /// every SQL statement the operation issued (triggers included)
    /// commits, or a mid-operation error rolls the store back to its
    /// byte-identical pre-operation state. When a transaction is already
    /// open (e.g. a multi-operation `UPDATE { … }` block wrapping
    /// several sub-operations), the outer transaction owns atomicity and
    /// `f` runs inside it unchanged.
    pub fn in_transaction<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.atomically(f)
    }

    /// [`XmlRepository::in_transaction`]'s internal twin (kept private so
    /// doc links on the public name stay the single entry point).
    fn atomically<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if self.db.in_transaction() {
            return f(self);
        }
        self.db.begin()?;
        match f(self) {
            Ok(v) => {
                self.db.commit()?;
                Ok(v)
            }
            Err(e) => {
                // Restore the pre-operation state; surface the original
                // error, not any rollback-side problem.
                let _ = self.db.rollback();
                Err(e)
            }
        }
    }

    /// Positional insert of a new child tuple (order-preserving mappings
    /// only); see [`crate::ordered`]. Atomic: the position probe, any
    /// gap-exhaustion renumbering, and the insert commit or roll back
    /// together.
    pub fn insert_tuple_at(
        &mut self,
        rel: usize,
        parent_id: i64,
        values: &[(String, Value)],
        at: crate::ordered::InsertAt,
    ) -> Result<crate::ordered::PositionalInsert> {
        self.atomically(|r| {
            crate::ordered::insert_tuple_at(&mut r.db, &r.mapping, rel, parent_id, values, at)
        })
    }

    /// The active configuration.
    pub fn config(&self) -> RepoConfig {
        self.config
    }

    /// Shred a document into the store (building the ASR afterwards when
    /// configured). Returns tuples inserted. Atomic: a failed load (bad
    /// document mid-shred) leaves the store as it was.
    pub fn load(&mut self, doc: &Document) -> Result<usize> {
        self.atomically(|r| {
            let shred_span = Span::enter("shred.emit");
            let n = loader::shred(&mut r.db, &r.mapping, doc)?;
            drop(shred_span);
            if r.config.needs_asr() && r.asr.is_none() {
                r.asr = Some(AsrIndex::build(&mut r.db, &r.mapping)?);
            } else if let Some(asr) = &r.asr {
                asr.populate(&mut r.db, &r.mapping)?;
            }
            Ok(n)
        })
    }

    /// Execution statistics of the underlying engine.
    pub fn stats(&self) -> Stats {
        self.db.stats()
    }

    /// Reset the engine's statistics counters.
    pub fn reset_stats(&mut self) {
        self.db.reset_stats();
    }

    /// The engine's metrics registry rendered in the Prometheus text
    /// exposition format (see [`Database::metrics_text`]). For a
    /// crash-recovered repository this includes the recovery series
    /// (`rdb_recovered_txns_total`, `rdb_wal_replayed_bytes_total`,
    /// `rdb_recovery_micros_total`).
    pub fn metrics_text(&self) -> String {
        self.db.metrics_text()
    }

    /// Total live tuples across the mapping's tables (Table 1's
    /// "data size" metric).
    pub fn tuple_count(&self) -> usize {
        self.mapping
            .relations
            .iter()
            .filter_map(|r| self.db.table(&r.table).map(|t| t.len()))
            .sum()
    }

    /// Ids of all tuples of `rel` (sorted).
    pub fn ids_of(&self, rel: usize) -> Vec<i64> {
        let mut ids: Vec<i64> = self
            .db
            .table(&self.mapping.relations[rel].table)
            .map(|t| t.rows().filter_map(|r| r[0].as_int()).collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Id of the document root tuple.
    pub fn root_id(&self) -> Result<i64> {
        self.ids_of(self.mapping.root())
            .first()
            .copied()
            .ok_or_else(|| CoreError::Strategy("repository is empty".into()))
    }

    // ------------------------------------------------------------------
    // direct (pre-translated) operations
    // ------------------------------------------------------------------

    /// Complex delete: remove subtrees of `rel` matching `filter`.
    pub fn delete_where(&mut self, rel: usize, filter: Option<&str>) -> Result<usize> {
        self.delete_where_params(rel, filter, &[])
    }

    /// [`XmlRepository::delete_where`] with `?`/`$n` placeholders in the
    /// filter bound to `params`.
    ///
    /// The whole delete — trigger cascades, the cascading strategy's
    /// per-level statements, ASR maintenance — executes as one
    /// transaction: a mid-delete error restores the pre-delete state.
    pub fn delete_where_params(
        &mut self,
        rel: usize,
        filter: Option<&str>,
        params: &[Value],
    ) -> Result<usize> {
        self.atomically(|r| {
            let n = delete::delete_where_params(
                &mut r.db,
                &r.mapping,
                r.asr.as_ref(),
                r.config.delete_strategy,
                rel,
                filter,
                params,
            )?;
            // The ASR strategy maintains the index incrementally; any other
            // strategy leaves a built ASR stale — refresh it so ASR-accelerated
            // queries keep answering correctly.
            if n > 0 && r.config.delete_strategy != DeleteStrategy::Asr {
                if let Some(asr) = &r.asr {
                    asr.populate(&mut r.db, &r.mapping)?;
                }
            }
            Ok(n)
        })
    }

    /// Complex delete of one subtree by id. Parameterized (`id = ?`), so
    /// a loop of per-tuple deletes parses each statement shape once.
    pub fn delete_by_id(&mut self, rel: usize, id: i64) -> Result<usize> {
        self.delete_where_params(rel, Some("id = ?"), &[Value::Int(id)])
    }

    /// Batched complex delete: remove the subtrees of `rel` rooted at
    /// `ids`, folding up to [`RepoConfig::batch_size`] roots into each
    /// `DELETE ... WHERE id IN (...)` statement instead of issuing one
    /// statement per root. Atomic across all chunks. Equivalent to a
    /// `delete_by_id` loop when the target subtrees are disjoint (the
    /// roots sort within each chunk, so FOR EACH ROW triggers fire in id
    /// order); overlapping targets are deleted once rather than erroring
    /// per-root. Returns subtree roots removed.
    pub fn delete_by_ids(&mut self, rel: usize, ids: &[i64]) -> Result<usize> {
        if ids.is_empty() {
            return Ok(0);
        }
        let batch = self.config.batch_size.max(1);
        self.atomically(|r| {
            let mut n = 0;
            for chunk in ids.chunks(batch) {
                // Placeholders, not literals: every full chunk shares one
                // statement text (`id IN (?, …)` of width `batch`), so the
                // whole workload parses each shape once — the prepared-
                // statement discipline of the per-tuple path, kept under
                // batching.
                let marks = vec!["?"; chunk.len()].join(", ");
                let params: Vec<Value> = chunk.iter().map(|&id| Value::Int(id)).collect();
                n += r.delete_where_params(rel, Some(&format!("id IN ({marks})")), &params)?;
            }
            Ok(n)
        })
    }

    /// Complex insert: copy the subtree at (`rel`, `src_id`) under
    /// `dst_parent_id`. Returns tuples created.
    ///
    /// Atomic: the table-based strategy's temporary tables (DDL), the
    /// per-level load statements, id allocation, and ASR maintenance
    /// all commit or roll back as one unit.
    pub fn copy_subtree(&mut self, rel: usize, src_id: i64, dst_parent_id: i64) -> Result<usize> {
        self.atomically(|r| {
            let n = insert::copy_subtree(
                &mut r.db,
                &r.mapping,
                r.asr.as_ref(),
                r.config.insert_strategy,
                rel,
                src_id,
                dst_parent_id,
                r.config.batch_size,
            )?;
            if n > 0 && r.config.insert_strategy != InsertStrategy::Asr {
                if let Some(asr) = &r.asr {
                    asr.populate(&mut r.db, &r.mapping)?;
                }
            }
            Ok(n)
        })
    }

    /// Fetch subtrees of `rel` matching `filter` via the Sorted Outer
    /// Union, reconstructed as XML.
    pub fn fetch(&mut self, rel: usize, filter: Option<&str>) -> Result<(Document, Vec<NodeId>)> {
        Ok(outer_union::fetch_subtrees(
            &mut self.db,
            &self.mapping,
            rel,
            filter,
        )?)
    }

    /// [`XmlRepository::fetch`] with `?`/`$n` placeholders in the filter
    /// bound to `params`.
    pub fn fetch_params(
        &mut self,
        rel: usize,
        filter: Option<&str>,
        params: &[Value],
    ) -> Result<(Document, Vec<NodeId>)> {
        Ok(outer_union::fetch_subtrees_params(
            &mut self.db,
            &self.mapping,
            rel,
            filter,
            params,
        )?)
    }

    /// Evaluate a path query (`FOR`/`WHERE`/`RETURN`) and return the
    /// matching subtrees as XML. Uses the ASR to skip intermediate joins
    /// when one is available and the path is covered (Section 5.3).
    pub fn query_xml(&mut self, statement: &str) -> Result<(Document, Vec<NodeId>)> {
        let parse_span = Span::enter("xquery.parse");
        let stmt = parse_statement(statement)?;
        drop(parse_span);
        let translate_span = Span::enter("xquery.translate");
        let q = translate::translate_query(&stmt, &self.mapping)?;
        let filter = translate::query_filter_sql(&q, &self.mapping, self.asr.as_ref())?;
        drop(translate_span);
        self.fetch(q.rel, filter.as_deref())
    }

    // ------------------------------------------------------------------
    // XQuery execution
    // ------------------------------------------------------------------

    /// Parse, translate, and execute an XQuery update statement against
    /// the relational store. Returns the number of affected root objects.
    ///
    /// Multi-operation statements (several sub-ops, or nested Sub-Updates)
    /// run with **bind-first** semantics, exactly as paper Section 6.3
    /// prescribes: all target bindings are computed with queries *before*
    /// any sub-operation executes, so an earlier operation cannot disturb
    /// a later operation's selection (the Example 8 ordering hazard).
    ///
    /// The whole statement is one transaction: bindings are computed
    /// over the pre-update snapshot, and if any sub-operation fails the
    /// store rolls back to that snapshot (no half-applied update block).
    pub fn execute_xquery(&mut self, statement: &str) -> Result<usize> {
        let parse_span = Span::enter("xquery.parse");
        let stmt = parse_statement(statement)?;
        drop(parse_span);
        let translate_span = Span::enter("xquery.translate");
        let ops = translate::translate_update(&stmt, &self.mapping)?;
        drop(translate_span);
        if ops.len() == 1 {
            // Simple statements translate to direct SQL (Section 6.1/6.2).
            return self.execute_translated(&ops[0]);
        }
        self.atomically(|r| {
            let bound: Vec<BoundOp> = ops.iter().map(|op| r.bind_op(op)).collect::<Result<_>>()?;
            let mut affected = 0;
            for b in bound {
                affected += r.exec_bound(b)?;
            }
            Ok(affected)
        })
    }

    /// Ids of `rel` tuples matching a translated filter.
    fn bind_ids(&mut self, rel: usize, filter: &Option<String>) -> Result<Vec<i64>> {
        let table = &self.mapping.relations[rel].table;
        let wc = filter
            .as_deref()
            .map(|f| format!(" WHERE {f}"))
            .unwrap_or_default();
        Ok(self
            .db
            .query(&format!("SELECT id FROM {table}{wc} ORDER BY id"))?
            .rows
            .iter()
            .filter_map(|r| r[0].as_int())
            .collect())
    }

    fn bind_op(&mut self, op: &TranslatedOp) -> Result<BoundOp> {
        Ok(match op {
            TranslatedOp::DeleteSubtrees { rel, filter } => BoundOp::DeleteSubtrees {
                rel: *rel,
                ids: self.bind_ids(*rel, filter)?,
            },
            TranslatedOp::DeleteInlined { rel, path, filter } => BoundOp::DeleteInlined {
                rel: *rel,
                path: path.clone(),
                ids: self.bind_ids(*rel, filter)?,
            },
            TranslatedOp::CopySubtrees {
                src_rel,
                src_filter,
                dst_rel,
                dst_filter,
            } => BoundOp::CopySubtrees {
                src_rel: *src_rel,
                src_ids: self.bind_ids(*src_rel, src_filter)?,
                dst_ids: self.bind_ids(*dst_rel, dst_filter)?,
            },
            TranslatedOp::InsertInlined {
                rel,
                column,
                value,
                filter,
            } => BoundOp::SetInlined {
                rel: *rel,
                column: *column,
                value: value.clone(),
                ids: self.bind_ids(*rel, filter)?,
            },
            TranslatedOp::UpdateInlined {
                rel,
                column,
                value,
                filter,
            } => BoundOp::SetInlined {
                rel: *rel,
                column: *column,
                value: value.clone(),
                ids: self.bind_ids(*rel, filter)?,
            },
            TranslatedOp::InsertTupleAt {
                rel,
                values,
                anchor_rel,
                anchor_filter,
                before,
            } => {
                let anchor_table = &self.mapping.relations[*anchor_rel].table;
                let wc = anchor_filter
                    .as_deref()
                    .map(|f| format!(" WHERE {f}"))
                    .unwrap_or_default();
                let anchors = self
                    .db
                    .query(&format!(
                        "SELECT id, parentId FROM {anchor_table}{wc} ORDER BY id"
                    ))?
                    .rows
                    .iter()
                    .filter_map(|r| Some((r[0].as_int()?, r[1].as_int()?)))
                    .collect();
                BoundOp::InsertTupleAt {
                    rel: *rel,
                    values: values.clone(),
                    anchors,
                    before: *before,
                }
            }
        })
    }

    fn exec_bound(&mut self, op: BoundOp) -> Result<usize> {
        fn in_list(ids: &[i64]) -> String {
            ids.iter()
                .map(i64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        }
        // Bound id sets can be arbitrarily large; fold them into IN-list
        // statements of at most `batch_size` ids each so statement size
        // stays bounded while statement count stays ~n/batch.
        let batch = self.config.batch_size.max(1);
        match op {
            BoundOp::DeleteSubtrees { rel, ids } => {
                if ids.is_empty() {
                    return Ok(0);
                }
                let mut n = 0;
                for chunk in ids.chunks(batch) {
                    n += self.delete_where(rel, Some(&format!("id IN ({})", in_list(chunk))))?;
                }
                Ok(n)
            }
            BoundOp::DeleteInlined { rel, path, ids } => {
                if ids.is_empty() {
                    return Ok(0);
                }
                let mut n = 0;
                for chunk in ids.chunks(batch) {
                    n += delete::delete_inlined(
                        &mut self.db,
                        &self.mapping,
                        rel,
                        &path,
                        Some(&format!("id IN ({})", in_list(chunk))),
                    )?;
                }
                Ok(n)
            }
            BoundOp::CopySubtrees {
                src_rel,
                src_ids,
                dst_ids,
            } => {
                let mut n = 0;
                for &d in &dst_ids {
                    for &s in &src_ids {
                        n += self.copy_subtree(src_rel, s, d)?;
                    }
                }
                Ok(n)
            }
            BoundOp::SetInlined {
                rel,
                column,
                value,
                ids,
            } => {
                if ids.is_empty() {
                    return Ok(0);
                }
                // Route through the simple-insert primitive so presence
                // flags along the inlined path are raised exactly as in
                // the single-op path.
                let mut n = 0;
                for chunk in ids.chunks(batch) {
                    n += insert::insert_inlined(
                        &mut self.db,
                        &self.mapping,
                        rel,
                        column,
                        &value,
                        Some(&format!("id IN ({})", in_list(chunk))),
                        false,
                    )?;
                }
                Ok(n)
            }
            BoundOp::InsertTupleAt {
                rel,
                values,
                anchors,
                before,
            } => {
                let mut n = 0;
                for (aid, parent) in anchors {
                    let at = if before {
                        crate::ordered::InsertAt::Before(aid)
                    } else {
                        crate::ordered::InsertAt::After(aid)
                    };
                    crate::ordered::insert_tuple_at(
                        &mut self.db,
                        &self.mapping,
                        rel,
                        parent,
                        &values,
                        at,
                    )?;
                    n += 1;
                }
                Ok(n)
            }
        }
    }

    /// Execute one translated operation, atomically (see
    /// [`XmlRepository::execute_xquery`]).
    pub fn execute_translated(&mut self, op: &TranslatedOp) -> Result<usize> {
        self.atomically(|r| r.execute_translated_inner(op))
    }

    fn execute_translated_inner(&mut self, op: &TranslatedOp) -> Result<usize> {
        match op {
            TranslatedOp::DeleteSubtrees { rel, filter } => {
                self.delete_where(*rel, filter.as_deref())
            }
            TranslatedOp::DeleteInlined { rel, path, filter } => Ok(delete::delete_inlined(
                &mut self.db,
                &self.mapping,
                *rel,
                path,
                filter.as_deref(),
            )?),
            TranslatedOp::CopySubtrees {
                src_rel,
                src_filter,
                dst_rel,
                dst_filter,
            } => {
                // Bind sources and destinations (ids), then copy each
                // source under each destination.
                let src_table = &self.mapping.relations[*src_rel].table;
                let swc = src_filter
                    .as_deref()
                    .map(|f| format!(" WHERE {f}"))
                    .unwrap_or_default();
                let src_ids: Vec<i64> = self
                    .db
                    .query(&format!("SELECT id FROM {src_table}{swc} ORDER BY id"))?
                    .rows
                    .iter()
                    .filter_map(|r| r[0].as_int())
                    .collect();
                let dst_table = &self.mapping.relations[*dst_rel].table;
                let dwc = dst_filter
                    .as_deref()
                    .map(|f| format!(" WHERE {f}"))
                    .unwrap_or_default();
                let dst_ids: Vec<i64> = self
                    .db
                    .query(&format!("SELECT id FROM {dst_table}{dwc} ORDER BY id"))?
                    .rows
                    .iter()
                    .filter_map(|r| r[0].as_int())
                    .collect();
                let mut n = 0;
                for &d in &dst_ids {
                    for &s in &src_ids {
                        n += self.copy_subtree(*src_rel, s, d)?;
                    }
                }
                Ok(n)
            }
            TranslatedOp::InsertTupleAt {
                rel,
                values,
                anchor_rel,
                anchor_filter,
                before,
            } => {
                // Bind anchors (id + parent), then place one new tuple per
                // anchor using the gap-based positional machinery.
                let anchor_table = &self.mapping.relations[*anchor_rel].table;
                let wc = anchor_filter
                    .as_deref()
                    .map(|f| format!(" WHERE {f}"))
                    .unwrap_or_default();
                let anchors: Vec<(i64, i64)> = self
                    .db
                    .query(&format!(
                        "SELECT id, parentId FROM {anchor_table}{wc} ORDER BY id"
                    ))?
                    .rows
                    .iter()
                    .filter_map(|r| Some((r[0].as_int()?, r[1].as_int()?)))
                    .collect();
                let mut n = 0;
                for (aid, parent) in anchors {
                    let at = if *before {
                        crate::ordered::InsertAt::Before(aid)
                    } else {
                        crate::ordered::InsertAt::After(aid)
                    };
                    crate::ordered::insert_tuple_at(
                        &mut self.db,
                        &self.mapping,
                        *rel,
                        parent,
                        values,
                        at,
                    )?;
                    n += 1;
                }
                Ok(n)
            }
            TranslatedOp::InsertInlined {
                rel,
                column,
                value,
                filter,
            } => Ok(insert::insert_inlined(
                &mut self.db,
                &self.mapping,
                *rel,
                *column,
                value,
                filter.as_deref(),
                false,
            )?),
            TranslatedOp::UpdateInlined {
                rel,
                column,
                value,
                filter,
            } => {
                let relation = &self.mapping.relations[*rel];
                let wc = filter
                    .as_deref()
                    .map(|f| format!(" WHERE {f}"))
                    .unwrap_or_default();
                Ok(self
                    .db
                    .execute(&format!(
                        "UPDATE {} SET {} = {}{wc}",
                        relation.table,
                        relation.columns[*column].name,
                        xmlup_shred::loader::sql_literal(value)
                    ))?
                    .affected())
            }
        }
    }

    /// Helper used by tests and benches: value of an inlined column for a
    /// given tuple id.
    pub fn column_value(&mut self, rel: usize, id: i64, column: &str) -> Result<Value> {
        let stmt = self.db.prepare(&format!(
            "SELECT {column} FROM {} WHERE id = ?",
            self.mapping.relations[rel].table
        ))?;
        let rs = self.db.query_prepared(&stmt, &[Value::Int(id)])?;
        rs.rows
            .first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| CoreError::Strategy(format!("no tuple {id}")))
    }
}

/// A translated operation with its bindings materialized (ids computed
/// before any execution — paper Section 6.3's bind-first discipline).
#[derive(Debug, Clone)]
enum BoundOp {
    DeleteSubtrees {
        rel: usize,
        ids: Vec<i64>,
    },
    DeleteInlined {
        rel: usize,
        path: Vec<String>,
        ids: Vec<i64>,
    },
    CopySubtrees {
        src_rel: usize,
        src_ids: Vec<i64>,
        dst_ids: Vec<i64>,
    },
    SetInlined {
        rel: usize,
        column: usize,
        value: Value,
        ids: Vec<i64>,
    },
    InsertTupleAt {
        rel: usize,
        values: Vec<(String, Value)>,
        anchors: Vec<(i64, i64)>,
        before: bool,
    },
}

impl XmlRepository {
    /// Copy a subtree from another repository (same DTD/mapping shape)
    /// under `dst_parent_id` here — the relational form of paper
    /// Example 10. The subtree travels as XML: fetched from the source via
    /// the Sorted Outer Union, then shredded into this store with fresh
    /// ids. Returns tuples created.
    pub fn import_subtree(
        &mut self,
        src: &mut XmlRepository,
        src_rel: usize,
        src_id: i64,
        dst_rel: usize,
        dst_parent_id: i64,
    ) -> Result<usize> {
        if self.mapping.relations.len() != src.mapping.relations.len()
            || self.mapping.relations[dst_rel].element != src.mapping.relations[src_rel].element
        {
            return Err(CoreError::Strategy(
                "import requires repositories over the same DTD mapping".into(),
            ));
        }
        let (doc, roots) = src.fetch_params(src_rel, Some("id = ?"), &[Value::Int(src_id)])?;
        // The whole import into *this* store is one transaction: a failure
        // mid-shred leaves the destination untouched.
        self.atomically(|rp| {
            // Sibling ordinal for ordered mappings: append after every
            // existing child of the destination parent.
            let mut ord: i64 = 0;
            if rp.mapping.ordered {
                for &crel in &rp.mapping.relations
                    [rp.mapping.relations[dst_rel].parent.unwrap_or(dst_rel)]
                .children
                .clone()
                {
                    let t = &rp.mapping.relations[crel].table;
                    let stmt = rp
                        .db
                        .prepare(&format!("SELECT COUNT(*) FROM {t} WHERE parentId = ?"))?;
                    let rs = rp.db.query_prepared(&stmt, &[Value::Int(dst_parent_id)])?;
                    ord += rs.scalar().and_then(Value::as_int).unwrap_or(0);
                }
            }
            let mut created = 0;
            for r in &roots {
                created += loader::shred_subtree(
                    &mut rp.db,
                    &rp.mapping,
                    &doc,
                    *r,
                    dst_rel,
                    dst_parent_id,
                    ord,
                )?;
                ord += 1;
            }
            if let Some(asr) = &rp.asr {
                asr.populate(&mut rp.db, &rp.mapping)?;
            }
            Ok(created)
        })
    }
}
