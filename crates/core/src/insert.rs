//! The three complex-insert strategies of paper Section 6.2.
//!
//! A complex insert copies an XML subtree stored across multiple relations
//! to a new parent, replicating every tuple under fresh ids while
//! preserving connectivity (copy semantics — ids must stay unique, so the
//! tuples can be neither shared nor copied verbatim).
//!
//! | strategy | id remapping | SQL statements |
//! |----------|--------------|----------------|
//! | tuple    | per-tuple map, gap-free ids | 1 INSERT per copied tuple |
//! | table    | `offset = nextId − minId` over temp tables | ~4 per relation |
//! | ASR      | same offset heuristic over marked ASR paths | ~2 per relation + ASR maintenance |
//!
//! Atomicity: every strategy here issues multiple client statements per
//! logical insert (and the table-based one creates and drops temporary
//! tables). [`crate::XmlRepository`] wraps each translated insert in one
//! engine transaction, so a mid-copy failure removes the partial subtree
//! *and* any leftover temp tables — the DDL undo restores the catalog too.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use xmlup_rdb::{Database, PreparedStmt, Value};
use xmlup_shred::loader::sql_literal;
use xmlup_shred::{outer_union, AsrIndex, Mapping};

/// Strategy selector for complex inserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertStrategy {
    /// Tuple-based (Section 6.2.1): stream the Sorted Outer Union, remap
    /// ids row by row, one `INSERT` per tuple. Low memory, many
    /// statements; allocates ids without gaps.
    Tuple,
    /// Table-based (Section 6.2.2): materialize the source subtree into
    /// temporary tables, remap en masse with the `nextId − minId` offset
    /// heuristic, one `INSERT … SELECT` per relation. The paper's winner
    /// for bulk inserts.
    Table,
    /// ASR-based (Section 6.2.3): find subtree ids by marking ASR paths,
    /// remap with the offset heuristic, insert per relation, extend the
    /// ASR with the copied paths.
    Asr,
}

impl InsertStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [InsertStrategy; 3] = [
        InsertStrategy::Tuple,
        InsertStrategy::Table,
        InsertStrategy::Asr,
    ];

    /// Short label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            InsertStrategy::Tuple => "tuple",
            InsertStrategy::Table => "table",
            InsertStrategy::Asr => "asr",
        }
    }
}

/// On an order-preserving mapping, a fresh gap-spaced position placing a
/// new child of `dst_parent_id` after every existing sibling (copies
/// append, like the paper's unordered inserts). `None` when unordered.
fn appended_pos(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    dst_parent_id: i64,
) -> Result<Option<i64>> {
    use xmlup_shred::inline::POS_GAP;
    use xmlup_shred::ColumnKind;
    if !mapping.ordered {
        return Ok(None);
    }
    let parent = match mapping.relations[rel].parent {
        Some(p) => p,
        None => return Ok(None),
    };
    let mut max_pos = 0i64;
    for &crel in &mapping.relations[parent].children {
        let r = &mapping.relations[crel];
        if let Some(pi) = r.find_column(&[], &ColumnKind::Position) {
            // Parameterized so the statement text is constant per relation
            // and repeated appends reuse one cached plan.
            let stmt = db.prepare(&format!(
                "SELECT MAX({}) FROM {} WHERE parentId = ?",
                r.columns[pi].name, r.table
            ))?;
            let rs = db.query_prepared(&stmt, &[Value::Int(dst_parent_id)])?;
            if let Some(p) = rs.rows[0][0].as_int() {
                max_pos = max_pos.max(p);
            }
        }
    }
    Ok(Some(max_pos + POS_GAP))
}

/// Copy the subtree rooted at tuple `src_id` of relation `rel` so that the
/// copy hangs under parent tuple `dst_parent_id` (a tuple of `rel`'s
/// parent relation — or the same parent for sibling replication). Returns
/// the number of tuples created.
#[allow(clippy::too_many_arguments)]
pub fn copy_subtree(
    db: &mut Database,
    mapping: &Mapping,
    asr: Option<&AsrIndex>,
    strategy: InsertStrategy,
    rel: usize,
    src_id: i64,
    dst_parent_id: i64,
    batch_size: usize,
) -> Result<usize> {
    match strategy {
        InsertStrategy::Tuple => tuple_insert(db, mapping, rel, src_id, dst_parent_id, batch_size),
        InsertStrategy::Table => table_insert(db, mapping, rel, src_id, dst_parent_id),
        InsertStrategy::Asr => {
            let asr = asr.ok_or_else(|| {
                CoreError::Strategy("ASR insert requires a built ASR index".into())
            })?;
            asr_insert(db, mapping, asr, rel, src_id, dst_parent_id)
        }
    }
}

// ----------------------------------------------------------------------
// tuple-based
// ----------------------------------------------------------------------

fn tuple_insert(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    src_id: i64,
    dst_parent_id: i64,
    batch_size: usize,
) -> Result<usize> {
    let batch = batch_size.max(1);
    // Stream the source subtree via the Sorted Outer Union. The root
    // filter is a parameter so every copy of this relation shape reuses
    // one compiled outer-union plan.
    let plan = outer_union::plan(mapping, rel, Some("id = ?"));
    let rs = outer_union::execute_params(db, &plan, &[Value::Int(src_id)])?;
    // old id → new id; parents appear before children in the sorted stream.
    let mut remap: HashMap<i64, i64> = HashMap::new();
    let mut inserted = 0usize;
    // Ids are remapped tuple by tuple (the map above), but the INSERTs are
    // folded: each level buffers remapped rows and flushes a multi-row
    // `INSERT INTO t VALUES (…), (…)` every `batch` tuples — n/batch
    // statements instead of n. One prepared full-batch statement per
    // level, compiled lazily; the sub-batch tail flushes after the loop.
    let mut bufs: Vec<Vec<Value>> = vec![Vec::new(); plan.relations.len()];
    let mut widths: Vec<usize> = vec![0; plan.relations.len()];
    let mut insert_stmts: Vec<Option<PreparedStmt>> = vec![None; plan.relations.len()];
    let row_marks = |width: usize| format!("({})", vec!["?"; width].join(", "));
    for row in &rs.rows {
        // Level = deepest non-null id column (see outer_union::reassemble).
        let mut level = 0;
        for (li, &off) in plan.id_offsets.iter().enumerate() {
            if !row[off].is_null() {
                level = li;
            }
        }
        let off = plan.id_offsets[level];
        let old_id = row[off].as_int().expect("id column");
        let new_id = *remap.entry(old_id).or_insert_with(|| db.allocate_ids(1));
        let relation = &mapping.relations[plan.relations[level]];
        let new_parent = if level == 0 {
            dst_parent_id
        } else {
            let parent_rel = relation.parent.expect("child has parent");
            let plevel = plan
                .relations
                .iter()
                .position(|&r| r == parent_rel)
                .expect("parent in plan");
            let old_parent = row[plan.id_offsets[plevel]].as_int().expect("parent key");
            *remap.get(&old_parent).ok_or_else(|| {
                CoreError::Strategy("child tuple arrived before its parent".into())
            })?
        };
        let mut vals = vec![Value::Int(new_id), Value::Int(new_parent)];
        vals.extend_from_slice(&row[off + 1..off + 1 + relation.columns.len()]);
        if level == 0 {
            // Fresh appended position for the copied root on ordered
            // mappings (descendant positions are per-parent and disjoint,
            // so the verbatim copies below stay correct).
            if let Some(pos) = appended_pos(db, mapping, rel, dst_parent_id)? {
                let pi = relation
                    .find_column(&[], &xmlup_shred::ColumnKind::Position)
                    .expect("ordered relation has pos_");
                vals[2 + pi] = Value::Int(pos);
            }
        }
        widths[level] = vals.len();
        bufs[level].extend(vals);
        inserted += 1;
        if bufs[level].len() == widths[level] * batch {
            if insert_stmts[level].is_none() {
                let rows = vec![row_marks(widths[level]); batch].join(", ");
                insert_stmts[level] =
                    Some(db.prepare(&format!("INSERT INTO {} VALUES {rows}", relation.table))?);
            }
            let stmt = insert_stmts[level].as_ref().expect("prepared above");
            db.execute_prepared(stmt, &bufs[level])?;
            bufs[level].clear();
        }
    }
    // Tail flush: whatever each level buffered short of a full batch, in
    // level order so parents land before descendants.
    for (level, buf) in bufs.iter().enumerate() {
        if buf.is_empty() {
            continue;
        }
        let nrows = buf.len() / widths[level];
        let rows = vec![row_marks(widths[level]); nrows].join(", ");
        let stmt = db.prepare(&format!(
            "INSERT INTO {} VALUES {rows}",
            mapping.relations[plan.relations[level]].table
        ))?;
        db.execute_prepared(&stmt, buf)?;
    }
    Ok(inserted)
}

// ----------------------------------------------------------------------
// table-based
// ----------------------------------------------------------------------

fn table_insert(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    src_id: i64,
    dst_parent_id: i64,
) -> Result<usize> {
    let subtree = mapping.subtree(rel);
    // 1. Materialize the source subtree into temp tables, level by level.
    for (i, &s) in subtree.iter().enumerate() {
        let relation = &mapping.relations[s];
        let cols: Vec<String> = relation
            .column_defs()
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        db.execute(&format!(
            "CREATE TABLE tmp_{} ({})",
            relation.table,
            cols.join(", ")
        ))?;
        if i == 0 {
            // Prepared so the root id is bound, not embedded: the statement
            // shape stays constant across copies (the CREATEs above clear
            // the plan cache, but the handle keeps its compiled plan).
            let load = db.prepare(&format!(
                "INSERT INTO tmp_{t} SELECT * FROM {t} WHERE id = ?",
                t = relation.table
            ))?;
            db.execute_prepared(&load, &[Value::Int(src_id)])?;
        } else {
            let parent = mapping.relations[s].parent.expect("child has parent");
            db.execute(&format!(
                "INSERT INTO tmp_{t} SELECT * FROM {t} WHERE parentId IN (SELECT id FROM tmp_{p})",
                t = relation.table,
                p = mapping.relations[parent].table
            ))?;
        }
    }
    // 2. The paper's offset heuristic: offset = nextId − minId; nextId
    //    advances by maxId − minId + 1.
    let mut min_id = i64::MAX;
    let mut max_id = i64::MIN;
    let mut copied = 0usize;
    for &s in &subtree {
        let rs = db.query(&format!(
            "SELECT MIN(id), MAX(id), COUNT(*) FROM tmp_{}",
            mapping.relations[s].table
        ))?;
        if let (Some(lo), Some(hi)) = (rs.rows[0][0].as_int(), rs.rows[0][1].as_int()) {
            min_id = min_id.min(lo);
            max_id = max_id.max(hi);
        }
        copied += rs.rows[0][2].as_int().unwrap_or(0) as usize;
    }
    if copied == 0 {
        for &s in &subtree {
            db.execute(&format!("DROP TABLE tmp_{}", mapping.relations[s].table))?;
        }
        return Ok(0);
    }
    let span = max_id - min_id + 1;
    let next = db.allocate_ids(span);
    let offset = next - min_id;
    // 3. Re-insert shifted tuples, one statement per relation.
    for &s in &subtree {
        let relation = &mapping.relations[s];
        let data_cols: Vec<String> = relation.columns.iter().map(|c| c.name.clone()).collect();
        let select_cols = if data_cols.is_empty() {
            format!("id + {offset}, parentId + {offset}")
        } else {
            format!(
                "id + {offset}, parentId + {offset}, {}",
                data_cols.join(", ")
            )
        };
        db.execute(&format!(
            "INSERT INTO {t} SELECT {select_cols} FROM tmp_{t}",
            t = relation.table
        ))?;
    }
    // 4. Reattach the copied root to its destination parent (with a fresh
    //    appended position on ordered mappings — the verbatim-copied pos_
    //    would collide with the source's).
    reattach_root(db, mapping, rel, src_id + offset, dst_parent_id)?;
    for &s in &subtree {
        db.execute(&format!("DROP TABLE tmp_{}", mapping.relations[s].table))?;
    }
    Ok(copied)
}

/// Point the copied root at its destination parent, assigning a fresh
/// appended `pos_` on ordered mappings.
fn reattach_root(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    new_root_id: i64,
    dst_parent_id: i64,
) -> Result<()> {
    let relation = &mapping.relations[rel];
    match appended_pos(db, mapping, rel, dst_parent_id)? {
        Some(pos) => {
            let pi = relation
                .find_column(&[], &xmlup_shred::ColumnKind::Position)
                .expect("ordered relation has pos_");
            let stmt = db.prepare(&format!(
                "UPDATE {} SET parentId = ?, {} = ? WHERE id = ?",
                relation.table, relation.columns[pi].name
            ))?;
            db.execute_prepared(
                &stmt,
                &[
                    Value::Int(dst_parent_id),
                    Value::Int(pos),
                    Value::Int(new_root_id),
                ],
            )?;
        }
        None => {
            let stmt = db.prepare(&format!(
                "UPDATE {} SET parentId = ? WHERE id = ?",
                relation.table
            ))?;
            db.execute_prepared(&stmt, &[Value::Int(dst_parent_id), Value::Int(new_root_id)])?;
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// ASR-based
// ----------------------------------------------------------------------

fn asr_insert(
    db: &mut Database,
    mapping: &Mapping,
    asr: &AsrIndex,
    rel: usize,
    src_id: i64,
    dst_parent_id: i64,
) -> Result<usize> {
    let subtree = mapping.subtree(rel);
    let rel_col = &asr.id_columns[asr
        .column_of(rel)
        .ok_or_else(|| CoreError::Strategy("relation not covered by ASR".into()))?];
    // 1. Mark the source paths (parameterized: one cached plan per
    //    relation column, independent of which subtree is copied).
    let mark = db.prepare(&format!(
        "UPDATE {} SET mark = TRUE WHERE {rel_col} = ?",
        asr.table
    ))?;
    db.execute_prepared(&mark, &[Value::Int(src_id)])?;
    // 2. Offset from the marked ids (MIN/MAX per covered level).
    let mut min_id = i64::MAX;
    let mut max_id = i64::MIN;
    for &s in &subtree {
        let c = &asr.id_columns[asr.column_of(s).expect("covered")];
        let rs = db.query(&format!(
            "SELECT MIN({c}), MAX({c}) FROM {} WHERE mark = TRUE",
            asr.table
        ))?;
        if let (Some(lo), Some(hi)) = (rs.rows[0][0].as_int(), rs.rows[0][1].as_int()) {
            min_id = min_id.min(lo);
            max_id = max_id.max(hi);
        }
    }
    if min_id == i64::MAX {
        db.execute(&format!(
            "UPDATE {} SET mark = FALSE WHERE mark = TRUE",
            asr.table
        ))?;
        return Ok(0);
    }
    // Destination ancestor path — resolved BEFORE any data is copied so a
    // missing path fails cleanly instead of leaving a half-applied insert.
    let ancestor_literals: Vec<(String, String)> = match mapping.relations[rel].parent {
        None => Vec::new(),
        Some(parent) => {
            let pcol = &asr.id_columns[asr.column_of(parent).expect("covered")];
            let lookup = db.prepare(&format!(
                "SELECT * FROM {} WHERE {pcol} = ? LIMIT 1",
                asr.table
            ))?;
            let rs = db.query_prepared(&lookup, &[Value::Int(dst_parent_id)])?;
            match rs.rows.first() {
                None => {
                    db.execute(&format!(
                        "UPDATE {} SET mark = FALSE WHERE mark = TRUE",
                        asr.table
                    ))?;
                    return Err(CoreError::Strategy(format!(
                        "destination parent {dst_parent_id} has no path in the ASR"
                    )));
                }
                Some(row) => mapping
                    .ancestor_chain(rel)
                    .iter()
                    .map(|&r| {
                        let ci = asr.column_of(r).expect("covered");
                        (asr.id_columns[ci].clone(), sql_literal(&row[ci]))
                    })
                    .collect(),
            }
        }
    };
    let span = max_id - min_id + 1;
    let next = db.allocate_ids(span);
    let offset = next - min_id;
    // 3. Replicate tuples per relation, ids drawn from the marked paths.
    let mut copied = 0usize;
    for &s in &subtree {
        let relation = &mapping.relations[s];
        let c = &asr.id_columns[asr.column_of(s).expect("covered")];
        let data_cols: Vec<String> = relation
            .columns
            .iter()
            .map(|col| col.name.clone())
            .collect();
        let select_cols = if data_cols.is_empty() {
            format!("id + {offset}, parentId + {offset}")
        } else {
            format!(
                "id + {offset}, parentId + {offset}, {}",
                data_cols.join(", ")
            )
        };
        copied += db
            .execute(&format!(
                "INSERT INTO {t} SELECT {select_cols} FROM {t} \
                 WHERE id IN (SELECT {c} FROM {} WHERE mark = TRUE)",
                asr.table,
                t = relation.table
            ))?
            .affected();
    }
    // 4. Reattach the copied root (fresh position on ordered mappings).
    reattach_root(db, mapping, rel, src_id + offset, dst_parent_id)?;
    // 5. ASR maintenance: add the copied paths (ancestor columns carry the
    //    destination parent's path, resolved up front), then unmark.
    let mut insert_cols: Vec<String> = Vec::new();
    let mut select_exprs: Vec<String> = Vec::new();
    for (c, lit) in &ancestor_literals {
        insert_cols.push(c.clone());
        select_exprs.push(lit.clone());
    }
    for &s in &subtree {
        let c = &asr.id_columns[asr.column_of(s).expect("covered")];
        insert_cols.push(c.clone());
        select_exprs.push(format!("{c} + {offset}"));
    }
    insert_cols.push("mark".into());
    select_exprs.push("FALSE".into());
    db.execute(&format!(
        "INSERT INTO {a} ({}) SELECT {} FROM {a} WHERE mark = TRUE",
        insert_cols.join(", "),
        select_exprs.join(", "),
        a = asr.table
    ))?;
    db.execute(&format!(
        "UPDATE {} SET mark = FALSE WHERE mark = TRUE",
        asr.table
    ))?;
    Ok(copied)
}

/// A *simple* insert (Section 6.2): writing an inlined item is a single
/// `UPDATE`; with `check_overwrite` the table is first queried to warn
/// about inserting "over" an existing single-occurrence item.
pub fn insert_inlined(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    column: usize,
    value: &Value,
    filter: Option<&str>,
    check_overwrite: bool,
) -> Result<usize> {
    let relation = &mapping.relations[rel];
    let col = &relation.columns[column];
    let where_clause = filter.map(|f| format!(" WHERE {f}")).unwrap_or_default();
    if check_overwrite {
        let extra = if where_clause.is_empty() {
            "WHERE"
        } else {
            "AND"
        };
        let rs = db.query(&format!(
            "SELECT COUNT(*) FROM {}{where_clause} {extra} {} IS NOT NULL",
            relation.table, col.name
        ))?;
        if rs.scalar().and_then(Value::as_int).unwrap_or(0) > 0 {
            return Err(CoreError::Strategy(format!(
                "insert over existing single-occurrence item {}.{}",
                relation.table, col.name
            )));
        }
    }
    let mut sets = vec![format!("{} = {}", col.name, sql_literal(value))];
    // Setting an inlined value implies its ancestors exist: raise presence
    // flags along the path.
    for c in &relation.columns {
        if matches!(c.kind, xmlup_shred::ColumnKind::Presence)
            && !c.path.is_empty()
            && c.path.len() <= col.path.len()
            && col.path[..c.path.len()] == c.path[..]
        {
            sets.push(format!("{} = TRUE", c.name));
        }
    }
    let n = db
        .execute(&format!(
            "UPDATE {} SET {}{where_clause}",
            relation.table,
            sets.join(", ")
        ))?
        .affected();
    Ok(n)
}
