//! The four XML delete strategies of paper Section 6.1.
//!
//! A *complex* delete removes a subtree stored across multiple relations:
//! besides the target tuples, all their descendants in subsidiary tables
//! must go. The strategies differ in who propagates the cascade and in how
//! many SQL statements the application must issue:
//!
//! | strategy              | client SQL statements | cascade executed by |
//! |-----------------------|-----------------------|---------------------|
//! | per-tuple trigger     | 1                     | RDBMS, per deleted row (indexed `parentId` lookups) |
//! | per-statement trigger | 1                     | RDBMS, per statement (orphan scan of each child relation) |
//! | cascading             | 1 per relation level  | application (`NOT IN` anti-joins) |
//! | ASR                   | ~3 + 1 per level      | application via the ASR's marked paths |
//!
//! Atomicity: the multi-statement strategies (cascading, ASR) issue several
//! client statements per logical delete. [`crate::XmlRepository`] runs each
//! translated delete inside one engine transaction, so a failure at any
//! statement rolls the whole cascade back; the single-statement trigger
//! strategies already get this from statement-level atomicity (a trigger
//! body shares its statement's undo scope).

use crate::error::{CoreError, Result};
use xmlup_rdb::{Database, Value};
use xmlup_shred::{AsrIndex, Mapping};

/// Strategy selector for complex deletes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteStrategy {
    /// `FOR EACH ROW` triggers installed on every non-leaf relation
    /// (Section 6.1.1.1). The winner on random workloads in the paper.
    PerTupleTrigger,
    /// `FOR EACH STATEMENT` triggers deleting orphans (Section 6.1.1.1).
    /// The winner on bulk workloads.
    PerStatementTrigger,
    /// Application-level simulation of per-statement triggers
    /// (Section 6.1.2): a `NOT IN` delete per level, stopping as soon as a
    /// level removes nothing.
    Cascading,
    /// ASR-based delete with the marking scheme (Section 6.1.3).
    Asr,
}

impl DeleteStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [DeleteStrategy; 4] = [
        DeleteStrategy::PerTupleTrigger,
        DeleteStrategy::PerStatementTrigger,
        DeleteStrategy::Cascading,
        DeleteStrategy::Asr,
    ];

    /// Short label used in experiment output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            DeleteStrategy::PerTupleTrigger => "per-tuple trigger",
            DeleteStrategy::PerStatementTrigger => "per-stm trigger",
            DeleteStrategy::Cascading => "cascade",
            DeleteStrategy::Asr => "asr",
        }
    }
}

/// Install the triggers a strategy needs (no-op for cascading/ASR). Call
/// once after schema creation.
pub fn install_triggers(
    db: &mut Database,
    mapping: &Mapping,
    strategy: DeleteStrategy,
) -> Result<()> {
    match strategy {
        DeleteStrategy::PerTupleTrigger => {
            for rel in &mapping.relations {
                if rel.children.is_empty() {
                    continue;
                }
                let body: Vec<String> = rel
                    .children
                    .iter()
                    .map(|&c| {
                        format!(
                            "DELETE FROM {} WHERE parentId = OLD.id;",
                            mapping.relations[c].table
                        )
                    })
                    .collect();
                db.execute(&format!(
                    "CREATE TRIGGER td_{t} AFTER DELETE ON {t} FOR EACH ROW BEGIN {b} END",
                    t = rel.table,
                    b = body.join(" ")
                ))?;
            }
        }
        DeleteStrategy::PerStatementTrigger => {
            for rel in &mapping.relations {
                if rel.children.is_empty() {
                    continue;
                }
                let body: Vec<String> = rel
                    .children
                    .iter()
                    .map(|&c| {
                        format!(
                            "DELETE FROM {} WHERE parentId NOT IN (SELECT id FROM {});",
                            mapping.relations[c].table, rel.table
                        )
                    })
                    .collect();
                db.execute(&format!(
                    "CREATE TRIGGER ts_{t} AFTER DELETE ON {t} FOR EACH STATEMENT BEGIN {b} END",
                    t = rel.table,
                    b = body.join(" ")
                ))?;
            }
        }
        DeleteStrategy::Cascading | DeleteStrategy::Asr => {}
    }
    Ok(())
}

/// Remove any triggers installed by [`install_triggers`].
pub fn remove_triggers(db: &mut Database, mapping: &Mapping) -> Result<()> {
    let names: Vec<String> = db
        .triggers()
        .iter()
        .map(|t| t.name.clone())
        .filter(|n| {
            mapping.relations.iter().any(|r| {
                n.eq_ignore_ascii_case(&format!("td_{}", r.table))
                    || n.eq_ignore_ascii_case(&format!("ts_{}", r.table))
            })
        })
        .collect();
    for n in names {
        db.execute(&format!("DROP TRIGGER {n}"))?;
    }
    Ok(())
}

/// Delete the subtrees rooted at tuples of relation `rel` that satisfy
/// `filter` (SQL over that relation's columns; `None` = all). Returns the
/// number of root tuples deleted.
pub fn delete_where(
    db: &mut Database,
    mapping: &Mapping,
    asr: Option<&AsrIndex>,
    strategy: DeleteStrategy,
    rel: usize,
    filter: Option<&str>,
) -> Result<usize> {
    delete_where_params(db, mapping, asr, strategy, rel, filter, &[])
}

/// [`delete_where`] with `?`/`$n` placeholders in the filter bound to
/// `params`. Per-tuple callers (e.g. deleting by id with `id = ?`) keep
/// the statement text constant, so every delete after the first reuses
/// the cached plan instead of re-parsing.
pub fn delete_where_params(
    db: &mut Database,
    mapping: &Mapping,
    asr: Option<&AsrIndex>,
    strategy: DeleteStrategy,
    rel: usize,
    filter: Option<&str>,
    params: &[Value],
) -> Result<usize> {
    let table = &mapping.relations[rel].table;
    let where_clause = filter.map(|f| format!(" WHERE {f}")).unwrap_or_default();
    match strategy {
        // A single SQL statement; the RDBMS cascades.
        DeleteStrategy::PerTupleTrigger | DeleteStrategy::PerStatementTrigger => {
            let stmt = db.prepare(&format!("DELETE FROM {table}{where_clause}"))?;
            let n = db.execute_prepared(&stmt, params)?.affected();
            Ok(n)
        }
        DeleteStrategy::Cascading => {
            let stmt = db.prepare(&format!("DELETE FROM {table}{where_clause}"))?;
            let n = db.execute_prepared(&stmt, params)?.affected();
            // Orphan deletes, level by level; a branch stops as soon as a
            // delete removes nothing (paper Section 6.1.2).
            cascade_children(db, mapping, rel)?;
            Ok(n)
        }
        DeleteStrategy::Asr => {
            let asr = asr.ok_or_else(|| {
                CoreError::Strategy("ASR delete requires a built ASR index".into())
            })?;
            delete_via_asr(db, mapping, asr, rel, filter, params)
        }
    }
}

fn cascade_children(db: &mut Database, mapping: &Mapping, rel: usize) -> Result<()> {
    for &c in &mapping.relations[rel].children.clone() {
        let n = db
            .execute(&format!(
                "DELETE FROM {} WHERE parentId NOT IN (SELECT id FROM {})",
                mapping.relations[c].table, mapping.relations[rel].table
            ))?
            .affected();
        if n > 0 {
            cascade_children(db, mapping, c)?;
        }
    }
    Ok(())
}

fn delete_via_asr(
    db: &mut Database,
    mapping: &Mapping,
    asr: &AsrIndex,
    rel: usize,
    filter: Option<&str>,
    params: &[Value],
) -> Result<usize> {
    let table = &mapping.relations[rel].table;
    let col = asr
        .column_of(rel)
        .ok_or_else(|| CoreError::Strategy(format!("relation {table} not covered by ASR")))?;
    let id_col = &asr.id_columns[col];
    let where_clause = filter.map(|f| format!(" WHERE {f}")).unwrap_or_default();
    // 1. Mark every path through a deleted root. The filter (and its
    //    parameters) only appears here; the remaining steps have constant
    //    statement text per relation and hit the plan cache on their own.
    let mark = db.prepare(&format!(
        "UPDATE {a} SET mark = TRUE WHERE {id_col} IN (SELECT id FROM {table}{where_clause})",
        a = asr.table
    ))?;
    db.execute_prepared(&mark, params)?;
    // 2. Delete descendants per level, ids obtained from marked paths.
    for &d in mapping.subtree(rel).iter().skip(1) {
        let dcol = &asr.id_columns[asr.column_of(d).expect("subtree covered")];
        db.execute(&format!(
            "DELETE FROM {} WHERE id IN (SELECT {dcol} FROM {} WHERE mark = TRUE)",
            mapping.relations[d].table, asr.table
        ))?;
    }
    // 3. Delete the roots themselves — by the ids recorded in the marked
    //    paths, not by re-running the filter: a filter that references
    //    descendants (e.g. a child-relation predicate) would no longer
    //    match after step 2 removed those descendants.
    let n = db
        .execute(&format!(
            "DELETE FROM {table} WHERE id IN (SELECT {id_col} FROM {} WHERE mark = TRUE)",
            asr.table
        ))?
        .affected();
    // 4. ASR maintenance: drop the marked paths, then re-insert truncated
    //    (left-complete) paths for ancestors that lost their only path.
    db.execute(&format!("DELETE FROM {} WHERE mark = TRUE", asr.table))?;
    if mapping.relations[rel].parent.is_some() {
        // Ancestor chain root → parent.
        let chain = mapping.ancestor_chain(rel);
        let cols: Vec<String> = chain
            .iter()
            .map(|&r| asr.id_columns[asr.column_of(r).expect("covered")].clone())
            .collect();
        let froms: Vec<String> = chain
            .iter()
            .enumerate()
            .map(|(i, &r)| format!("{} T{i}", mapping.relations[r].table))
            .collect();
        let mut conds: Vec<String> = (1..chain.len())
            .map(|i| format!("T{i}.parentId = T{}.id", i - 1))
            .collect();
        let last = chain.len() - 1;
        let pcol = &cols[last];
        conds.push(format!(
            "T{last}.id NOT IN (SELECT {pcol} FROM {} WHERE {pcol} IS NOT NULL)",
            asr.table
        ));
        let selects: Vec<String> = (0..chain.len()).map(|i| format!("T{i}.id")).collect();
        db.execute(&format!(
            "INSERT INTO {} ({}, mark) SELECT {}, FALSE FROM {} WHERE {}",
            asr.table,
            cols.join(", "),
            selects.join(", "),
            froms.join(", "),
            conds.join(" AND ")
        ))?;
    }
    Ok(n)
}

/// A *simple* delete (Section 6.1): removing an inlined item is a single
/// `UPDATE` setting its column(s) to NULL — plus the presence flag when
/// the inlined element is non-leaf.
pub fn delete_inlined(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    inlined_path: &[String],
    filter: Option<&str>,
) -> Result<usize> {
    let relation = &mapping.relations[rel];
    let mut sets: Vec<String> = Vec::new();
    for col in &relation.columns {
        let covered = col.path.len() >= inlined_path.len()
            && col.path[..inlined_path.len()] == inlined_path[..];
        if covered {
            match col.kind {
                xmlup_shred::ColumnKind::Presence => sets.push(format!("{} = FALSE", col.name)),
                _ => sets.push(format!("{} = NULL", col.name)),
            }
        }
    }
    if sets.is_empty() {
        return Err(CoreError::Path(format!(
            "no inlined columns under path {inlined_path:?} in {}",
            relation.table
        )));
    }
    let where_clause = filter.map(|f| format!(" WHERE {f}")).unwrap_or_default();
    let n = db
        .execute(&format!(
            "UPDATE {} SET {}{where_clause}",
            relation.table,
            sets.join(", ")
        ))?
        .affected();
    Ok(n)
}
