//! Translation of XQuery update statements into relational operations
//! (paper Section 6).
//!
//! The translatable subset covers the statement shapes the paper's
//! workloads use: single-document `FOR` chains over child/descendant
//! steps with value predicates, `WHERE` conditions on bound variables,
//! and `UPDATE` actions whose sub-operations are subtree `DELETE`,
//! subtree-copy `INSERT $src`, inlined-item `INSERT`/`REPLACE`, and
//! inlined deletes. Anything outside the subset produces
//! [`CoreError::Unsupported`] rather than silently wrong SQL.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use xmlup_rdb::Value;
use xmlup_shred::{AsrIndex, ColumnKind, Mapping, PathTarget};
use xmlup_xquery::{
    Action, CmpOp, ContentExpr, Lit, PathExpr, PathStart, Statement, Step, SubOp, UExpr,
};

/// A relational operation produced by translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslatedOp {
    /// Complex delete of subtrees of `rel` matching `filter`.
    DeleteSubtrees {
        /// Target relation.
        rel: usize,
        /// SQL filter over the relation's columns.
        filter: Option<String>,
    },
    /// Simple delete: NULL out the inlined item at `path` (and lower its
    /// presence flags).
    DeleteInlined {
        /// Relation carrying the inlined item.
        rel: usize,
        /// Inlined element path within the relation.
        path: Vec<String>,
        /// Row filter.
        filter: Option<String>,
    },
    /// Complex insert: copy each matching source subtree under each
    /// matching destination tuple.
    CopySubtrees {
        /// Source relation.
        src_rel: usize,
        /// Source row filter.
        src_filter: Option<String>,
        /// Destination relation (must be the source's parent relation for
        /// the copy to re-attach correctly).
        dst_rel: usize,
        /// Destination row filter.
        dst_filter: Option<String>,
    },
    /// Simple insert of an inlined value (fails on overwrite checks at
    /// execution level when requested).
    InsertInlined {
        /// Relation carrying the inlined item.
        rel: usize,
        /// Data-column index.
        column: usize,
        /// Value to store.
        value: Value,
        /// Row filter.
        filter: Option<String>,
    },
    /// Positional insert of a new child tuple (ordered mappings only):
    /// `INSERT <el>…</el> BEFORE|AFTER $anchor`.
    InsertTupleAt {
        /// Relation of the new tuple (a child relation of the target).
        rel: usize,
        /// Data-column values extracted from the constructor.
        values: Vec<(String, Value)>,
        /// Relation of the anchor binding.
        anchor_rel: usize,
        /// Filter selecting the anchor tuples.
        anchor_filter: Option<String>,
        /// Insert before (true) or after (false) each anchor.
        before: bool,
    },
    /// Replace of an inlined value (`REPLACE $x WITH <name>v</>`).
    UpdateInlined {
        /// Relation carrying the inlined item.
        rel: usize,
        /// Data-column index.
        column: usize,
        /// New value.
        value: Value,
        /// Row filter.
        filter: Option<String>,
    },
}

/// A predicate that descends through child relations: `chain` are the
/// relations stepped through (each the child of the previous; the first is
/// a child of the predicate's home relation), `target_sql` applies to the
/// last chain element's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DescPred {
    /// Child-relation chain, shallow to deep.
    pub chain: Vec<usize>,
    /// SQL over the deepest relation.
    pub target_sql: String,
}

/// Everything known about one bound variable's target set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    /// The relation the variable binds tuples of.
    pub rel: usize,
    /// Inlined path within `rel`, when the variable binds an inlined item
    /// rather than whole tuples.
    pub inlined: Option<Vec<String>>,
    /// Plain SQL conditions over `rel`'s columns.
    pub local: Vec<String>,
    /// Conditions through descendant relations.
    pub descendants: Vec<DescPred>,
    /// Fully-composed SQL conditions inherited from filtered ancestors
    /// (already chained through `parentId IN (…)`).
    pub ancestors: Vec<String>,
}

impl QuerySpec {
    fn has_conditions(&self) -> bool {
        !self.local.is_empty() || !self.descendants.is_empty() || !self.ancestors.is_empty()
    }
}

/// Compose a spec's conditions into one SQL filter. When `asr` is given,
/// descendant-path predicates probe the ASR instead of chaining through
/// every intermediate relation (Section 5.3).
pub fn query_filter_sql(
    spec: &QuerySpec,
    mapping: &Mapping,
    asr: Option<&AsrIndex>,
) -> Result<Option<String>> {
    let mut conds: Vec<String> = Vec::new();
    conds.extend(spec.local.iter().cloned());
    conds.extend(spec.ancestors.iter().cloned());
    for d in &spec.descendants {
        conds.push(descendant_sql(spec.rel, d, mapping, asr)?);
    }
    if conds.is_empty() {
        Ok(None)
    } else {
        Ok(Some(conds.join(" AND ")))
    }
}

fn descendant_sql(
    rel: usize,
    d: &DescPred,
    mapping: &Mapping,
    asr: Option<&AsrIndex>,
) -> Result<String> {
    let target = *d.chain.last().expect("non-empty chain");
    let target_table = &mapping.relations[target].table;
    match asr {
        Some(asr) if d.chain.len() >= 2 => {
            // Two joins instead of chain-length joins: probe the target
            // relation, then the ASR (paper Section 5.3 / Example 7).
            let home_col = &asr.id_columns[asr
                .column_of(rel)
                .ok_or_else(|| CoreError::Strategy("relation not covered by ASR".into()))?];
            let target_col = &asr.id_columns[asr.column_of(target).expect("covered")];
            Ok(format!(
                "id IN (SELECT {home_col} FROM {a} WHERE {target_col} IN \
                 (SELECT id FROM {target_table} WHERE {t}))",
                a = asr.table,
                t = d.target_sql
            ))
        }
        _ => {
            // Conventional: nested semi-joins through each level.
            let mut sql = format!(
                "id IN (SELECT parentId FROM {target_table} WHERE {})",
                d.target_sql
            );
            for &mid in d.chain.iter().rev().skip(1) {
                sql = format!(
                    "id IN (SELECT parentId FROM {} WHERE {sql})",
                    mapping.relations[mid].table
                );
            }
            Ok(sql)
        }
    }
}

/// Translate a `RETURN` query; the returned spec names the relation whose
/// subtrees are fetched.
pub fn translate_query(stmt: &Statement, mapping: &Mapping) -> Result<QuerySpec> {
    let expr = match &stmt.action {
        Action::Return(e) => e,
        Action::Update(_) => return Err(CoreError::Unsupported("expected a RETURN query".into())),
    };
    let vars = bind_vars(stmt, mapping)?;
    match expr {
        UExpr::Path(PathExpr {
            start: PathStart::Var(v),
            steps,
        }) if steps.is_empty() => vars
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| CoreError::Unsupported(format!("unbound variable ${v}"))),
        other => Err(CoreError::Unsupported(format!(
            "RETURN must be a bare bound variable, got {other:?}"
        ))),
    }
}

/// Translate an `UPDATE` statement into relational operations.
pub fn translate_update(stmt: &Statement, mapping: &Mapping) -> Result<Vec<TranslatedOp>> {
    let update_ops = match &stmt.action {
        Action::Update(ops) => ops,
        Action::Return(_) => {
            return Err(CoreError::Unsupported(
                "expected an UPDATE statement".into(),
            ))
        }
    };
    let vars = bind_vars(stmt, mapping)?;
    let mut out = Vec::new();
    for op in update_ops {
        translate_update_op(op, &vars, mapping, &mut out)?;
    }
    Ok(out)
}

/// Translate one `UPDATE $t { … }` block, flattening nested Sub-Updates
/// into the output sequence. The caller must execute the resulting ops
/// with bind-first semantics (paper Section 6.3: compute all bindings via
/// queries before running any sub-operation) — see
/// `XmlRepository::execute_xquery`.
fn translate_update_op(
    op: &xmlup_xquery::UpdateOp,
    vars: &HashMap<String, QuerySpec>,
    mapping: &Mapping,
    out: &mut Vec<TranslatedOp>,
) -> Result<()> {
    let target = vars
        .get(op.target.as_str())
        .ok_or_else(|| CoreError::Unsupported(format!("unbound UPDATE target ${}", op.target)))?;
    for sub in &op.ops {
        match sub {
            SubOp::Nested(nested) => {
                // Extend the variable scope with the nested FOR bindings
                // (paths rooted at outer variables resolve against their
                // specs), apply the nested WHERE, then flatten the inner
                // update operations.
                let mut inner_vars = vars.clone();
                for fb in &nested.fors {
                    let spec = resolve_path(&fb.path, &inner_vars, mapping)?;
                    inner_vars.insert(fb.var.clone(), spec);
                }
                if let Some(f) = &nested.filter {
                    apply_where(f, &mut inner_vars, mapping)?;
                }
                for inner in &nested.updates {
                    translate_update_op(inner, &inner_vars, mapping, out)?;
                }
            }
            _ => out.push(translate_sub_op(sub, target, vars, mapping)?),
        }
    }
    Ok(())
}

fn translate_sub_op(
    sub: &SubOp,
    target: &QuerySpec,
    vars: &HashMap<String, QuerySpec>,
    mapping: &Mapping,
) -> Result<TranslatedOp> {
    match sub {
        SubOp::Delete { child } => {
            let c = vars
                .get(child.as_str())
                .ok_or_else(|| CoreError::Unsupported(format!("unbound ${child}")))?;
            match &c.inlined {
                None => Ok(TranslatedOp::DeleteSubtrees {
                    rel: c.rel,
                    filter: query_filter_sql(c, mapping, None)?,
                }),
                Some(path) => Ok(TranslatedOp::DeleteInlined {
                    rel: c.rel,
                    path: path.clone(),
                    filter: query_filter_sql(c, mapping, None)?,
                }),
            }
        }
        SubOp::Insert {
            content,
            position: None,
        } => match content {
            ContentExpr::Var(v) => {
                let src = vars
                    .get(v.as_str())
                    .ok_or_else(|| CoreError::Unsupported(format!("unbound ${v}")))?;
                if src.inlined.is_some() {
                    return Err(CoreError::Unsupported(
                        "INSERT $var requires a whole-subtree binding".into(),
                    ));
                }
                if mapping.relations[src.rel].parent != Some(target.rel) {
                    return Err(CoreError::Unsupported(format!(
                        "copied subtrees of `{}` can only be inserted under their parent \
                         relation `{}`",
                        mapping.relations[src.rel].table, mapping.relations[target.rel].table
                    )));
                }
                Ok(TranslatedOp::CopySubtrees {
                    src_rel: src.rel,
                    src_filter: query_filter_sql(src, mapping, None)?,
                    dst_rel: target.rel,
                    dst_filter: query_filter_sql(target, mapping, None)?,
                })
            }
            ContentExpr::Element(xml) => {
                // Inlined single-element constructor: <Name>text</Name>.
                let parsed = xmlup_xml::parse(xml)
                    .map_err(|e| CoreError::Unsupported(format!("bad constructor: {e}")))?;
                let doc = parsed.doc;
                let name = doc.name(doc.root()).unwrap_or_default().to_string();
                let text = doc.string_value(doc.root());
                let rel = &mapping.relations[target.rel];
                // The constructor element becomes a DIRECT child of the
                // target, so it must match the inlined column whose path is
                // exactly [name] (a suffix match could hit a deeper column
                // with the same tag).
                let want = vec![name.clone()];
                let col = rel
                    .columns
                    .iter()
                    .position(|c| c.kind == ColumnKind::Pcdata && c.path == want)
                    .ok_or_else(|| {
                        CoreError::Unsupported(format!(
                            "<{name}> is not an inlined child of {}; only simple (inlined) \
                             constructor inserts are translatable",
                            rel.table
                        ))
                    })?;
                Ok(TranslatedOp::InsertInlined {
                    rel: target.rel,
                    column: col,
                    value: Value::Str(text),
                    filter: query_filter_sql(target, mapping, None)?,
                })
            }
            other => Err(CoreError::Unsupported(format!(
                "INSERT content not translatable: {other:?}"
            ))),
        },
        SubOp::Insert {
            position: Some((pos, anchor_var)),
            content,
        } => {
            if !mapping.ordered {
                return Err(CoreError::Unsupported(
                    "positional INSERT requires an order-preserving mapping                      (Mapping::from_dtd_ordered)"
                        .into(),
                ));
            }
            let anchor = vars
                .get(anchor_var.as_str())
                .ok_or_else(|| CoreError::Unsupported(format!("unbound ${anchor_var}")))?;
            if anchor.inlined.is_some() {
                return Err(CoreError::Unsupported(
                    "the positional anchor must bind whole child tuples".into(),
                ));
            }
            if mapping.relations[anchor.rel].parent != Some(target.rel) {
                return Err(CoreError::Unsupported(
                    "the positional anchor must be a child of the UPDATE target".into(),
                ));
            }
            let xml = match content {
                ContentExpr::Element(xml) => xml,
                other => {
                    return Err(CoreError::Unsupported(format!(
                        "positional INSERT content must be an element constructor, got {other:?}"
                    )))
                }
            };
            let parsed = xmlup_xml::parse(xml)
                .map_err(|e| CoreError::Unsupported(format!("bad constructor: {e}")))?;
            let cdoc = parsed.doc;
            let cname = cdoc.name(cdoc.root()).unwrap_or_default().to_string();
            let crel = mapping.relations[target.rel]
                .children
                .iter()
                .copied()
                .find(|&c| mapping.relations[c].element == cname)
                .ok_or_else(|| {
                    CoreError::Unsupported(format!(
                        "<{cname}> is not a repeatable child of {}",
                        mapping.relations[target.rel].table
                    ))
                })?;
            // Extract inlined column values from the constructor; nested
            // repeatable content is out of scope for the translation.
            let relation = &mapping.relations[crel];
            let mut values = Vec::new();
            for col in &relation.columns {
                if matches!(col.kind, ColumnKind::Position) {
                    continue;
                }
                let v =
                    xmlup_shred::loader::extract_column(&cdoc, cdoc.root(), &col.path, &col.kind);
                values.push((col.name.clone(), v));
            }
            for &grand in &relation.children {
                let gname = &mapping.relations[grand].element;
                if cdoc
                    .children(cdoc.root())
                    .iter()
                    .any(|&c| cdoc.name(c) == Some(gname.as_str()))
                {
                    return Err(CoreError::Unsupported(format!(
                        "constructor contains repeatable content <{gname}>; only inlined                          content is translatable in a positional INSERT"
                    )));
                }
            }
            Ok(TranslatedOp::InsertTupleAt {
                rel: crel,
                values,
                anchor_rel: anchor.rel,
                anchor_filter: query_filter_sql(anchor, mapping, None)?,
                before: matches!(pos, xmlup_xquery::InsertPosition::Before),
            })
        }
        SubOp::Replace { child, with } => {
            let c = vars
                .get(child.as_str())
                .ok_or_else(|| CoreError::Unsupported(format!("unbound ${child}")))?;
            let path = c.inlined.as_ref().ok_or_else(|| {
                CoreError::Unsupported("only inlined-item REPLACE is translatable directly".into())
            })?;
            let value = match with {
                ContentExpr::Element(xml) => {
                    let parsed = xmlup_xml::parse(xml)
                        .map_err(|e| CoreError::Unsupported(format!("bad constructor: {e}")))?;
                    Value::Str(parsed.doc.string_value(parsed.doc.root()))
                }
                ContentExpr::Text(s) => Value::Str(s.clone()),
                other => {
                    return Err(CoreError::Unsupported(format!(
                        "REPLACE content not translatable: {other:?}"
                    )))
                }
            };
            let rel = &mapping.relations[c.rel];
            let col = rel.find_column(path, &ColumnKind::Pcdata).ok_or_else(|| {
                CoreError::Unsupported(format!(
                    "no inlined PCDATA column at {path:?} in {}",
                    rel.table
                ))
            })?;
            Ok(TranslatedOp::UpdateInlined {
                rel: c.rel,
                column: col,
                value,
                filter: query_filter_sql(c, mapping, None)?,
            })
        }
        SubOp::Rename { .. } => Err(CoreError::Unsupported(
            "RENAME changes the schema of inlined storage; apply it via the in-memory \
             evaluator (xmlup-xquery) instead"
                .into(),
        )),
        SubOp::Nested(_) => unreachable!("nested ops are flattened by translate_update_op"),
    }
}

// ----------------------------------------------------------------------
// variable binding
// ----------------------------------------------------------------------

fn bind_vars(stmt: &Statement, mapping: &Mapping) -> Result<HashMap<String, QuerySpec>> {
    let mut vars: HashMap<String, QuerySpec> = HashMap::new();
    for fb in &stmt.fors {
        let spec = resolve_path(&fb.path, &vars, mapping)?;
        vars.insert(fb.var.clone(), spec);
    }
    if !stmt.lets.is_empty() {
        return Err(CoreError::Unsupported(
            "LET bindings are not translatable".into(),
        ));
    }
    if let Some(f) = &stmt.filter {
        apply_where(f, &mut vars, mapping)?;
    }
    Ok(vars)
}

fn resolve_path(
    path: &PathExpr,
    vars: &HashMap<String, QuerySpec>,
    mapping: &Mapping,
) -> Result<QuerySpec> {
    // Establish the starting relation and any inherited ancestor filter.
    let (mut spec, mut elem_path): (QuerySpec, Vec<String>) = match &path.start {
        PathStart::Document(_) => (
            QuerySpec {
                rel: usize::MAX,
                ..Default::default()
            },
            Vec::new(),
        ),
        PathStart::Var(v) => {
            let base = vars
                .get(v.as_str())
                .ok_or_else(|| CoreError::Unsupported(format!("unbound ${v}")))?;
            if base.inlined.is_some() {
                return Err(CoreError::Unsupported(format!(
                    "cannot navigate below the inlined binding ${v}"
                )));
            }
            let mut s = QuerySpec {
                rel: base.rel,
                ..Default::default()
            };
            // Conditions on the base variable become an ancestor filter of
            // whatever we navigate to (or stay local if we stay put).
            if base.has_conditions() {
                if let Some(f) = query_filter_sql(base, mapping, None)? {
                    s.local.push(f);
                }
            }
            (s, mapping.relations[base.rel].element_path.clone())
        }
        PathStart::Relative => {
            return Err(CoreError::Unsupported(
                "relative paths are only supported inside predicates".into(),
            ))
        }
    };
    for step in &path.steps {
        match step {
            Step::Child(name) => {
                elem_path.push(name.clone());
                self_update_rel(&mut spec, &elem_path, mapping)?;
            }
            Step::Descendant(name) => {
                // `//name` jumps to the unique relation storing `name`.
                let rel = mapping.relation_by_element(name).ok_or_else(|| {
                    CoreError::Unsupported(format!(
                        "`//{name}` does not resolve to a unique relation"
                    ))
                })?;
                if spec.has_conditions() {
                    return Err(CoreError::Unsupported(
                        "descendant step after a filtered prefix is not translatable".into(),
                    ));
                }
                spec = QuerySpec {
                    rel,
                    ..Default::default()
                };
                elem_path = mapping.relations[rel].element_path.clone();
            }
            Step::Predicate(e) => {
                if spec.inlined.is_some() {
                    return Err(CoreError::Unsupported(
                        "predicates on inlined bindings are not translatable".into(),
                    ));
                }
                add_pred(e, spec.rel, mapping, &mut spec)?;
            }
            Step::Attribute(_) | Step::Ref { .. } | Step::Deref => {
                return Err(CoreError::Unsupported(format!(
                    "path step {step:?} is not translatable to the inlined mapping"
                )))
            }
        }
    }
    if spec.rel == usize::MAX {
        return Err(CoreError::Path(
            "path did not reach any mapped element".into(),
        ));
    }
    Ok(spec)
}

/// After extending the element path by one child step, update the spec:
/// either we moved to a deeper relation (pushing previous filters to
/// ancestor position) or we started descending into inlined content.
fn self_update_rel(spec: &mut QuerySpec, elem_path: &[String], mapping: &Mapping) -> Result<()> {
    let parts: Vec<&str> = elem_path.iter().map(String::as_str).collect();
    match mapping.resolve_path(&parts) {
        Some(PathTarget::Relation(rel)) => {
            if spec.rel != usize::MAX && rel != spec.rel {
                // Descended one relation level: previous conditions apply
                // to the parent relation.
                let parent = spec.rel;
                let prev = std::mem::take(spec);
                let parent_sql = query_filter_sql(&prev, mapping, None)?;
                spec.rel = rel;
                if let Some(sql) = parent_sql {
                    spec.ancestors.push(format!(
                        "parentId IN (SELECT id FROM {} WHERE {})",
                        mapping.relations[parent].table, sql
                    ));
                }
            } else {
                spec.rel = rel;
            }
            spec.inlined = None;
            Ok(())
        }
        Some(PathTarget::Column { relation, .. })
        | Some(PathTarget::InlinedElement { relation, .. }) => {
            if spec.rel != usize::MAX && relation != spec.rel {
                return Err(CoreError::Path(format!(
                    "inlined path {parts:?} crosses a relation boundary"
                )));
            }
            spec.rel = relation;
            let rel_depth = mapping.relations[relation].element_path.len();
            spec.inlined = Some(elem_path[rel_depth..].to_vec());
            Ok(())
        }
        None => Err(CoreError::Path(format!("path {parts:?} does not resolve"))),
    }
}

/// Add a path predicate (from `[…]`) to `spec`, relative to relation `rel`.
fn add_pred(e: &UExpr, rel: usize, mapping: &Mapping, spec: &mut QuerySpec) -> Result<()> {
    match e {
        UExpr::And(a, b) => {
            add_pred(a, rel, mapping, spec)?;
            add_pred(b, rel, mapping, spec)
        }
        other => {
            let cond = atom_cond(other, rel, mapping)?;
            match cond {
                AtomCond::Local(s) => spec.local.push(s),
                AtomCond::Descendant(d) => spec.descendants.push(d),
            }
            Ok(())
        }
    }
}

enum AtomCond {
    Local(String),
    Descendant(DescPred),
}

fn atom_cond(e: &UExpr, rel: usize, mapping: &Mapping) -> Result<AtomCond> {
    match e {
        UExpr::Cmp { left, op, right } => {
            let (path, lit, op) = match (left.as_ref(), right.as_ref()) {
                (UExpr::Path(p), UExpr::Literal(l)) => (p, l, *op),
                (UExpr::Literal(l), UExpr::Path(p)) => (p, l, flip(*op)),
                _ => {
                    return Err(CoreError::Unsupported(
                        "predicates must compare a path with a literal".into(),
                    ))
                }
            };
            resolve_rel_path_cond(path, lit, op, rel, mapping)
        }
        UExpr::Or(a, b) => {
            let ca = atom_cond(a, rel, mapping)?;
            let cb = atom_cond(b, rel, mapping)?;
            match (ca, cb) {
                (AtomCond::Local(x), AtomCond::Local(y)) => {
                    Ok(AtomCond::Local(format!("({x} OR {y})")))
                }
                _ => Err(CoreError::Unsupported(
                    "OR over descendant-relation predicates is not translatable".into(),
                )),
            }
        }
        UExpr::Not(a) => match atom_cond(a, rel, mapping)? {
            AtomCond::Local(x) => Ok(AtomCond::Local(format!("NOT ({x})"))),
            _ => Err(CoreError::Unsupported(
                "NOT over descendant-relation predicates is not translatable".into(),
            )),
        },
        UExpr::Path(p) => {
            // Existence test.
            resolve_rel_path_exists(p, rel, mapping)
        }
        other => Err(CoreError::Unsupported(format!("predicate {other:?}"))),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn sql_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn lit_sql(l: &Lit) -> String {
    match l {
        // All shredded payloads are TEXT columns; integer literals compare
        // as their decimal rendering (exact for equality, the dominant
        // case in the paper's workloads).
        Lit::Int(i) => format!("'{i}'"),
        Lit::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Resolve a relative predicate path to a column condition, chaining
/// through child relations when the path leaves the home relation.
fn resolve_rel_path_cond(
    p: &PathExpr,
    lit: &Lit,
    op: CmpOp,
    rel: usize,
    mapping: &Mapping,
) -> Result<AtomCond> {
    if p.start != PathStart::Relative {
        return Err(CoreError::Unsupported(
            "predicate paths must be relative to the element being filtered".into(),
        ));
    }
    let (home, chain, tail) = split_chain(p, rel, mapping)?;
    let target_rel = chain.last().copied().unwrap_or(home);
    let relation = &mapping.relations[target_rel];
    // The tail must name a column of the target relation.
    let cond = match &tail {
        RelTail::Attribute(attr) => {
            let col = relation
                .columns
                .iter()
                .find(|c| c.path.is_empty() && c.kind == ColumnKind::Attribute(attr.clone()))
                .ok_or_else(|| {
                    CoreError::Path(format!("@{attr} is not a column of {}", relation.table))
                })?;
            format!("{} {} {}", col.name, sql_op(op), lit_sql(lit))
        }
        RelTail::Inlined(path) if path.is_empty() => {
            // Comparing the relation element itself: its PCDATA column.
            let col = relation
                .find_column(&[], &ColumnKind::Pcdata)
                .map(|i| relation.columns[i].name.clone())
                .ok_or_else(|| {
                    CoreError::Path(format!("{} stores no direct PCDATA", relation.table))
                })?;
            format!("{col} {} {}", sql_op(op), lit_sql(lit))
        }
        RelTail::Inlined(path) => {
            let col = relation
                .find_column(path, &ColumnKind::Pcdata)
                .map(|i| relation.columns[i].name.clone())
                .ok_or_else(|| {
                    CoreError::Path(format!(
                        "no inlined PCDATA column {path:?} in {}",
                        relation.table
                    ))
                })?;
            format!("{col} {} {}", sql_op(op), lit_sql(lit))
        }
    };
    if chain.is_empty() {
        Ok(AtomCond::Local(cond))
    } else {
        Ok(AtomCond::Descendant(DescPred {
            chain,
            target_sql: cond,
        }))
    }
}

fn resolve_rel_path_exists(p: &PathExpr, rel: usize, mapping: &Mapping) -> Result<AtomCond> {
    let (home, chain, tail) = split_chain(p, rel, mapping)?;
    let target_rel = chain.last().copied().unwrap_or(home);
    let relation = &mapping.relations[target_rel];
    let cond = match &tail {
        RelTail::Attribute(attr) => {
            let col = relation
                .columns
                .iter()
                .find(|c| c.path.is_empty() && c.kind == ColumnKind::Attribute(attr.clone()))
                .ok_or_else(|| {
                    CoreError::Path(format!("@{attr} is not a column of {}", relation.table))
                })?;
            format!("{} IS NOT NULL", col.name)
        }
        RelTail::Inlined(path) if path.is_empty() => "id IS NOT NULL".to_string(),
        RelTail::Inlined(path) => {
            if let Some(i) = relation.find_column(path, &ColumnKind::Presence) {
                format!("{} = TRUE", relation.columns[i].name)
            } else if let Some(i) = relation.find_column(path, &ColumnKind::Pcdata) {
                format!("{} IS NOT NULL", relation.columns[i].name)
            } else {
                return Err(CoreError::Path(format!(
                    "no inlined item {path:?} in {}",
                    relation.table
                )));
            }
        }
    };
    if chain.is_empty() {
        Ok(AtomCond::Local(cond))
    } else {
        Ok(AtomCond::Descendant(DescPred {
            chain,
            target_sql: cond,
        }))
    }
}

enum RelTail {
    /// The path ends on `@attr` of the element reached so far.
    Attribute(String),
    /// The path's remaining segments stay inlined within the last chain
    /// relation.
    Inlined(Vec<String>),
}

/// Split a relative path into the chain of child relations it steps
/// through plus the inlined tail within the last one.
fn split_chain(
    p: &PathExpr,
    home: usize,
    mapping: &Mapping,
) -> Result<(usize, Vec<usize>, RelTail)> {
    let mut chain: Vec<usize> = Vec::new();
    let mut cur_rel = home;
    let mut inlined: Vec<String> = Vec::new();
    let mut steps = p.steps.iter().peekable();
    while let Some(step) = steps.next() {
        match step {
            Step::Child(name) => {
                if inlined.is_empty() {
                    // Still at a relation boundary: is `name` a child
                    // relation or an inlined item?
                    if let Some(&crel) = mapping.relations[cur_rel]
                        .children
                        .iter()
                        .find(|&&c| mapping.relations[c].element == *name)
                    {
                        chain.push(crel);
                        cur_rel = crel;
                        continue;
                    }
                }
                inlined.push(name.clone());
            }
            Step::Attribute(a) => {
                if steps.peek().is_some() {
                    return Err(CoreError::Unsupported(
                        "steps after an attribute are not translatable".into(),
                    ));
                }
                if !inlined.is_empty() {
                    return Err(CoreError::Unsupported(
                        "attributes of inlined elements are matched by column name; \
                         qualify from the relation element"
                            .into(),
                    ));
                }
                return Ok((home, chain, RelTail::Attribute(a.clone())));
            }
            other => {
                return Err(CoreError::Unsupported(format!(
                    "predicate path step {other:?}"
                )))
            }
        }
    }
    Ok((home, chain, RelTail::Inlined(inlined)))
}

/// Fold `WHERE` conditions into the specs of the variables they mention.
fn apply_where(e: &UExpr, vars: &mut HashMap<String, QuerySpec>, mapping: &Mapping) -> Result<()> {
    match e {
        UExpr::And(a, b) => {
            apply_where(a, vars, mapping)?;
            apply_where(b, vars, mapping)
        }
        UExpr::Cmp { left, op, right } => {
            let (var_expr, lit, op) = match (left.as_ref(), right.as_ref()) {
                (UExpr::Path(p), UExpr::Literal(l)) => (p, l, *op),
                (UExpr::Literal(l), UExpr::Path(p)) => (p, l, flip(*op)),
                _ => {
                    return Err(CoreError::Unsupported(
                        "WHERE must compare a bound path with a literal".into(),
                    ))
                }
            };
            let v = match &var_expr.start {
                PathStart::Var(v) => v.clone(),
                _ => {
                    return Err(CoreError::Unsupported(
                        "WHERE paths must start from a bound variable".into(),
                    ))
                }
            };
            let spec = vars
                .get(v.as_str())
                .ok_or_else(|| CoreError::Unsupported(format!("unbound ${v}")))?
                .clone();
            // Rebase: the condition applies to the variable's relation,
            // following the remaining relative steps.
            let rel_path = PathExpr {
                start: PathStart::Relative,
                steps: match &spec.inlined {
                    None => var_expr.steps.clone(),
                    Some(prefix) => {
                        // $city = "X" where $city binds an inlined item:
                        // prepend the inlined path.
                        let mut s: Vec<Step> =
                            prefix.iter().map(|seg| Step::Child(seg.clone())).collect();
                        s.extend(var_expr.steps.iter().cloned());
                        s
                    }
                },
            };
            let cond = resolve_rel_path_cond(&rel_path, lit, op, spec.rel, mapping)?;
            let entry = vars.get_mut(v.as_str()).expect("present");
            match cond {
                AtomCond::Local(s) => entry.local.push(s),
                AtomCond::Descendant(d) => entry.descendants.push(d),
            }
            Ok(())
        }
        other => Err(CoreError::Unsupported(format!("WHERE clause {other:?}"))),
    }
}
