//! Positional insertion over order-preserving mappings — the extension
//! the paper leaves as future work in Section 8:
//!
//! > "Since updates can insert new content between existing data, we
//! > encounter a problem of 'pushing' the position of the old data forward
//! > to accommodate the insertion."
//!
//! We avoid most pushing with gap-based positions: siblings are loaded
//! [`POS_GAP`] apart, a positional insert
//! takes the midpoint of its neighbours, and only when a gap is exhausted
//! are the parent's children renumbered (one UPDATE per sibling — the
//! cost the paper anticipated, paid rarely).
//!
//! Atomicity: a positional insert that triggers renumbering issues one
//! UPDATE per sibling before the INSERT itself. [`crate::XmlRepository`]
//! runs the whole sequence in one engine transaction, so a failure after
//! renumbering rolls the sibling positions back along with the insert.

use crate::error::{CoreError, Result};
use xmlup_rdb::{Database, Value};
use xmlup_shred::inline::POS_GAP;
use xmlup_shred::loader::sql_literal;
use xmlup_shred::{ColumnKind, Mapping};

/// Where to place a new tuple among its siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertAt {
    /// Before every existing sibling.
    First,
    /// After every existing sibling.
    Last,
    /// Immediately before the sibling with this tuple id.
    Before(i64),
    /// Immediately after the sibling with this tuple id.
    After(i64),
}

/// Outcome of a positional insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositionalInsert {
    /// Id of the new tuple.
    pub id: i64,
    /// Position value assigned.
    pub pos: i64,
    /// Whether the parent's children had to be renumbered.
    pub renumbered: bool,
}

/// All (id, pos) pairs of `parent_id`'s children across every child
/// relation, sorted by pos.
fn siblings(
    db: &mut Database,
    mapping: &Mapping,
    parent_rel: usize,
    parent_id: i64,
) -> Result<Vec<(i64, i64, usize)>> {
    let mut out = Vec::new();
    for &crel in &mapping.relations[parent_rel].children {
        let rel = &mapping.relations[crel];
        let pos_col = rel
            .find_column(&[], &ColumnKind::Position)
            .ok_or_else(|| CoreError::Strategy(format!("{} is not ordered", rel.table)))?;
        let rs = db.query(&format!(
            "SELECT id, {} FROM {} WHERE parentId = {parent_id}",
            rel.columns[pos_col].name, rel.table
        ))?;
        for row in rs.rows {
            out.push((
                row[1].as_int().unwrap_or(i64::MAX),
                row[0].as_int().expect("id"),
                crel,
            ));
        }
    }
    out.sort_unstable();
    Ok(out
        .into_iter()
        .map(|(pos, id, rel)| (id, pos, rel))
        .collect())
}

/// Compute the pos value for a new child of `parent_id`, renumbering the
/// siblings first if the target gap is exhausted. Returns `(pos,
/// renumbered)`.
pub fn position_for(
    db: &mut Database,
    mapping: &Mapping,
    parent_rel: usize,
    parent_id: i64,
    at: InsertAt,
) -> Result<(i64, bool)> {
    let sibs = siblings(db, mapping, parent_rel, parent_id)?;
    let pos = compute_midpoint(&sibs, at)?;
    match pos {
        Some(p) => Ok((p, false)),
        None => {
            // Gap exhausted: renumber every sibling to full gaps, then
            // recompute (guaranteed to succeed).
            renumber(db, mapping, &sibs)?;
            let sibs = siblings(db, mapping, parent_rel, parent_id)?;
            let p = compute_midpoint(&sibs, at)?
                .ok_or_else(|| CoreError::Strategy("renumbering failed to open a gap".into()))?;
            Ok((p, true))
        }
    }
}

/// Midpoint position for the placement, or `None` when no integer fits.
fn compute_midpoint(sibs: &[(i64, i64, usize)], at: InsertAt) -> Result<Option<i64>> {
    let find = |id: i64| -> Result<usize> {
        sibs.iter()
            .position(|&(sid, _, _)| sid == id)
            .ok_or_else(|| CoreError::Strategy(format!("anchor {id} is not a child tuple")))
    };
    let (lo, hi) = match at {
        InsertAt::First => (None, sibs.first().map(|&(_, p, _)| p)),
        InsertAt::Last => (sibs.last().map(|&(_, p, _)| p), None),
        InsertAt::Before(anchor) => {
            let i = find(anchor)?;
            (
                if i == 0 { None } else { Some(sibs[i - 1].1) },
                Some(sibs[i].1),
            )
        }
        InsertAt::After(anchor) => {
            let i = find(anchor)?;
            (
                Some(sibs[i].1),
                if i + 1 < sibs.len() {
                    Some(sibs[i + 1].1)
                } else {
                    None
                },
            )
        }
    };
    Ok(match (lo, hi) {
        (None, None) => Some(POS_GAP),
        (None, Some(h)) => {
            let p = h - POS_GAP;
            if p < h {
                Some(p)
            } else {
                None
            }
        }
        (Some(l), None) => Some(l + POS_GAP),
        (Some(l), Some(h)) => {
            let mid = l + (h - l) / 2;
            if mid > l && mid < h {
                Some(mid)
            } else {
                None
            }
        }
    })
}

/// Rewrite all siblings' positions to full gaps (rank × POS_GAP), one
/// UPDATE per tuple — the "pushing" cost of the naive scheme, paid only
/// when a gap runs out.
fn renumber(db: &mut Database, mapping: &Mapping, sibs: &[(i64, i64, usize)]) -> Result<()> {
    for (rank, &(id, _, crel)) in sibs.iter().enumerate() {
        let rel = &mapping.relations[crel];
        let pos_col = rel
            .find_column(&[], &ColumnKind::Position)
            .expect("ordered relation");
        db.execute(&format!(
            "UPDATE {} SET {} = {} WHERE id = {id}",
            rel.table,
            rel.columns[pos_col].name,
            (rank as i64 + 1) * POS_GAP
        ))?;
    }
    Ok(())
}

/// Insert a new tuple of `rel` under `parent_id` at the given sibling
/// position. `values` supplies the data columns by name (the pos column is
/// filled automatically; missing columns are NULL).
pub fn insert_tuple_at(
    db: &mut Database,
    mapping: &Mapping,
    rel: usize,
    parent_id: i64,
    values: &[(String, Value)],
    at: InsertAt,
) -> Result<PositionalInsert> {
    let parent_rel = mapping.relations[rel]
        .parent
        .ok_or_else(|| CoreError::Strategy("cannot insert a new root tuple".into()))?;
    let (pos, renumbered) = position_for(db, mapping, parent_rel, parent_id, at)?;
    let relation = &mapping.relations[rel];
    let pos_col = relation
        .find_column(&[], &ColumnKind::Position)
        .ok_or_else(|| CoreError::Strategy(format!("{} is not ordered", relation.table)))?;
    let id = db.allocate_ids(1);
    let mut row: Vec<Value> = vec![Value::Int(id), Value::Int(parent_id)];
    for (ci, col) in relation.columns.iter().enumerate() {
        if ci == pos_col {
            row.push(Value::Int(pos));
            continue;
        }
        let v = values
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(&col.name))
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        row.push(v);
    }
    let rendered: Vec<String> = row.iter().map(sql_literal).collect();
    db.execute(&format!(
        "INSERT INTO {} VALUES ({})",
        relation.table,
        rendered.join(", ")
    ))?;
    Ok(PositionalInsert {
        id,
        pos,
        renumbered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlup_shred::loader::{create_schema, shred, unshred};
    use xmlup_xml::dtd::Dtd;
    use xmlup_xml::Document;

    /// Mini synthetic document: `root` with `count` `n1` children, each
    /// carrying `str`/`num` data elements (the shape of the paper's
    /// synthetic workload at depth 2).
    fn tiny_doc(count: usize) -> Document {
        let mut doc = Document::new("root");
        let root = doc.root();
        for i in 0..count {
            let n1 = doc.new_element("n1");
            doc.append_child(root, n1).unwrap();
            for (tag, text) in [("str", format!("s{i}")), ("num", i.to_string())] {
                let el = doc.new_element(tag);
                let t = doc.new_text(text);
                doc.append_child(el, t).unwrap();
                doc.append_child(n1, el).unwrap();
            }
        }
        doc
    }

    fn tiny_dtd() -> Dtd {
        Dtd::parse(
            "<!ELEMENT root (n1*)>
             <!ELEMENT n1 (str, num)>
             <!ELEMENT str (#PCDATA)>
             <!ELEMENT num (#PCDATA)>",
        )
        .unwrap()
    }

    fn ordered_db() -> (Database, Mapping) {
        let mapping = Mapping::from_dtd_ordered(&tiny_dtd(), "root").unwrap();
        let doc = tiny_doc(3);
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        shred(&mut db, &mapping, &doc).unwrap();
        (db, mapping)
    }

    #[test]
    fn ordered_mapping_roundtrips() {
        let (mut db, mapping) = ordered_db();
        let orig = tiny_doc(3);
        let back = unshred(&mut db, &mapping).unwrap();
        assert!(orig.subtree_eq(orig.root(), &back, back.root()));
    }

    #[test]
    fn insert_first_middle_last() {
        let (mut db, mapping) = ordered_db();
        let n1 = mapping.relation_by_element("n1").unwrap();
        let root_id = 0; // loader assigns 0 to the root tuple
        let sib = siblings(&mut db, &mapping, mapping.root(), root_id).unwrap();
        assert_eq!(sib.len(), 3);
        let first = insert_tuple_at(&mut db, &mapping, n1, root_id, &[], InsertAt::First).unwrap();
        assert!(first.pos < sib[0].1);
        assert!(!first.renumbered);
        let last = insert_tuple_at(&mut db, &mapping, n1, root_id, &[], InsertAt::Last).unwrap();
        assert!(last.pos > sib[2].1);
        let mid = insert_tuple_at(
            &mut db,
            &mapping,
            n1,
            root_id,
            &[],
            InsertAt::After(sib[0].0),
        )
        .unwrap();
        assert!(mid.pos > sib[0].1 && mid.pos < sib[1].1);
    }

    #[test]
    fn repeated_midpoint_inserts_eventually_renumber() {
        let (mut db, mapping) = ordered_db();
        let n1 = mapping.relation_by_element("n1").unwrap();
        let root_id = 0;
        let sib = siblings(&mut db, &mapping, mapping.root(), root_id).unwrap();
        let mut anchor = sib[0].0;
        let mut renumbered_at = None;
        // Repeatedly inserting right after the same anchor halves the gap
        // each time: ~log2(POS_GAP) ≈ 20 inserts before a renumber.
        for i in 0..30 {
            let ins = insert_tuple_at(&mut db, &mapping, n1, root_id, &[], InsertAt::After(anchor))
                .unwrap();
            if ins.renumbered {
                renumbered_at = Some(i);
                break;
            }
            anchor = ins.id;
            let _ = anchor;
            // Keep anchoring on the *original* first sibling to squeeze
            // the same gap.
            anchor = sib[0].0;
        }
        let hit = renumbered_at.expect("gap must eventually exhaust");
        assert!(
            hit >= 15,
            "gap scheme should absorb ~log2(gap) inserts, got {hit}"
        );
        // Order is still consistent after renumbering.
        let sibs = siblings(&mut db, &mapping, mapping.root(), root_id).unwrap();
        let positions: Vec<i64> = sibs.iter().map(|s| s.1).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn inserted_order_visible_in_reconstruction() {
        let (mut db, mapping) = ordered_db();
        let n1 = mapping.relation_by_element("n1").unwrap();
        let sib = siblings(&mut db, &mapping, mapping.root(), 0).unwrap();
        insert_tuple_at(
            &mut db,
            &mapping,
            n1,
            0,
            &[("str".to_string(), Value::from("INSERTED"))],
            InsertAt::Before(sib[1].0),
        )
        .unwrap();
        let doc = unshred(&mut db, &mapping).unwrap();
        let kids = doc.children(doc.root());
        assert_eq!(kids.len(), 4);
        // The new element sits at index 1 (between the original first and
        // second subtrees).
        let strs: Vec<String> = kids
            .iter()
            .map(|&k| {
                doc.children(k)
                    .first()
                    .map(|&c| doc.string_value(c))
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(strs[1], "INSERTED");
    }

    #[test]
    fn outer_union_respects_positions() {
        let (mut db, mapping) = ordered_db();
        let n1 = mapping.relation_by_element("n1").unwrap();
        let sib = siblings(&mut db, &mapping, mapping.root(), 0).unwrap();
        insert_tuple_at(
            &mut db,
            &mapping,
            n1,
            0,
            &[("str".to_string(), Value::from("FIRST"))],
            InsertAt::First,
        )
        .unwrap();
        let (doc, roots) =
            xmlup_shred::outer_union::fetch_subtrees(&mut db, &mapping, mapping.root(), None)
                .unwrap();
        let kids = doc.children(roots[0]);
        let first_str = doc
            .children(kids[0])
            .first()
            .map(|&c| doc.string_value(c))
            .unwrap_or_default();
        assert_eq!(first_str, "FIRST");
        let _ = sib;
    }

    #[test]
    fn unordered_mapping_rejects_positional_insert() {
        let mapping = Mapping::from_dtd(&tiny_dtd(), "root").unwrap();
        let doc = tiny_doc(2);
        let mut db = Database::new();
        create_schema(&mut db, &mapping).unwrap();
        shred(&mut db, &mapping, &doc).unwrap();
        let n1 = mapping.relation_by_element("n1").unwrap();
        assert!(insert_tuple_at(&mut db, &mapping, n1, 0, &[], InsertAt::First).is_err());
    }
}
