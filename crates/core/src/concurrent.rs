//! Concurrent repository facade: many sessions, one shredded store.
//!
//! The paper's experiments drive a single JDBC client; a real middleware
//! deployment multiplexes many. [`SharedRepository`] wraps one
//! [`XmlRepository`] for that setting, with the same concurrency model as
//! the engine's session layer ([`xmlup_rdb::SharedDatabase`]):
//!
//! * **Translated updates serialize.** [`SharedRepository::update`] (and
//!   any mutation through [`SharedRepository::with_write`]) first takes a
//!   writer-admission token — one XQuery update statement owns the
//!   engine's transaction slot at a time, and its whole translation
//!   (bind-first queries, per-level statements, trigger cascades, ASR
//!   maintenance) commits or rolls back as one unit exactly as in the
//!   single-session facade.
//! * **Readers pin snapshots.** [`SharedRepository::snapshot`] registers
//!   an MVCC epoch and answers every query on it against that committed
//!   state, releasing the shared lock *between* statements — so a
//!   long-running analytical reader never blocks updates, and an update
//!   committing mid-read can never tear the reader's view.
//!
//! Construction enables MVCC version retention on the underlying engine;
//! the version GC stays bounded by the oldest live [`RepoSnapshot`].

use crate::error::Result;
use crate::repository::XmlRepository;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;
use xmlup_rdb::ResultSet;

/// Shared state behind every handle.
struct Inner {
    repo: RwLock<XmlRepository>,
    /// Writer-admission token: `true` while an update owns the engine's
    /// transaction slot. Taken before the `RwLock` write guard, released
    /// after it — the same lock order as the engine session layer.
    writer: Mutex<bool>,
    writer_cv: Condvar,
}

impl Inner {
    fn acquire_writer(&self) {
        let start = Instant::now();
        let mut held = self.writer.lock().unwrap();
        while *held {
            held = self.writer_cv.wait(held).unwrap();
        }
        *held = true;
        drop(held);
        let waited = start.elapsed().as_micros() as u64;
        self.repo.read().unwrap().db.record_write_lock_wait(waited);
    }

    fn release_writer(&self) {
        *self.writer.lock().unwrap() = false;
        self.writer_cv.notify_one();
    }
}

/// A thread-safe, cheaply clonable handle to one [`XmlRepository`].
#[derive(Clone)]
pub struct SharedRepository {
    inner: Arc<Inner>,
}

impl SharedRepository {
    /// Wrap `repo` for concurrent use (enables MVCC on its engine).
    pub fn new(mut repo: XmlRepository) -> Self {
        repo.db.enable_mvcc(true);
        SharedRepository {
            inner: Arc::new(Inner {
                repo: RwLock::new(repo),
                writer: Mutex::new(false),
                writer_cv: Condvar::new(),
            }),
        }
    }

    /// Parse, translate, and execute one XQuery update statement,
    /// serialized behind the writer token. Returns affected root objects.
    pub fn update(&self, statement: &str) -> Result<usize> {
        self.with_write(|r| r.execute_xquery(statement))
    }

    /// Run a closure against the exclusive repository, serialized behind
    /// the writer token. The closure gets the full single-session
    /// [`XmlRepository`] API ([`XmlRepository::load`], the direct
    /// strategy entry points, [`XmlRepository::in_transaction`]) but must
    /// leave no transaction open on return.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut XmlRepository) -> R) -> R {
        self.inner.acquire_writer();
        let r = f(&mut self.inner.repo.write().unwrap());
        self.inner.release_writer();
        r
    }

    /// Run a closure against a shared read guard. The closure sees live
    /// committed state (every write path holds the exclusive guard for
    /// its whole transaction, so the heap is committed whenever this
    /// guard is obtainable); use [`SharedRepository::snapshot`] for a
    /// view that stays consistent *across* statements.
    pub fn with_read<R>(&self, f: impl FnOnce(&XmlRepository) -> R) -> R {
        f(&self.inner.repo.read().unwrap())
    }

    /// One-shot snapshot-consistent SQL read.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let snap = self.snapshot();
        snap.query(sql)
    }

    /// Pin a snapshot of the current committed state. Every query on the
    /// returned handle answers against that epoch, no matter how many
    /// updates commit in between; dropping the handle releases it so the
    /// version GC can advance.
    pub fn snapshot(&self) -> RepoSnapshot {
        let epoch = self.inner.repo.read().unwrap().db.begin_snapshot();
        RepoSnapshot {
            inner: self.inner.clone(),
            epoch,
        }
    }

    /// Engine metrics in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.with_read(|r| r.metrics_text())
    }
}

/// A pinned, transaction-consistent read view of a [`SharedRepository`].
///
/// Holds no lock between statements — only the MVCC epoch registration —
/// so concurrent updates proceed freely and this view never moves.
pub struct RepoSnapshot {
    inner: Arc<Inner>,
    epoch: u64,
}

impl RepoSnapshot {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Evaluate a SQL query against the snapshot.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let repo = self.inner.repo.read().unwrap();
        Ok(repo.db.query_at(sql, Some(self.epoch))?)
    }

    /// Total live tuples across the mapping's tables as of the snapshot
    /// (the snapshot-consistent form of [`XmlRepository::tuple_count`]).
    pub fn tuple_count(&self) -> Result<i64> {
        let repo = self.inner.repo.read().unwrap();
        let mut total = 0;
        for rel in &repo.mapping.relations {
            let rs = repo.db.query_at(
                &format!("SELECT COUNT(*) FROM {}", rel.table),
                Some(self.epoch),
            )?;
            total += rs.rows[0][0].as_int().unwrap_or(0);
        }
        Ok(total)
    }
}

impl Drop for RepoSnapshot {
    fn drop(&mut self) {
        self.inner.repo.read().unwrap().db.end_snapshot(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RepoConfig, XmlRepository};
    use xmlup_xml::{dtd::Dtd, samples};

    fn shared() -> SharedRepository {
        let dtd = Dtd::parse(samples::CUSTOMER_DTD).unwrap();
        let doc = xmlup_xml::parse(samples::CUSTOMER_XML).unwrap().doc;
        let mut repo = XmlRepository::new(&dtd, "CustDB", RepoConfig::default()).unwrap();
        repo.load(&doc).unwrap();
        SharedRepository::new(repo)
    }

    #[test]
    fn snapshot_pins_across_a_translated_update() {
        let s = shared();
        let snap = s.snapshot();
        let before = snap.tuple_count().unwrap();

        // A translated XQuery delete commits while the snapshot is live.
        let n = s
            .update(
                r#"FOR $d IN document("custdb.xml")/CustDB,
                       $c IN $d/Customer[Name="John"]
                   UPDATE $d { DELETE $c }"#,
            )
            .unwrap();
        assert!(n > 0);

        // The snapshot still sees the pre-delete document; the live
        // store shrank.
        assert_eq!(snap.tuple_count().unwrap(), before);
        let live = s.with_read(|r| r.tuple_count()) as i64;
        assert!(live < before);

        // Releasing the snapshot deregisters it; the next commit's GC
        // horizon is then unbounded by this reader.
        drop(snap);
        assert_eq!(s.with_read(|r| r.db.active_snapshots()), 0);
    }

    #[test]
    fn updates_from_clones_serialize() {
        let s = shared();
        let before = s.with_read(|r| r.tuple_count());
        let a = s.clone();
        let t = std::thread::spawn(move || {
            a.update(
                r#"FOR $d IN document("custdb.xml")/CustDB,
                       $c IN $d/Customer[Name="John"]
                   UPDATE $d { DELETE $c }"#,
            )
            .unwrap()
        });
        let n = t.join().unwrap();
        assert!(n > 0);
        assert!(s.with_read(|r| r.tuple_count()) < before);
        // The wait histogram saw both writers pass through admission.
        assert!(s.metrics_text().contains("rdb_write_lock_wait_count"));
    }
}
