//! Strategy tests: all four delete strategies and all three insert
//! strategies must produce equivalent stores; ASR maintenance must keep
//! the index consistent; the XQuery translation must produce the paper's
//! statement shapes.

use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_rdb::Value;
use xmlup_xml::dtd::Dtd;
use xmlup_xml::samples::{CUSTOMER_DTD, CUSTOMER_XML};
use xmlup_xml::Document;

fn repo_with(ds: DeleteStrategy, is: InsertStrategy) -> XmlRepository {
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            delete_strategy: ds,
            insert_strategy: is,
            build_asr: false,
            statement_cost_us: 0,
            ..RepoConfig::default()
        },
    )
    .unwrap();
    repo.load(&doc).unwrap();
    repo
}

/// Reconstruct the full stored document for comparison.
fn snapshot(repo: &mut XmlRepository) -> Document {
    xmlup_shred::loader::unshred(&mut repo.db, &repo.mapping).unwrap()
}

#[test]
fn all_delete_strategies_agree() {
    let mut reference: Option<Document> = None;
    for ds in DeleteStrategy::ALL {
        let mut repo = repo_with(ds, InsertStrategy::Table);
        let cust = repo.mapping.relation_by_element("Customer").unwrap();
        let n = repo.delete_where(cust, Some("Name = 'John'")).unwrap();
        assert_eq!(n, 2, "{}: deleted roots", ds.label());
        // No orphans in any table.
        for rel in &repo.mapping.relations.clone() {
            if let Some(parent) = rel.parent {
                let rs = repo
                    .db
                    .query(&format!(
                        "SELECT COUNT(*) FROM {} WHERE parentId NOT IN (SELECT id FROM {})",
                        rel.table, repo.mapping.relations[parent].table
                    ))
                    .unwrap();
                assert_eq!(
                    rs.scalar(),
                    Some(&Value::Int(0)),
                    "{}: orphans left in {}",
                    ds.label(),
                    rel.table
                );
            }
        }
        let doc = snapshot(&mut repo);
        match &reference {
            None => reference = Some(doc),
            Some(r) => assert!(
                r.subtree_eq(r.root(), &doc, doc.root()),
                "{} disagrees with the reference result",
                ds.label()
            ),
        }
    }
}

#[test]
fn per_tuple_trigger_uses_one_client_statement() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    repo.reset_stats();
    repo.delete_where(cust, Some("Name = 'John'")).unwrap();
    let s = repo.stats();
    assert_eq!(
        s.client_statements, 1,
        "the paper's headline: a single SQL DELETE"
    );
    assert!(
        s.trigger_firings >= 4,
        "cascade fired per deleted customer and order"
    );
}

#[test]
fn cascading_issues_one_statement_per_level() {
    let mut repo = repo_with(DeleteStrategy::Cascading, InsertStrategy::Table);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    repo.reset_stats();
    repo.delete_where(cust, Some("Name = 'John'")).unwrap();
    let s = repo.stats();
    // Root delete + Order orphan delete + OrderLine orphan delete = 3.
    assert_eq!(s.client_statements, 3);
    assert_eq!(s.trigger_firings, 0);
}

#[test]
fn asr_delete_maintains_index() {
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            delete_strategy: DeleteStrategy::Asr,
            insert_strategy: InsertStrategy::Asr,
            build_asr: true,
            statement_cost_us: 0,
            ..RepoConfig::default()
        },
    )
    .unwrap();
    repo.load(&doc).unwrap();
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    repo.delete_where(cust, Some("Name = 'John'")).unwrap();
    // ASR must describe exactly the remaining document: rebuild a fresh
    // one and compare tuple sets.
    let live_paths = repo.db.table("asr").unwrap().len();
    let asr = repo.asr.clone().unwrap();
    asr.populate(&mut repo.db, &repo.mapping).unwrap();
    let fresh_paths = repo.db.table("asr").unwrap().len();
    assert_eq!(
        live_paths, fresh_paths,
        "maintained ASR diverges from a rebuild"
    );
    // Mary remains with her order line.
    let rs = repo.db.query("SELECT COUNT(*) FROM OrderLine").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn delete_everything_leaves_root_only() {
    // The bulk workload: delete every subtree of the root.
    for ds in DeleteStrategy::ALL {
        let mut repo = repo_with(ds, InsertStrategy::Table);
        // The ASR strategy builds its index during load (needs_asr).
        assert_eq!(repo.asr.is_some(), ds == DeleteStrategy::Asr);
        let cust = repo.mapping.relation_by_element("Customer").unwrap();
        repo.delete_where(cust, None).unwrap();
        assert_eq!(
            repo.tuple_count(),
            1,
            "{}: only the root remains",
            ds.label()
        );
    }
}

#[test]
fn all_insert_strategies_agree() {
    let mut reference: Option<Document> = None;
    for is in InsertStrategy::ALL {
        let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
        let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
        let mut repo = XmlRepository::new(
            &dtd,
            "CustDB",
            RepoConfig {
                delete_strategy: DeleteStrategy::PerTupleTrigger,
                insert_strategy: is,
                build_asr: is == InsertStrategy::Asr,
                statement_cost_us: 0,
                ..RepoConfig::default()
            },
        )
        .unwrap();
        repo.load(&doc).unwrap();
        let cust = repo.mapping.relation_by_element("Customer").unwrap();
        let root = repo.root_id().unwrap();
        let first_customer = repo.ids_of(cust)[0];
        let n = repo.copy_subtree(cust, first_customer, root).unwrap();
        // First John: Customer + 2 Orders + 3 OrderLines = 6 tuples.
        assert_eq!(n, 6, "{}: copied tuple count", is.label());
        assert_eq!(repo.db.table("customer").unwrap().len(), 4);
        // Copy is attached to the root and structurally identical.
        let (xml, roots) = repo.fetch(cust, Some("Name = 'John'")).unwrap();
        assert_eq!(
            roots.len(),
            3,
            "{}: two originals plus the copy",
            is.label()
        );
        assert!(
            xml.subtree_eq(roots[0], &xml, *roots.last().unwrap()),
            "{}: copy differs from source",
            is.label()
        );
        let snap = snapshot(&mut repo);
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert!(
                r.subtree_eq(r.root(), &snap, snap.root()),
                "{} disagrees with the reference result",
                is.label()
            ),
        }
    }
}

#[test]
fn tuple_insert_allocates_gapless_ids() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Tuple);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let root = repo.root_id().unwrap();
    let src = repo.ids_of(cust)[0];
    let before = repo.db.peek_next_id();
    let n = repo.copy_subtree(cust, src, root).unwrap() as i64;
    let after = repo.db.peek_next_id();
    assert_eq!(after - before, n, "tuple method allocates ids without gaps");
}

#[test]
fn table_insert_uses_offset_heuristic() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let root = repo.root_id().unwrap();
    let src = repo.ids_of(cust)[0];
    let before = repo.db.peek_next_id();
    repo.copy_subtree(cust, src, root).unwrap();
    let after = repo.db.peek_next_id();
    // Heuristic reserves maxId − minId + 1, which may exceed the number of
    // tuples copied (gaps are allowed).
    assert!(after - before >= 6);
}

#[test]
fn asr_insert_maintains_index() {
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            delete_strategy: DeleteStrategy::Asr,
            insert_strategy: InsertStrategy::Asr,
            build_asr: true,
            statement_cost_us: 0,
            ..RepoConfig::default()
        },
    )
    .unwrap();
    repo.load(&doc).unwrap();
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let root = repo.root_id().unwrap();
    let src = repo.ids_of(cust)[0];
    repo.copy_subtree(cust, src, root).unwrap();
    let live = repo.db.table("asr").unwrap().len();
    let asr = repo.asr.clone().unwrap();
    asr.populate(&mut repo.db, &repo.mapping).unwrap();
    assert_eq!(live, repo.db.table("asr").unwrap().len());
    // And no marks left behind.
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM ASR WHERE mark = TRUE")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(0)));
}

#[test]
fn repeated_copies_nest_correctly() {
    // Copy an Order (middle level) under a different customer.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let order = repo.mapping.relation_by_element("Order").unwrap();
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let mary = repo
        .db
        .query("SELECT id FROM Customer WHERE Name = 'Mary'")
        .unwrap()
        .scalar()
        .unwrap()
        .as_int()
        .unwrap();
    let first_order = repo.ids_of(order)[0];
    let n = repo.copy_subtree(order, first_order, mary).unwrap();
    assert_eq!(n, 3, "order + two lines");
    let rs = repo
        .db
        .query(&format!(
            "SELECT COUNT(*) FROM Order O WHERE O.parentId = {mary}"
        ))
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    let _ = cust;
}

// ----------------------------------------------------------------------
// XQuery translation end-to-end
// ----------------------------------------------------------------------

#[test]
fn xquery_delete_with_predicate() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $d IN document("custdb.xml")/CustDB,
                   $c IN $d/Customer[Name="John"]
               UPDATE $d { DELETE $c }"#,
        )
        .unwrap();
    assert_eq!(n, 2);
    assert_eq!(repo.db.table("customer").unwrap().len(), 1);
    assert_eq!(repo.db.table("orderline").unwrap().len(), 1);
}

#[test]
fn xquery_delete_with_descendant_predicate() {
    // Customers who ordered tires (predicate chains through two child
    // relations).
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $d IN document("custdb.xml")/CustDB,
                   $c IN $d/Customer[Order/OrderLine/ItemName="tire"]
               UPDATE $d { DELETE $c }"#,
        )
        .unwrap();
    assert_eq!(n, 2, "John(1) and Mary ordered tires");
    assert_eq!(repo.db.table("customer").unwrap().len(), 1);
}

#[test]
fn xquery_delete_inlined_item() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"],
                   $a IN $c/Address
               UPDATE $c { DELETE $a }"#,
        )
        .unwrap();
    assert_eq!(n, 2);
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM Customer WHERE Address_present = TRUE")
        .unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&Value::Int(1)),
        "only Mary keeps an address"
    );
    let rs = repo
        .db
        .query("SELECT Address_City FROM Customer WHERE Name = 'John'")
        .unwrap();
    assert!(rs.rows.iter().all(|r| r[0].is_null()));
}

#[test]
fn xquery_copy_subtrees() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $s IN document("custdb.xml")/CustDB/Customer[Address/State="CA"],
                   $t IN document("custdb.xml")/CustDB
               UPDATE $t { INSERT $s }"#,
        )
        .unwrap();
    // Mary (1 customer + 1 order + 1 line = 3) + John#3 (1) = 4 tuples.
    assert_eq!(n, 4);
    assert_eq!(repo.db.table("customer").unwrap().len(), 5);
}

#[test]
fn xquery_replace_inlined() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"],
                   $n IN $c/Name
               UPDATE $c { REPLACE $n WITH <Name>Jonathan</Name> }"#,
        )
        .unwrap();
    assert_eq!(n, 2);
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM Customer WHERE Name = 'Jonathan'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn xquery_insert_inlined_status() {
    // Paper Example 8's outer op: INSERT <Status>…</Status> on orders.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    // Clear existing statuses first so the insert is not an overwrite.
    repo.db.execute("UPDATE Order SET Status = NULL").unwrap();
    let n = repo
        .execute_xquery(
            r#"FOR $o IN document("custdb.xml")//Order
               UPDATE $o { INSERT <Status>suspended</Status> }"#,
        )
        .unwrap();
    assert_eq!(n, 3);
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM Order WHERE Status = 'suspended'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}

#[test]
fn xquery_where_clause_merges_into_filter() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $d IN document("custdb.xml")/CustDB,
                   $c IN $d/Customer
               WHERE $c/Address/State = "CA"
               UPDATE $d { DELETE $c }"#,
        )
        .unwrap();
    assert_eq!(n, 2);
    assert_eq!(repo.db.table("customer").unwrap().len(), 1);
}

#[test]
fn xquery_query_roundtrip() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let (doc, roots) = repo
        .query_xml(r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"] RETURN $c"#)
        .unwrap();
    assert_eq!(roots.len(), 2);
    assert_eq!(doc.name(roots[0]), Some("Customer"));
}

#[test]
fn asr_accelerated_query_gives_same_answer() {
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let q = r#"FOR $c IN document("custdb.xml")/CustDB/Customer[Order/OrderLine/ItemName="tire"]
               RETURN $c"#;
    // Without ASR.
    let mut plain = XmlRepository::new(&dtd, "CustDB", RepoConfig::default()).unwrap();
    plain.load(&doc).unwrap();
    let (_, r1) = plain.query_xml(q).unwrap();
    // With ASR.
    let mut asr = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            build_asr: true,
            ..RepoConfig::default()
        },
    )
    .unwrap();
    asr.load(&doc).unwrap();
    let (_, r2) = asr.query_xml(q).unwrap();
    assert_eq!(r1.len(), 2);
    assert_eq!(r1.len(), r2.len());
}

#[test]
fn unsupported_statements_error_cleanly() {
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    // RENAME is not translatable to the inlined mapping.
    let err = repo
        .execute_xquery(
            r#"FOR $c IN document("d")/CustDB/Customer, $n IN $c/Name
               UPDATE $c { RENAME $n TO Nome }"#,
        )
        .unwrap_err();
    assert!(matches!(err, xmlup_core::CoreError::Unsupported(_)));
    // Positional insert needs the ordered extension.
    let err = repo
        .execute_xquery(
            r#"FOR $c IN document("d")/CustDB/Customer, $n IN $c/Name
               UPDATE $c { INSERT <Name>x</Name> BEFORE $n }"#,
        )
        .unwrap_err();
    assert!(matches!(err, xmlup_core::CoreError::Unsupported(_)));
}

#[test]
fn nested_update_bind_first_avoids_example8_hazard() {
    // Paper Section 6 / Example 8: the outer operation flips Status from
    // 'ready', and the nested operation's selection depends (through its
    // ancestor filter) on Status = 'ready'. Naively issuing the outer SQL
    // first would leave the nested operation with nothing to update; the
    // bind-first discipline (Section 6.3) computes all bindings before
    // executing anything.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $o IN document("custdb.xml")//Order[Status="ready"],
                   $s IN $o/Status
               UPDATE $o {
                   REPLACE $s WITH <Status>suspended</Status>,
                   FOR $i IN $o/OrderLine[ItemName="tire"],
                       $q IN $i/Qty
                   UPDATE $i { REPLACE $q WITH <Qty>0</Qty> }
               }"#,
        )
        .unwrap();
    // 2 ready orders re-statused + 2 tire lines zeroed.
    assert_eq!(n, 4);
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM Order WHERE Status = 'suspended'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    let rs = repo
        .db
        .query("SELECT COUNT(*) FROM OrderLine WHERE ItemName = 'tire' AND Qty = '0'")
        .unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&Value::Int(2)),
        "nested op must see the pre-update Status='ready' bindings"
    );
}

#[test]
fn multi_op_statement_binds_before_executing() {
    // Two sibling ops where the first invalidates the second's filter:
    // delete Johns, then (same statement) rename remaining 'John' → never
    // both can match post-hoc; bind-first gives both their snapshot.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let n = repo
        .execute_xquery(
            r#"FOR $d IN document("custdb.xml")/CustDB,
                   $c IN $d/Customer[Name="John"],
                   $n IN $c/Name
               UPDATE $d { DELETE $c },
               UPDATE $c { REPLACE $n WITH <Name>gone</Name> }"#,
        )
        .unwrap();
    // The deletes land; the replaces bind to now-deleted tuples and
    // affect zero rows (the relational analogue of the in-memory
    // evaluator's skipped ops).
    assert_eq!(repo.db.table("customer").unwrap().len(), 1);
    assert!(n >= 2);
}

#[test]
fn simple_insert_overwrite_check() {
    // Paper Section 6.2: "if we want to generate a warning on any attempt
    // to insert 'over' an item that may only occur once in the DTD, we
    // must initially query the table".
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let order = repo.mapping.relation_by_element("Order").unwrap();
    let status_col = repo.mapping.relations[order]
        .columns
        .iter()
        .position(|c| c.name == "Status")
        .unwrap();
    // All orders already carry a Status → checked insert must refuse.
    let err = xmlup_core::insert::insert_inlined(
        &mut repo.db,
        &repo.mapping,
        order,
        status_col,
        &Value::from("suspended"),
        None,
        true,
    )
    .unwrap_err();
    assert!(matches!(err, xmlup_core::CoreError::Strategy(_)));
    // Clear them; now the checked insert succeeds.
    repo.db.execute("UPDATE Order SET Status = NULL").unwrap();
    let n = xmlup_core::insert::insert_inlined(
        &mut repo.db,
        &repo.mapping,
        order,
        status_col,
        &Value::from("suspended"),
        None,
        true,
    )
    .unwrap();
    assert_eq!(n, 3);
}

#[test]
fn simple_delete_lowers_presence_flag_and_nulls_columns() {
    // Paper Section 6.1's "simple delete" caveat: deleting an inlined
    // non-leaf element must flip its presence flag, not just NULL its
    // children, so "deleted" and "present but empty" stay distinct.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    let n = xmlup_core::delete::delete_inlined(
        &mut repo.db,
        &repo.mapping,
        cust,
        &["Address".to_string()],
        Some("Name = 'Mary'"),
    )
    .unwrap();
    assert_eq!(n, 1);
    let rs = repo
        .db
        .query("SELECT Address_present, Address_City FROM Customer WHERE Name = 'Mary'")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Bool(false));
    assert!(rs.rows[0][1].is_null());
    // Reconstruction omits the Address element entirely.
    let snap = snapshot(&mut repo);
    let mary = snap
        .children(snap.root())
        .iter()
        .copied()
        .find(|&c| snap.string_value(snap.children(c)[0]) == "Mary")
        .unwrap();
    assert!(snap
        .children(mary)
        .iter()
        .all(|&c| snap.name(c) != Some("Address")));
}

#[test]
fn simple_insert_raises_presence_flags_along_path() {
    // Setting an inlined City implies its Address ancestor exists again.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    xmlup_core::delete::delete_inlined(
        &mut repo.db,
        &repo.mapping,
        cust,
        &["Address".to_string()],
        Some("Name = 'Mary'"),
    )
    .unwrap();
    let city_col = repo.mapping.relations[cust]
        .columns
        .iter()
        .position(|c| c.name == "Address_City")
        .unwrap();
    xmlup_core::insert::insert_inlined(
        &mut repo.db,
        &repo.mapping,
        cust,
        city_col,
        &Value::from("Fresno"),
        Some("Name = 'Mary'"),
        false,
    )
    .unwrap();
    let rs = repo
        .db
        .query("SELECT Address_present FROM Customer WHERE Name = 'Mary'")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Bool(true));
}

#[test]
fn example10_cross_repository_import() {
    // Paper Example 10, relationally: copy Californian customers from one
    // repository into an initially-empty one with the same DTD.
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut src = XmlRepository::new(&dtd, "CustDB", RepoConfig::default()).unwrap();
    src.load(&doc).unwrap();
    let mut dst = XmlRepository::new(&dtd, "CustDB", RepoConfig::default()).unwrap();
    dst.load(&xmlup_xml::Document::new("CustDB")).unwrap();

    let cust = src.mapping.relation_by_element("Customer").unwrap();
    let dst_root = dst.root_id().unwrap();
    let ca_ids: Vec<i64> = src
        .db
        .query("SELECT id FROM Customer WHERE Address_State = 'CA' ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r[0].as_int())
        .collect();
    assert_eq!(ca_ids.len(), 2);
    let mut created = 0;
    for id in ca_ids {
        created += dst
            .import_subtree(&mut src, cust, id, cust, dst_root)
            .unwrap();
    }
    assert!(
        created >= 4,
        "Mary's subtree + bare John = {created} tuples"
    );
    assert_eq!(dst.db.table("customer").unwrap().len(), 2);
    // Copy semantics: the source keeps its three customers.
    assert_eq!(src.db.table("customer").unwrap().len(), 3);
    // The imported data is structurally identical to the source subtrees.
    let (sx, sroots) = src.fetch(cust, Some("Address_State = 'CA'")).unwrap();
    let (dx, droots) = dst.fetch(cust, None).unwrap();
    assert_eq!(sroots.len(), droots.len());
    for (a, b) in sroots.iter().zip(&droots) {
        assert!(sx.subtree_eq(*a, &dx, *b));
    }
}

#[test]
fn import_rejects_mismatched_mapping() {
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let other = Dtd::parse("<!ELEMENT db (x*)> <!ELEMENT x (#PCDATA)>").unwrap();
    let mut a = XmlRepository::new(&dtd, "CustDB", RepoConfig::default()).unwrap();
    let mut b = XmlRepository::new(&other, "db", RepoConfig::default()).unwrap();
    b.load(&xmlup_xml::Document::new("db")).unwrap();
    a.load(&xmlup_xml::Document::new("CustDB")).unwrap();
    let err = a.import_subtree(&mut b, 1, 0, 1, 0).unwrap_err();
    assert!(matches!(err, xmlup_core::CoreError::Strategy(_)));
}

#[test]
fn bind_first_inlined_insert_raises_presence_flags() {
    // Review finding: the multi-op (bind-first) path used to issue a raw
    // UPDATE, skipping the presence-flag raising of the single-op path.
    let mut repo = repo_with(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
    // Delete Mary's Address, then in ONE multi-op statement set her City
    // back and delete another customer (forcing the bind-first path).
    xmlup_core::delete::delete_inlined(
        &mut repo.db,
        &repo.mapping,
        repo.mapping.relation_by_element("Customer").unwrap(),
        &["Address".to_string()],
        Some("Name = 'Mary'"),
    )
    .unwrap();
    repo.execute_xquery(
        r#"FOR $d IN document("x")/CustDB,
               $m IN $d/Customer[Name="Mary"],
               $j IN $d/Customer[Address/City="Sacramento"]
           UPDATE $m { INSERT <Name>Mary</Name> },
           UPDATE $d { DELETE $j }"#,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    // Now the same via City (raises Address_present).
    xmlup_core::delete::delete_inlined(
        &mut repo.db,
        &repo.mapping,
        repo.mapping.relation_by_element("Customer").unwrap(),
        &["Address".to_string()],
        Some("Name = 'Mary'"),
    )
    .unwrap();
    repo.execute_xquery(
        r#"FOR $d IN document("x")/CustDB,
               $m IN $d/Customer[Name="Mary"],
               $a IN $m/Address/City
           UPDATE $m { REPLACE $a WITH <City>Fresno</City> },
           UPDATE $m { INSERT <Name>Mary</Name> }"#,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let rs = repo
        .db
        .query("SELECT Address_present, Address_City FROM Customer WHERE Name = 'Mary'")
        .unwrap();
    assert_eq!(
        rs.rows[0][0],
        Value::Bool(true),
        "presence flag raised on bind-first path"
    );
    assert_eq!(rs.rows[0][1], Value::from("Fresno"));
}

#[test]
fn stale_asr_refreshed_after_non_asr_mutation() {
    // Review finding: a built ASR went stale when a non-ASR strategy
    // mutated the store; queries through it then returned wrong answers.
    let dtd = Dtd::parse(CUSTOMER_DTD).unwrap();
    let doc = xmlup_xml::parse(CUSTOMER_XML).unwrap().doc;
    let mut repo = XmlRepository::new(
        &dtd,
        "CustDB",
        RepoConfig {
            build_asr: true,
            ..RepoConfig::default()
        },
    )
    .unwrap();
    repo.load(&doc).unwrap();
    let cust = repo.mapping.relation_by_element("Customer").unwrap();
    // Non-ASR delete (per-tuple triggers).
    repo.delete_where(cust, Some("Name = 'Mary'")).unwrap();
    // ASR-accelerated query must not resurrect Mary's paths.
    let (_, roots) = repo
        .query_xml(
            r#"FOR $c IN document("x")/CustDB/Customer[Order/OrderLine/ItemName="tire"]
               RETURN $c"#,
        )
        .unwrap();
    assert_eq!(
        roots.len(),
        1,
        "only John(1) ordered tires after Mary's delete"
    );
    // And a non-ASR copy also refreshes.
    let first = repo.ids_of(cust)[0];
    let root = repo.root_id().unwrap();
    repo.copy_subtree(cust, first, root).unwrap();
    let (_, roots) = repo
        .query_xml(
            r#"FOR $c IN document("x")/CustDB/Customer[Order/OrderLine/ItemName="tire"]
               RETURN $c"#,
        )
        .unwrap();
    assert_eq!(
        roots.len(),
        2,
        "the copy's paths are visible through the ASR"
    );
}
