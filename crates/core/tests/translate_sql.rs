//! Unit tests of the XQuery→SQL translation layer: the statement shapes
//! of paper Section 6 must produce exactly the SQL structures the paper
//! describes.

use xmlup_core::translate::{query_filter_sql, translate_query, translate_update, TranslatedOp};
use xmlup_shred::Mapping;
use xmlup_xml::dtd::Dtd;
use xmlup_xml::samples::CUSTOMER_DTD;
use xmlup_xquery::parse_statement;

fn mapping() -> Mapping {
    Mapping::from_dtd(&Dtd::parse(CUSTOMER_DTD).unwrap(), "CustDB").unwrap()
}

#[test]
fn delete_with_local_predicate() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $d IN document("x")/CustDB, $c IN $d/Customer[Name="John"]
           UPDATE $d { DELETE $c }"#,
    )
    .unwrap();
    let ops = translate_update(&stmt, &m).unwrap();
    match &ops[..] {
        [TranslatedOp::DeleteSubtrees { rel, filter }] => {
            assert_eq!(*rel, m.relation_by_element("Customer").unwrap());
            assert_eq!(filter.as_deref(), Some("Name = 'John'"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn descendant_predicate_chains_semijoins() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $c IN document("x")/CustDB/Customer[Order/OrderLine/ItemName="tire"]
           RETURN $c"#,
    )
    .unwrap();
    let spec = translate_query(&stmt, &m).unwrap();
    let sql = query_filter_sql(&spec, &m, None).unwrap().unwrap();
    // Conventional: nested IN through Order then OrderLine.
    assert!(
        sql.contains("id IN (SELECT parentId FROM Order WHERE id IN (SELECT parentId FROM OrderLine WHERE ItemName = 'tire'))"),
        "unexpected SQL: {sql}"
    );
}

#[test]
fn descendant_predicate_uses_asr_when_present() {
    let m = mapping();
    let mut db = xmlup_rdb::Database::new();
    xmlup_shred::loader::create_schema(&mut db, &m).unwrap();
    let asr = xmlup_shred::AsrIndex::build(&mut db, &m).unwrap();
    let stmt = parse_statement(
        r#"FOR $c IN document("x")/CustDB/Customer[Order/OrderLine/ItemName="tire"]
           RETURN $c"#,
    )
    .unwrap();
    let spec = translate_query(&stmt, &m).unwrap();
    let sql = query_filter_sql(&spec, &m, Some(&asr)).unwrap().unwrap();
    // Two joins via the ASR (paper Section 5.3): probe OrderLine, then ASR.
    assert!(sql.contains("FROM ASR"), "unexpected SQL: {sql}");
    assert!(sql.contains("id_OrderLine IN"), "unexpected SQL: {sql}");
    assert!(
        !sql.contains("SELECT parentId FROM Order WHERE"),
        "unexpected SQL: {sql}"
    );
}

#[test]
fn ancestor_filter_becomes_parent_semijoin() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $c IN document("x")/CustDB/Customer[Name="John"],
               $o IN $c/Order
           UPDATE $c { DELETE $o }"#,
    )
    .unwrap();
    let ops = translate_update(&stmt, &m).unwrap();
    match &ops[..] {
        [TranslatedOp::DeleteSubtrees { rel, filter }] => {
            assert_eq!(*rel, m.relation_by_element("Order").unwrap());
            let sql = filter.as_deref().unwrap();
            assert!(
                sql.contains("parentId IN (SELECT id FROM Customer WHERE Name = 'John')"),
                "unexpected SQL: {sql}"
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn attribute_predicate_maps_to_attr_column() {
    let dtd = Dtd::parse(
        r#"<!ELEMENT db (item*)>
           <!ELEMENT item (#PCDATA)>
           <!ATTLIST item kind CDATA #IMPLIED>"#,
    )
    .unwrap();
    let m = Mapping::from_dtd(&dtd, "db").unwrap();
    let stmt = parse_statement(
        r#"FOR $d IN document("x")/db, $i IN $d/item[@kind="big"]
           UPDATE $d { DELETE $i }"#,
    )
    .unwrap();
    let ops = translate_update(&stmt, &m).unwrap();
    match &ops[..] {
        [TranslatedOp::DeleteSubtrees { filter, .. }] => {
            assert_eq!(filter.as_deref(), Some("kind = 'big'"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn inlined_delete_recognized() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $c IN document("x")/CustDB/Customer, $a IN $c/Address
           UPDATE $c { DELETE $a }"#,
    )
    .unwrap();
    let ops = translate_update(&stmt, &m).unwrap();
    match &ops[..] {
        [TranslatedOp::DeleteInlined { rel, path, .. }] => {
            assert_eq!(*rel, m.relation_by_element("Customer").unwrap());
            assert_eq!(path, &vec!["Address".to_string()]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn copy_insert_recognized() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $s IN document("x")/CustDB/Customer[Address/State="CA"],
               $t IN document("x")/CustDB
           UPDATE $t { INSERT $s }"#,
    )
    .unwrap();
    let ops = translate_update(&stmt, &m).unwrap();
    match &ops[..] {
        [TranslatedOp::CopySubtrees {
            src_rel,
            src_filter,
            dst_rel,
            dst_filter,
        }] => {
            assert_eq!(*src_rel, m.relation_by_element("Customer").unwrap());
            assert_eq!(*dst_rel, m.root());
            assert!(src_filter
                .as_deref()
                .unwrap()
                .contains("Address_State = 'CA'"));
            assert!(dst_filter.is_none());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn or_predicate_stays_local() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $c IN document("x")/CustDB/Customer[Name="John" or Name="Mary"] RETURN $c"#,
    )
    .unwrap();
    let spec = translate_query(&stmt, &m).unwrap();
    let sql = query_filter_sql(&spec, &m, None).unwrap().unwrap();
    assert_eq!(sql, "(Name = 'John' OR Name = 'Mary')");
}

#[test]
fn integer_literal_compares_as_text() {
    let m = mapping();
    let stmt = parse_statement(
        r#"FOR $l IN document("x")/CustDB/Customer/Order/OrderLine[Qty=4] RETURN $l"#,
    )
    .unwrap();
    let spec = translate_query(&stmt, &m).unwrap();
    let sql = query_filter_sql(&spec, &m, None).unwrap().unwrap();
    // All shredded payloads are TEXT columns; int literals render quoted.
    assert_eq!(sql, "Qty = '4'");
}

#[test]
fn existence_predicate_uses_presence_or_null() {
    let m = mapping();
    let stmt =
        parse_statement(r#"FOR $c IN document("x")/CustDB/Customer[Address] RETURN $c"#).unwrap();
    let spec = translate_query(&stmt, &m).unwrap();
    let sql = query_filter_sql(&spec, &m, None).unwrap().unwrap();
    assert_eq!(sql, "Address_present = TRUE");
}

#[test]
fn unsupported_shapes_do_not_produce_sql() {
    let m = mapping();
    for bad in [
        // LET is not translatable.
        r#"FOR $d IN document("x")/CustDB LET $c := $d/Customer UPDATE $d { DELETE $c }"#,
        // ref() has no relational representation in this mapping.
        r#"FOR $c IN document("x")/CustDB/Customer, $r IN $c/ref(peer, "x")
           UPDATE $c { DELETE $r }"#,
        // Copy to a non-parent destination.
        r#"FOR $s IN document("x")/CustDB/Customer/Order,
               $t IN document("x")/CustDB
           UPDATE $t { INSERT $s }"#,
    ] {
        let stmt = parse_statement(bad).unwrap();
        assert!(
            translate_update(&stmt, &m).is_err(),
            "should not translate: {bad}"
        );
    }
}
