//! Synthetic DBLP-shaped bibliography (paper Section 7.1.3).
//!
//! The paper used the conference-publications portion of the real DBLP
//! bibliography (40 MB, >400 000 tuples): upper-most elements are
//! conferences, each with publication subelements containing author and
//! citation subelements. The real dump is not available offline, so this
//! generator produces a document with the same *shape* — in particular the
//! "bushiness" the paper blames for the poor per-statement-trigger
//! numbers: many small publications per conference, several
//! authors/citations per publication, and a `year` value so that
//! "delete the year-2000 publications" touches a small fraction of a
//! large document. The substitution is documented in DESIGN.md /
//! EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlup_xml::dtd::Dtd;
use xmlup_xml::Document;

/// Parameters of the synthetic bibliography.
#[derive(Debug, Clone, Copy)]
pub struct DblpParams {
    /// Number of conference elements.
    pub conferences: usize,
    /// Publications per conference (mean; actual uniform ±50%).
    pub pubs_per_conf: usize,
    /// Maximum authors per publication (uniform `1..=max`).
    pub max_authors: usize,
    /// Maximum citations per publication (uniform `0..=max`).
    pub max_citations: usize,
    /// Publication years drawn uniformly from this inclusive range.
    pub year_range: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpParams {
    fn default() -> Self {
        DblpParams {
            conferences: 50,
            pubs_per_conf: 40,
            max_authors: 4,
            max_citations: 8,
            year_range: (1995, 2001),
            seed: 0xdb1b,
        }
    }
}

/// DTD of the synthetic bibliography. `inproceedings*`, `author*`, and
/// `cite*` are repeatable (own relations); `title`/`year`/`pages` inline.
pub fn dblp_dtd() -> Dtd {
    Dtd::parse(
        r#"<!ELEMENT dblp (conference*)>
           <!ELEMENT conference (name, inproceedings*)>
           <!ELEMENT inproceedings (title, year, pages, author*, cite*)>
           <!ELEMENT name (#PCDATA)>
           <!ELEMENT title (#PCDATA)>
           <!ELEMENT year (#PCDATA)>
           <!ELEMENT pages (#PCDATA)>
           <!ELEMENT author (#PCDATA)>
           <!ELEMENT cite (#PCDATA)>"#,
    )
    .expect("DBLP DTD is well-formed")
}

/// Generate the synthetic bibliography document.
pub fn dblp_document(p: &DblpParams) -> Document {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut doc = Document::new("dblp");
    let root = doc.root();
    for c in 0..p.conferences {
        let conf = doc.new_element("conference");
        doc.append_child(root, conf).expect("fresh attach");
        let name = doc.new_element("name");
        let t = doc.new_text(format!("conf-{c}"));
        doc.append_child(name, t).expect("fresh attach");
        doc.append_child(conf, name).expect("fresh attach");
        let lo = (p.pubs_per_conf / 2).max(1);
        let hi = (p.pubs_per_conf * 3 / 2).max(lo + 1);
        let pubs = rng.gen_range(lo..hi);
        for i in 0..pubs {
            let pb = doc.new_element("inproceedings");
            doc.append_child(conf, pb).expect("fresh attach");
            for (tag, text) in [
                ("title", format!("Paper {c}-{i} on {}", topic(&mut rng))),
                (
                    "year",
                    rng.gen_range(p.year_range.0..=p.year_range.1).to_string(),
                ),
                ("pages", format!("{}-{}", i * 12 + 1, i * 12 + 12)),
            ] {
                let el = doc.new_element(tag);
                let t = doc.new_text(text);
                doc.append_child(el, t).expect("fresh attach");
                doc.append_child(pb, el).expect("fresh attach");
            }
            let n_auth = rng.gen_range(1..=p.max_authors.max(1));
            for a in 0..n_auth {
                let el = doc.new_element("author");
                let t = doc.new_text(format!("Author {}", (a * 131 + c * 17 + i) % 997));
                doc.append_child(el, t).expect("fresh attach");
                doc.append_child(pb, el).expect("fresh attach");
            }
            let n_cite = rng.gen_range(0..=p.max_citations);
            for _ in 0..n_cite {
                let el = doc.new_element("cite");
                let t = doc.new_text(format!(
                    "conf-{}/paper-{}",
                    rng.gen_range(0..p.conferences.max(1)),
                    rng.gen_range(0..p.pubs_per_conf.max(1))
                ));
                doc.append_child(el, t).expect("fresh attach");
                doc.append_child(pb, el).expect("fresh attach");
            }
        }
    }
    doc
}

fn topic(rng: &mut StdRng) -> &'static str {
    const TOPICS: [&str; 8] = [
        "XML updates",
        "query optimization",
        "semistructured data",
        "view maintenance",
        "data integration",
        "access support relations",
        "outer unions",
        "triggers",
    ];
    TOPICS[rng.gen_range(0..TOPICS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_conforms_to_dtd() {
        let p = DblpParams {
            conferences: 5,
            pubs_per_conf: 6,
            ..Default::default()
        };
        let doc = dblp_document(&p);
        dblp_dtd().validate(&doc).unwrap();
    }

    #[test]
    fn shape_is_bushy() {
        let p = DblpParams {
            conferences: 10,
            pubs_per_conf: 10,
            ..Default::default()
        };
        let doc = dblp_document(&p);
        assert_eq!(doc.children(doc.root()).len(), 10);
        let pubs = doc
            .descendants(doc.root())
            .filter(|&n| doc.name(n) == Some("inproceedings"))
            .count();
        assert!(pubs >= 50, "got {pubs} publications");
        let authors = doc
            .descendants(doc.root())
            .filter(|&n| doc.name(n) == Some("author"))
            .count();
        assert!(authors >= pubs, "every publication has at least one author");
    }

    #[test]
    fn mapping_has_four_relations() {
        let m = xmlup_shred::Mapping::from_dtd(&dblp_dtd(), "dblp").unwrap();
        let tables: Vec<&str> = m.relations.iter().map(|r| r.table.as_str()).collect();
        assert_eq!(
            tables,
            vec!["dblp", "conference", "inproceedings", "author", "cite"]
        );
    }

    #[test]
    fn year_2000_fraction_is_small() {
        let doc = dblp_document(&DblpParams::default());
        let pubs: Vec<_> = doc
            .descendants(doc.root())
            .filter(|&n| doc.name(n) == Some("inproceedings"))
            .collect();
        let y2000 = pubs
            .iter()
            .filter(|&&n| {
                doc.children(n)
                    .iter()
                    .any(|&c| doc.name(c) == Some("year") && doc.string_value(c) == "2000")
            })
            .count();
        assert!(y2000 > 0);
        assert!(
            (y2000 as f64) < 0.4 * pubs.len() as f64,
            "year-2000 deletes should touch a minority of the document"
        );
    }

    #[test]
    fn deterministic() {
        let a = dblp_document(&DblpParams::default());
        let b = dblp_document(&DblpParams::default());
        assert!(a.subtree_eq(a.root(), &b, b.root()));
    }
}
