//! Fault-tolerant workload driver.
//!
//! Loads a synthetic document, runs a bulk or random delete/insert
//! workload over it, and — with `--fail-at` / `--fail-table` — injects a
//! deterministic fault mid-workload to demonstrate graceful recovery:
//! the killed operation's transaction rolls back, the operation is
//! retried, and the rest of the workload completes.
//!
//! ```text
//! workload [--op delete|insert] [--workload bulk|random]
//!          [--delete-strategy per-tuple|per-statement|cascading|asr]
//!          [--insert-strategy tuple|table|asr]
//!          [--scale N] [--depth N] [--fanout N] [--seed N]
//!          [--fail-at N]        fail the Nth client SQL statement
//!          [--fail-table T:N]   fail the Nth write to table T
//! ```

use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_workload::driver::{run_delete_recovering, run_insert_recovering, Workload};
use xmlup_workload::synthetic::{fixed_document, synthetic_dtd, SyntheticParams};

struct Args {
    op: String,
    workload: Workload,
    delete_strategy: DeleteStrategy,
    insert_strategy: InsertStrategy,
    scale: usize,
    depth: usize,
    fanout: usize,
    fail_at: Option<u64>,
    fail_table: Option<(String, u64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: workload [--op delete|insert] [--workload bulk|random]\n\
         \x20               [--delete-strategy per-tuple|per-statement|cascading|asr]\n\
         \x20               [--insert-strategy tuple|table|asr]\n\
         \x20               [--scale N] [--depth N] [--fanout N] [--seed N]\n\
         \x20               [--fail-at N] [--fail-table TABLE:N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        op: "delete".into(),
        workload: Workload::random10(),
        delete_strategy: DeleteStrategy::Cascading,
        insert_strategy: InsertStrategy::Tuple,
        scale: 50,
        depth: 3,
        fanout: 2,
        fail_at: None,
        fail_table: None,
    };
    let mut seed = 0xab1e_u64;
    let mut random = true;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--op" => args.op = value(&mut i),
            "--workload" => match value(&mut i).as_str() {
                "bulk" => random = false,
                "random" => random = true,
                _ => usage(),
            },
            "--delete-strategy" => {
                args.delete_strategy = match value(&mut i).as_str() {
                    "per-tuple" => DeleteStrategy::PerTupleTrigger,
                    "per-statement" => DeleteStrategy::PerStatementTrigger,
                    "cascading" => DeleteStrategy::Cascading,
                    "asr" => DeleteStrategy::Asr,
                    _ => usage(),
                }
            }
            "--insert-strategy" => {
                args.insert_strategy = match value(&mut i).as_str() {
                    "tuple" => InsertStrategy::Tuple,
                    "table" => InsertStrategy::Table,
                    "asr" => InsertStrategy::Asr,
                    _ => usage(),
                }
            }
            "--scale" => args.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--depth" => args.depth = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fanout" => args.fanout = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fail-at" => args.fail_at = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--fail-table" => {
                let v = value(&mut i);
                let (t, n) = v.split_once(':').unwrap_or_else(|| usage());
                args.fail_table = Some((t.to_string(), n.parse().unwrap_or_else(|_| usage())));
            }
            _ => usage(),
        }
        i += 1;
    }
    if random {
        args.workload = Workload::Random {
            count: xmlup_workload::RANDOM_OPS,
            seed,
        };
    } else {
        args.workload = Workload::Bulk;
    }
    args
}

fn main() {
    let args = parse_args();
    if args.op != "delete" && args.op != "insert" {
        usage();
    }

    let params = SyntheticParams::new(args.scale, args.depth, args.fanout);
    let dtd = synthetic_dtd(args.depth);
    let doc = fixed_document(&params);
    let needs_asr =
        args.delete_strategy == DeleteStrategy::Asr || args.insert_strategy == InsertStrategy::Asr;
    let mut repo = XmlRepository::new(
        &dtd,
        "root",
        RepoConfig {
            delete_strategy: args.delete_strategy,
            insert_strategy: args.insert_strategy,
            build_asr: needs_asr,
            statement_cost_us: 0,
        },
    )
    .expect("mapping");
    repo.load(&doc).expect("load");
    let rel = repo.mapping.relation_by_element("n1").expect("n1");
    let before = repo.tuple_count();
    println!(
        "loaded synthetic document: scale={} depth={} fanout={} ({} tuples)",
        args.scale, args.depth, args.fanout, before
    );

    if let Some(n) = args.fail_at {
        repo.db.fail_after_statements(n);
        println!("armed fault: fail client statement #{n}");
    }
    if let Some((table, n)) = &args.fail_table {
        repo.db.fail_on_table_write(table, *n);
        println!("armed fault: fail write #{n} to table {table}");
    }

    let report = match args.op.as_str() {
        "delete" => run_delete_recovering(&mut repo, rel, args.workload),
        _ => run_insert_recovering(&mut repo, rel, args.workload),
    }
    .expect("workload failed with a non-injected error");

    let stats = repo.db.stats();
    println!(
        "{} {} workload: {} operations completed, {} injected fault(s) absorbed, {} rows affected",
        args.workload.label(),
        args.op,
        report.completed,
        report.faults_absorbed,
        report.rows_affected
    );
    println!(
        "tuples {} -> {}; txn commits {}, rollbacks {}, undo records {}",
        before,
        repo.tuple_count(),
        stats.txn_commits,
        stats.txn_rollbacks,
        stats.undo_records
    );
    if report.faults_absorbed > 0 {
        println!("recovered: every aborted operation rolled back and was retried successfully");
    }
}
