//! Fault-tolerant workload driver.
//!
//! Loads a synthetic document, runs a bulk or random delete/insert
//! workload over it, and — with `--fail-at` / `--fail-table` — injects a
//! deterministic fault mid-workload to demonstrate graceful recovery:
//! the killed operation's transaction rolls back, the operation is
//! retried, and the rest of the workload completes.
//!
//! With `--db-path` the store is durable (WAL + checkpoint snapshots,
//! see the `xmlup_rdb::wal` module); `--crash-and-recover` additionally
//! simulates a process kill at the first injected fault — the database
//! handle is dropped without a clean close, reopened from disk, and the
//! recovered state verified byte-identical to the pre-crash committed
//! state before the workload resumes.
//!
//! ```text
//! workload [--op delete|insert] [--workload bulk|random]
//!          [--delete-strategy per-tuple|per-statement|cascading|asr]
//!          [--insert-strategy tuple|table|asr]
//!          [--batch-size N]     rows folded per translated SQL statement
//!          [--scale N] [--depth N] [--fanout N] [--seed N]
//!          [--fail-at N]        fail the Nth client SQL statement
//!          [--fail-table T:N]   fail the Nth write to table T
//!          [--db-path DIR]      durable store rooted at DIR
//!          [--backend memory|paged]  storage backend for the durable store
//!          [--pool-frames N]    paged-backend buffer pool budget (pages)
//!          [--checkpoint-every N]  CHECKPOINT after every N operations
//!          [--crash-and-recover]   kill + reopen + verify at the fault
//!          [--metrics-out FILE]    dump the final metric registry as JSON
//!          [--track-statements]    per-statement stats; print the top 10
//! ```

use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig, XmlRepository};
use xmlup_rdb::{BackendKind, Table, Value};
use xmlup_shred::Mapping;
use xmlup_workload::driver::{
    pick_targets, run_delete_recovering, run_insert_recovering, RecoveryReport, Workload,
};
use xmlup_workload::synthetic::{fixed_document, synthetic_dtd, SyntheticParams};

struct Args {
    op: String,
    workload: Workload,
    delete_strategy: DeleteStrategy,
    insert_strategy: InsertStrategy,
    batch_size: usize,
    scale: usize,
    depth: usize,
    fanout: usize,
    fail_at: Option<u64>,
    fail_table: Option<(String, u64)>,
    db_path: Option<String>,
    backend: BackendKind,
    pool_frames: usize,
    checkpoint_every: Option<usize>,
    crash_and_recover: bool,
    metrics_out: Option<String>,
    track_statements: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: workload [--op delete|insert] [--workload bulk|random]\n\
         \x20               [--delete-strategy per-tuple|per-statement|cascading|asr]\n\
         \x20               [--insert-strategy tuple|table|asr]\n\
         \x20               [--batch-size N]\n\
         \x20               [--scale N] [--depth N] [--fanout N] [--seed N]\n\
         \x20               [--fail-at N] [--fail-table TABLE:N]\n\
         \x20               [--db-path DIR] [--backend memory|paged] [--pool-frames N]\n\
         \x20               [--checkpoint-every N] [--crash-and-recover]\n\
         \x20               [--metrics-out FILE] [--track-statements]"
    );
    std::process::exit(2);
}

/// Reject a flag combination, naming the offending flag.
fn flag_error(msg: &str) -> ! {
    eprintln!("workload: {msg}");
    usage();
}

fn parse_args() -> Args {
    let mut args = Args {
        op: "delete".into(),
        workload: Workload::random10(),
        delete_strategy: DeleteStrategy::Cascading,
        insert_strategy: InsertStrategy::Tuple,
        batch_size: 256,
        scale: 50,
        depth: 3,
        fanout: 2,
        fail_at: None,
        fail_table: None,
        db_path: None,
        backend: BackendKind::Memory,
        pool_frames: 1024,
        checkpoint_every: None,
        crash_and_recover: false,
        metrics_out: None,
        track_statements: false,
    };
    let mut seed = 0xab1e_u64;
    let mut random = true;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--op" => args.op = value(&mut i),
            "--workload" => match value(&mut i).as_str() {
                "bulk" => random = false,
                "random" => random = true,
                _ => usage(),
            },
            "--delete-strategy" => {
                args.delete_strategy = match value(&mut i).as_str() {
                    "per-tuple" => DeleteStrategy::PerTupleTrigger,
                    "per-statement" => DeleteStrategy::PerStatementTrigger,
                    "cascading" => DeleteStrategy::Cascading,
                    "asr" => DeleteStrategy::Asr,
                    _ => usage(),
                }
            }
            "--insert-strategy" => {
                args.insert_strategy = match value(&mut i).as_str() {
                    "tuple" => InsertStrategy::Tuple,
                    "table" => InsertStrategy::Table,
                    "asr" => InsertStrategy::Asr,
                    _ => usage(),
                }
            }
            "--batch-size" => args.batch_size = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--depth" => args.depth = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fanout" => args.fanout = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fail-at" => args.fail_at = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--fail-table" => {
                let v = value(&mut i);
                let (t, n) = v.split_once(':').unwrap_or_else(|| usage());
                args.fail_table = Some((t.to_string(), n.parse().unwrap_or_else(|_| usage())));
            }
            "--db-path" => args.db_path = Some(value(&mut i)),
            "--backend" => {
                args.backend = BackendKind::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--pool-frames" => args.pool_frames = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--crash-and-recover" => args.crash_and_recover = true,
            "--metrics-out" => args.metrics_out = Some(value(&mut i)),
            "--track-statements" => args.track_statements = true,
            _ => usage(),
        }
        i += 1;
    }
    if random {
        args.workload = Workload::Random {
            count: xmlup_workload::RANDOM_OPS,
            seed,
        };
    } else {
        args.workload = Workload::Bulk;
    }
    // Contradictory flag combinations are rejected up front, naming the
    // offending flag, rather than failing obscurely mid-run.
    if args.fail_at.is_some() && args.fail_table.is_some() {
        flag_error("--fail-at conflicts with --fail-table: arm one fault at a time");
    }
    if args.crash_and_recover && args.db_path.is_none() {
        flag_error("--crash-and-recover requires --db-path: crash recovery needs a durable store");
    }
    if args.checkpoint_every.is_some() && args.db_path.is_none() {
        flag_error("--checkpoint-every requires --db-path: CHECKPOINT needs a durable store");
    }
    if args.checkpoint_every == Some(0) {
        flag_error("--checkpoint-every expects N >= 1");
    }
    if args.backend != BackendKind::Memory && args.db_path.is_none() {
        flag_error("--backend paged requires --db-path: the page store lives on disk");
    }
    if args.pool_frames == 0 {
        flag_error("--pool-frames expects N >= 1");
    }
    if args.batch_size == 0 {
        flag_error("--batch-size expects N >= 1");
    }
    args
}

fn config_of(args: &Args) -> RepoConfig {
    let needs_asr =
        args.delete_strategy == DeleteStrategy::Asr || args.insert_strategy == InsertStrategy::Asr;
    RepoConfig {
        delete_strategy: args.delete_strategy,
        insert_strategy: args.insert_strategy,
        build_asr: needs_asr,
        statement_cost_us: 0,
        batch_size: args.batch_size,
        backend: args.backend,
        pool_frames: args.pool_frames,
    }
}

fn arm_faults(repo: &mut XmlRepository, args: &Args) {
    if let Some(n) = args.fail_at {
        repo.db.fail_after_statements(n);
        println!("armed fault: fail client statement #{n}");
    }
    if let Some((table, n)) = &args.fail_table {
        repo.db.fail_on_table_write(table, *n);
        println!("armed fault: fail write #{n} to table {table}");
    }
}

fn main() {
    let args = parse_args();
    if args.op != "delete" && args.op != "insert" {
        usage();
    }
    match &args.db_path {
        Some(path) => run_durable(&args, path),
        None => run_in_memory(&args),
    }
}

/// The original in-memory path: load, arm, run, report.
fn run_in_memory(args: &Args) {
    let params = SyntheticParams::new(args.scale, args.depth, args.fanout);
    let dtd = synthetic_dtd(args.depth);
    let doc = fixed_document(&params);
    let mut repo = XmlRepository::new(&dtd, "root", config_of(args)).expect("mapping");
    repo.db.set_statement_tracking(args.track_statements);
    repo.load(&doc).expect("load");
    let rel = repo.mapping.relation_by_element("n1").expect("n1");
    let before = repo.tuple_count();
    println!(
        "loaded synthetic document: scale={} depth={} fanout={} ({} tuples)",
        args.scale, args.depth, args.fanout, before
    );
    arm_faults(&mut repo, args);

    let stmts_before = repo.db.stats().client_statements;
    let report = match args.op.as_str() {
        "delete" => run_delete_recovering(&mut repo, rel, args.workload),
        _ => run_insert_recovering(&mut repo, rel, args.workload),
    }
    .expect("workload failed with a non-injected error");
    let statements_issued = repo.db.stats().client_statements - stmts_before;
    print_report(&repo, args, before, &report, 0, 0, statements_issued);
    print_statements(&repo, args);
    write_metrics(&repo, args, statements_issued, report.rows_affected);
}

/// One logical workload operation, replayable after a crash.
enum PlannedOp {
    DeleteAll,
    DeleteIds(Vec<i64>),
    CopyUnderParent(i64),
}

fn exec_op(repo: &mut XmlRepository, rel: usize, op: &PlannedOp) -> xmlup_core::Result<usize> {
    match op {
        PlannedOp::DeleteAll => repo.delete_where(rel, None),
        PlannedOp::DeleteIds(ids) => repo.delete_by_ids(rel, ids),
        PlannedOp::CopyUnderParent(id) => {
            let table = repo.mapping.relations[rel].table.clone();
            let parent = repo
                .db
                .query(&format!("SELECT parentId FROM {table} WHERE id = {id}"))?
                .scalar()
                .and_then(Value::as_int)
                .unwrap_or(0);
            repo.copy_subtree(rel, *id, parent)
        }
    }
}

/// Full physical dump of the store: every table plus the id counter.
/// `Table`'s `PartialEq` is physical equality, so equal dumps mean a
/// byte-identical recovered state.
fn dump(repo: &XmlRepository) -> (Vec<(String, Table)>, i64) {
    (
        repo.db
            .table_names()
            .into_iter()
            .map(|n| (n.clone(), repo.db.table(&n).unwrap().clone()))
            .collect(),
        repo.db.peek_next_id(),
    )
}

fn open_repo(args: &Args, path: &str) -> XmlRepository {
    let dtd = synthetic_dtd(args.depth);
    let mapping = Mapping::from_dtd(&dtd, "root").expect("mapping");
    XmlRepository::open_durable(path, mapping, config_of(args)).expect("open durable store")
}

/// Durable path: open (or recover) the store, then drive the operations
/// one by one so checkpoints and the simulated crash can interleave.
fn run_durable(args: &Args, path: &str) {
    let params = SyntheticParams::new(args.scale, args.depth, args.fanout);
    let mut repo = open_repo(args, path);
    repo.db.set_statement_tracking(args.track_statements);
    if repo.tuple_count() == 0 {
        let doc = fixed_document(&params);
        repo.load(&doc).expect("load");
        println!(
            "loaded synthetic document into durable store at {path}: scale={} depth={} fanout={}",
            args.scale, args.depth, args.fanout
        );
    } else {
        println!(
            "recovered durable store at {path}: {} tuples, {} committed txns replayed",
            repo.tuple_count(),
            repo.db.stats().recovered_txns
        );
    }
    let rel = repo.mapping.relation_by_element("n1").expect("n1");
    let before = repo.tuple_count();

    let mut args_armed = args;
    let defaulted;
    if args.crash_and_recover && args.fail_at.is_none() && args.fail_table.is_none() {
        // A crash needs a trigger: default to killing an early statement.
        defaulted = Args {
            fail_at: Some(12),
            ..clone_args(args)
        };
        args_armed = &defaulted;
    }
    arm_faults(&mut repo, args_armed);

    let ops: Vec<PlannedOp> = match (args.op.as_str(), args.workload) {
        ("delete", Workload::Bulk) => vec![PlannedOp::DeleteAll],
        // Each batch of subtree roots is one replayable (and atomic)
        // operation, so checkpoints and the simulated crash interleave at
        // batch granularity.
        ("delete", _) => pick_targets(&repo, rel, args.workload)
            .chunks(args.batch_size.max(1))
            .map(|c| PlannedOp::DeleteIds(c.to_vec()))
            .collect(),
        (_, w) => pick_targets(&repo, rel, w)
            .into_iter()
            .map(PlannedOp::CopyUnderParent)
            .collect(),
    };

    let mut report = RecoveryReport::default();
    let mut checkpoints = 0usize;
    let mut crashes = 0usize;
    // Statement counting survives the simulated crash: the counter base
    // resets when the store reopens (a fresh handle starts at zero).
    let mut statements_issued = 0u64;
    let mut stmt_base = repo.db.stats().client_statements;
    let mut i = 0;
    while i < ops.len() {
        let r = exec_op(&mut repo, rel, &ops[i]);
        let now = repo.db.stats().client_statements;
        statements_issued += now - stmt_base;
        stmt_base = now;
        match r {
            Ok(n) => {
                report.completed += 1;
                report.rows_affected += n;
                i += 1;
                if let Some(every) = args.checkpoint_every {
                    if report.completed % every == 0 {
                        let s = repo.db.stats();
                        let (pages0, bytes0) =
                            (s.checkpoint_pages_written, s.checkpoint_bytes_written);
                        repo.db.execute("CHECKPOINT").expect("checkpoint");
                        checkpoints += 1;
                        let s = repo.db.stats();
                        println!(
                            "checkpoint #{checkpoints}: {} pages / {} bytes written",
                            s.checkpoint_pages_written - pages0,
                            s.checkpoint_bytes_written - bytes0
                        );
                    }
                }
            }
            Err(e) if e.is_injected_fault() => {
                report.faults_absorbed += 1;
                if args.crash_and_recover && crashes == 0 {
                    crashes += 1;
                    // The fault's transaction has rolled back, so the
                    // in-memory state is the committed state. Kill the
                    // process (drop without close) and recover.
                    let expected = dump(&repo);
                    drop(repo);
                    repo = open_repo(args, path);
                    // The statement store dies with the old handle;
                    // re-arm tracking on the recovered one.
                    repo.db.set_statement_tracking(args.track_statements);
                    stmt_base = repo.db.stats().client_statements;
                    let recovered = dump(&repo);
                    if recovered != expected {
                        eprintln!(
                            "workload: CRASH RECOVERY MISMATCH at operation {i}: \
                             recovered state differs from pre-crash committed state"
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "crash simulated at operation {}: reopened from {path}, {} committed \
                         txns replayed, state verified byte-identical",
                        i,
                        repo.db.stats().recovered_txns
                    );
                }
                // Retry the killed operation.
            }
            Err(e) => panic!("workload failed with a non-injected error: {e}"),
        }
    }
    print_report(
        &repo,
        args,
        before,
        &report,
        checkpoints,
        crashes,
        statements_issued,
    );
    print_statements(&repo, args);
    write_metrics(&repo, args, statements_issued, report.rows_affected);
    repo.close_durable().expect("close durable store");
}

/// With `--track-statements`, print the top statement fingerprints by
/// total execution time — the same data `rdb_statements` serves.
fn print_statements(repo: &XmlRepository, args: &Args) {
    if !args.track_statements {
        return;
    }
    let stats = repo.db.statement_statistics();
    println!("top statements by total time ({} tracked):", stats.len());
    for s in stats.iter().take(10) {
        let mut sql: String = s.sql.chars().take(60).collect();
        if sql.len() < s.sql.len() {
            sql.push('…');
        }
        println!(
            "  {:016x}  calls {:>6}  rows {:>8}  mean {:>7}us  p95 {:>7}us  {sql}",
            s.fingerprint,
            s.calls,
            s.rows,
            s.mean_ns / 1_000,
            s.p95_ns / 1_000,
        );
    }
}

/// Manual clone: `Args` holds only plain data but derives nothing.
fn clone_args(a: &Args) -> Args {
    Args {
        op: a.op.clone(),
        workload: a.workload,
        delete_strategy: a.delete_strategy,
        insert_strategy: a.insert_strategy,
        batch_size: a.batch_size,
        scale: a.scale,
        depth: a.depth,
        fanout: a.fanout,
        fail_at: a.fail_at,
        fail_table: a.fail_table.clone(),
        db_path: a.db_path.clone(),
        backend: a.backend,
        pool_frames: a.pool_frames,
        checkpoint_every: a.checkpoint_every,
        crash_and_recover: a.crash_and_recover,
        metrics_out: a.metrics_out.clone(),
        track_statements: a.track_statements,
    }
}

/// Dump the final metric registry as a JSON array, one object per
/// sample: `{"name":…,"kind":…,"labels":{…},"value":…}`, followed by the
/// workload-level batching samples (`workload_statements_issued`,
/// `workload_rows_per_statement`).
fn write_metrics(repo: &XmlRepository, args: &Args, statements_issued: u64, rows_affected: usize) {
    let Some(path) = &args.metrics_out else {
        return;
    };
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("[\n");
    let metrics = repo.db.metrics();
    for m in metrics.iter() {
        let labels = m
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"kind\":\"{:?}\",\"labels\":{{{labels}}},\"value\":{}}},\n",
            m.name, m.kind, m.value,
        ));
    }
    let rows_per_statement = if statements_issued == 0 {
        0.0
    } else {
        rows_affected as f64 / statements_issued as f64
    };
    out.push_str(&format!(
        "  {{\"name\":\"workload_statements_issued\",\"kind\":\"Counter\",\"labels\":{{\"batch_size\":\"{}\"}},\"value\":{statements_issued}}},\n",
        args.batch_size
    ));
    out.push_str(&format!(
        "  {{\"name\":\"workload_rows_per_statement\",\"kind\":\"Gauge\",\"labels\":{{\"batch_size\":\"{}\"}},\"value\":{rows_per_statement}}}\n",
        args.batch_size
    ));
    out.push_str("]\n");
    std::fs::write(path, out).expect("write --metrics-out file");
    println!("wrote {} metric(s) to {path}", metrics.len() + 2);
}

#[allow(clippy::too_many_arguments)]
fn print_report(
    repo: &XmlRepository,
    args: &Args,
    before: usize,
    report: &RecoveryReport,
    checkpoints: usize,
    crashes: usize,
    statements_issued: u64,
) {
    let stats = repo.db.stats();
    println!(
        "{} {} workload: {} operations completed, {} injected fault(s) absorbed, {} rows affected",
        args.workload.label(),
        args.op,
        report.completed,
        report.faults_absorbed,
        report.rows_affected
    );
    let rows_per_statement = if statements_issued == 0 {
        0.0
    } else {
        report.rows_affected as f64 / statements_issued as f64
    };
    println!(
        "batching: batch_size {}, {} SQL statement(s) issued, {:.2} rows/statement",
        args.batch_size, statements_issued, rows_per_statement
    );
    println!(
        "tuples {} -> {}; txn commits {}, rollbacks {}, undo records {}",
        before,
        repo.tuple_count(),
        stats.txn_commits,
        stats.txn_rollbacks,
        stats.undo_records
    );
    if repo.db.is_durable() {
        println!(
            "durable: {} WAL records ({} bytes, {} fsyncs), {} checkpoint(s), {} simulated crash(es)",
            stats.wal_records, stats.wal_bytes, stats.wal_fsyncs, checkpoints, crashes
        );
    }
    if report.faults_absorbed > 0 {
        println!("recovered: every aborted operation rolled back and was retried successfully");
    }
}
