//! Synthetic test documents (paper Sections 7.1.1 and 7.1.2).
//!
//! A document is parameterised by:
//!
//! * **scaling factor** — number of subtrees at the root level (document
//!   length);
//! * **depth** — levels per subtree (complexity);
//! * **fanout** — children per internal node (complexity).
//!
//! Every element carries two data subelements: a 50-character string and
//! an integer, exactly as in the paper. The *fixed* generator uses the
//! parameters literally; the *randomized* generator draws each subtree's
//! depth from `[2, depth]` and each node's fanout from `[1, fanout]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlup_xml::dtd::Dtd;
use xmlup_xml::{Document, NodeId};

/// Parameters of a synthetic document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticParams {
    /// Subtrees at the root level.
    pub scaling_factor: usize,
    /// Levels per subtree (≥ 1). For the randomized generator this is the
    /// maximum depth.
    pub depth: usize,
    /// Children per internal node (≥ 1). For the randomized generator
    /// this is the maximum fanout.
    pub fanout: usize,
    /// RNG seed (content and, for randomized shapes, structure).
    pub seed: u64,
}

impl SyntheticParams {
    /// Convenience constructor with a fixed default seed.
    pub fn new(scaling_factor: usize, depth: usize, fanout: usize) -> Self {
        SyntheticParams {
            scaling_factor,
            depth,
            fanout,
            seed: 0x5eed,
        }
    }

    /// Elements per subtree for the fixed shape:
    /// `1 + f + f² + … + f^(d−1)`.
    pub fn nodes_per_subtree(&self) -> usize {
        let mut total = 0usize;
        let mut level = 1usize;
        for _ in 0..self.depth {
            total += level;
            level *= self.fanout.max(1);
        }
        total
    }

    /// Total structural elements of the fixed document (excluding the
    /// root and the data subelements).
    pub fn total_nodes(&self) -> usize {
        self.scaling_factor * self.nodes_per_subtree()
    }
}

/// The DTD shared by all synthetic documents of a given depth: level
/// elements `n1 … nd`, each with a string and an integer child.
///
/// Levels are declared `n{i} (str, num, n{i+1}*)` so the inlining mapping
/// gives every level its own relation with `str`/`num` columns inlined.
pub fn synthetic_dtd(depth: usize) -> Dtd {
    let mut src = String::from("<!ELEMENT root (n1*)>\n");
    for lvl in 1..=depth {
        if lvl < depth {
            src.push_str(&format!("<!ELEMENT n{lvl} (str, num, n{}*)>\n", lvl + 1));
        } else {
            src.push_str(&format!("<!ELEMENT n{lvl} (str, num)>\n"));
        }
    }
    src.push_str("<!ELEMENT str (#PCDATA)>\n<!ELEMENT num (#PCDATA)>\n");
    Dtd::parse(&src).expect("generated DTD is well-formed")
}

/// Generate a fixed-structure synthetic document (Section 7.1.1).
pub fn fixed_document(p: &SyntheticParams) -> Document {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut doc = Document::new("root");
    let root = doc.root();
    for _ in 0..p.scaling_factor {
        grow_fixed(&mut doc, root, 1, p.depth, p.fanout, &mut rng);
    }
    doc
}

fn grow_fixed(
    doc: &mut Document,
    parent: NodeId,
    level: usize,
    depth: usize,
    fanout: usize,
    rng: &mut StdRng,
) {
    let el = make_element(doc, parent, level, rng);
    if level < depth {
        for _ in 0..fanout {
            grow_fixed(doc, el, level + 1, depth, fanout, rng);
        }
    }
}

/// Generate a randomized-structure synthetic document (Section 7.1.2):
/// subtree depth uniform in `[2, depth]`, per-node fanout uniform in
/// `[1, fanout]`.
pub fn randomized_document(p: &SyntheticParams) -> Document {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut doc = Document::new("root");
    let root = doc.root();
    let min_depth = 2.min(p.depth);
    for _ in 0..p.scaling_factor {
        let d = rng.gen_range(min_depth..=p.depth.max(min_depth));
        grow_random(&mut doc, root, 1, d, p.fanout, &mut rng);
    }
    doc
}

fn grow_random(
    doc: &mut Document,
    parent: NodeId,
    level: usize,
    depth: usize,
    max_fanout: usize,
    rng: &mut StdRng,
) {
    let el = make_element(doc, parent, level, rng);
    if level < depth {
        let f = rng.gen_range(1..=max_fanout.max(1));
        for _ in 0..f {
            grow_random(doc, el, level + 1, depth, max_fanout, rng);
        }
    }
}

/// One `n{level}` element with its `str` (50 chars) and `num` children.
fn make_element(doc: &mut Document, parent: NodeId, level: usize, rng: &mut StdRng) -> NodeId {
    let el = doc.new_element(format!("n{level}"));
    doc.append_child(parent, el).expect("fresh attach");
    let s = doc.new_element("str");
    let text = doc.new_text(random_string(rng, 50));
    doc.append_child(s, text).expect("fresh attach");
    doc.append_child(el, s).expect("fresh attach");
    let n = doc.new_element("num");
    let value: i64 = rng.gen_range(0..1_000_000);
    let text = doc.new_text(value.to_string());
    doc.append_child(n, text).expect("fresh attach");
    doc.append_child(el, n).expect("fresh attach");
    el
}

/// Seeded alphanumeric string of the given length.
pub fn random_string(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_document_has_expected_shape() {
        let p = SyntheticParams::new(10, 3, 2);
        let doc = fixed_document(&p);
        // Root children = scaling factor.
        assert_eq!(doc.children(doc.root()).len(), 10);
        // Elements per subtree: 1 + 2 + 4 = 7.
        assert_eq!(p.nodes_per_subtree(), 7);
        let n_elems = doc
            .descendants(doc.root())
            .filter(|&n| doc.name(n).map(|s| s.starts_with('n')).unwrap_or(false))
            .filter(|&n| doc.name(n) != Some("num"))
            .count();
        assert_eq!(n_elems, 70);
        // Every element has str + num data children.
        let first = doc.children(doc.root())[0];
        let kids: Vec<_> = doc
            .children(first)
            .iter()
            .map(|&c| doc.name(c).unwrap())
            .collect();
        assert_eq!(&kids[..2], &["str", "num"]);
        assert_eq!(doc.string_value(doc.children(first)[0]).len(), 50);
    }

    #[test]
    fn paper_table1_sizes() {
        // fixed fanout experiment: f=1, d=8, sf=800 → 6400 tuples.
        assert_eq!(SyntheticParams::new(800, 8, 1).total_nodes(), 6400);
        // fixed depth experiment: d=2, f=8, sf=800 → 7200 tuples.
        assert_eq!(SyntheticParams::new(800, 2, 8).total_nodes(), 7200);
        // fixed sf experiment: sf=100, d=4, f=8 → 58500 tuples.
        assert_eq!(SyntheticParams::new(100, 4, 8).total_nodes(), 58500);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SyntheticParams::new(5, 3, 2);
        let a = fixed_document(&p);
        let b = fixed_document(&p);
        assert!(a.subtree_eq(a.root(), &b, b.root()));
        let ra = randomized_document(&p);
        let rb = randomized_document(&p);
        assert!(ra.subtree_eq(ra.root(), &rb, rb.root()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = fixed_document(&SyntheticParams {
            seed: 1,
            ..SyntheticParams::new(3, 2, 2)
        });
        let b = fixed_document(&SyntheticParams {
            seed: 2,
            ..SyntheticParams::new(3, 2, 2)
        });
        assert!(!a.subtree_eq(a.root(), &b, b.root()));
    }

    #[test]
    fn randomized_respects_bounds() {
        let p = SyntheticParams::new(50, 5, 3);
        let doc = randomized_document(&p);
        assert_eq!(doc.children(doc.root()).len(), 50);
        // No element deeper than depth levels (element depth in the tree:
        // root=0, n1=1, …, n5=5; data children one deeper).
        for n in doc.descendants(doc.root()) {
            if let Some(name) = doc.name(n) {
                if let Some(lvl) = name.strip_prefix('n').and_then(|s| s.parse::<usize>().ok()) {
                    assert!(lvl <= 5, "level {lvl} exceeds max depth");
                }
            }
        }
    }

    #[test]
    fn dtd_validates_generated_documents() {
        let p = SyntheticParams::new(4, 3, 2);
        let dtd = synthetic_dtd(3);
        dtd.validate(&fixed_document(&p)).unwrap();
        dtd.validate(&randomized_document(&p)).unwrap();
    }

    #[test]
    fn dtd_maps_one_relation_per_level() {
        let dtd = synthetic_dtd(4);
        let m = xmlup_shred::Mapping::from_dtd(&dtd, "root").unwrap();
        // root + n1..n4.
        assert_eq!(m.relations.len(), 5);
        assert_eq!(m.depth(), 5);
        let n1 = m.relation_by_element("n1").unwrap();
        let cols: Vec<&str> = m.relations[n1]
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(cols, vec!["str", "num"]);
    }
}
