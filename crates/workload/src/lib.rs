//! # xmlup-workload
//!
//! Workload and data generators for the experiments of *Updating XML*
//! (SIGMOD 2001), Section 7:
//!
//! * [`synthetic`] — fixed and randomized synthetic documents
//!   parameterised by scaling factor, depth, and fanout (Sections 7.1.1,
//!   7.1.2), with matching DTDs.
//! * [`dblp`] — a synthetic DBLP-shaped bibliography standing in for the
//!   real 40 MB dump (Section 7.1.3; substitution documented in
//!   DESIGN.md).
//! * [`customer`] — a scalable instance of the Figure 4 customer schema.
//! * [`driver`] — bulk and 10-operation random workloads over a loaded
//!   repository.

pub mod customer;
pub mod dblp;
pub mod driver;
pub mod synthetic;

pub use driver::{
    pick_targets, run_delete, run_delete_recovering, run_insert, run_insert_recovering,
    RecoveryReport, Workload, RANDOM_OPS,
};
pub use synthetic::{fixed_document, randomized_document, synthetic_dtd, SyntheticParams};
