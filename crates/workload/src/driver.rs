//! Workload drivers (paper Section 7.1): *bulk* applies an operation to
//! every subtree at the target level; *random* applies it to a fixed
//! number of randomly chosen subtrees (the paper uses 10).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xmlup_core::{Result, XmlRepository};

/// Number of operations in the paper's random workloads.
pub const RANDOM_OPS: usize = 10;

/// Which tuples an operation touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every subtree of the target relation.
    Bulk,
    /// `count` randomly chosen subtrees (seeded).
    Random {
        /// Subtrees touched.
        count: usize,
        /// RNG seed for the choice.
        seed: u64,
    },
}

impl Workload {
    /// The paper's 10-operation random workload.
    pub fn random10() -> Self {
        Workload::Random {
            count: RANDOM_OPS,
            seed: 0xab1e,
        }
    }

    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Bulk => "bulk",
            Workload::Random { .. } => "random",
        }
    }
}

/// Pick the workload's target ids from relation `rel`.
pub fn pick_targets(repo: &XmlRepository, rel: usize, workload: Workload) -> Vec<i64> {
    let ids = repo.ids_of(rel);
    match workload {
        Workload::Bulk => ids,
        Workload::Random { count, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut picked: Vec<i64> = ids
                .choose_multiple(&mut rng, count.min(ids.len()))
                .copied()
                .collect();
            picked.sort_unstable();
            picked
        }
    }
}

/// Run a delete workload over relation `rel`. Bulk issues one unfiltered
/// delete (a single SQL statement under the trigger strategies, as the
/// paper notes); random folds the chosen subtree roots into batched
/// `id IN (...)` deletes via [`XmlRepository::delete_by_ids`] — with
/// `batch_size: 1` this degenerates to the paper's one-delete-per-subtree
/// translation. Returns the number of root tuples deleted.
pub fn run_delete(repo: &mut XmlRepository, rel: usize, workload: Workload) -> Result<usize> {
    match workload {
        Workload::Bulk => repo.delete_where(rel, None),
        Workload::Random { .. } => {
            let targets = pick_targets(repo, rel, workload);
            repo.delete_by_ids(rel, &targets)
        }
    }
}

/// Run an insert workload: replicate subtrees of `rel` under their own
/// parents (the paper's self-copy query). Returns tuples created.
pub fn run_insert(repo: &mut XmlRepository, rel: usize, workload: Workload) -> Result<usize> {
    let targets = pick_targets(repo, rel, workload);
    let parent_rel = repo.mapping.relations[rel]
        .parent
        .expect("insert workload needs a non-root relation");
    // Map each source to its parent tuple.
    let table = repo.mapping.relations[rel].table.clone();
    let mut created = 0;
    // Parameterized lookup: one parse for the whole target loop.
    let lookup = repo
        .db
        .prepare(&format!("SELECT parentId FROM {table} WHERE id = ?"))?;
    for id in targets {
        let parent_id = repo
            .db
            .query_prepared(&lookup, &[xmlup_rdb::Value::Int(id)])?
            .scalar()
            .and_then(xmlup_rdb::Value::as_int)
            .unwrap_or(0);
        created += repo.copy_subtree(rel, id, parent_id)?;
        let _ = parent_rel;
    }
    Ok(created)
}

/// Outcome of a fault-tolerant workload run
/// ([`run_delete_recovering`] / [`run_insert_recovering`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Logical operations that completed (after any retries).
    pub completed: usize,
    /// Injected faults absorbed: each one aborted a single operation,
    /// whose transaction rolled back, and the operation was retried.
    pub faults_absorbed: usize,
    /// Root tuples deleted or tuples created by the completed operations.
    pub rows_affected: usize,
}

/// Run `op`, retrying whenever it fails with an *injected* fault. The
/// repository executes each translated operation as one transaction, so a
/// fault leaves the store exactly as before the attempt — retrying is
/// safe. Injected faults are one-shot (they disarm on firing), so the
/// loop terminates. Real errors propagate. Returns `(rows, faults)`.
fn retry_on_fault(
    repo: &mut XmlRepository,
    mut op: impl FnMut(&mut XmlRepository) -> Result<usize>,
) -> Result<(usize, usize)> {
    let mut faults = 0;
    loop {
        match op(repo) {
            Ok(n) => return Ok((n, faults)),
            Err(e) if e.is_injected_fault() => faults += 1,
            Err(e) => return Err(e),
        }
    }
}

/// [`run_delete`], but surviving injected faults: an operation killed
/// mid-cascade rolls back and is retried, and the rest of the workload
/// still runs.
pub fn run_delete_recovering(
    repo: &mut XmlRepository,
    rel: usize,
    workload: Workload,
) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    match workload {
        Workload::Bulk => {
            let (n, f) = retry_on_fault(repo, |r| r.delete_where(rel, None))?;
            report.completed = 1;
            report.faults_absorbed = f;
            report.rows_affected = n;
        }
        Workload::Random { .. } => {
            // One retryable operation per batch of subtree roots: a fault
            // mid-batch rolls the whole batch back, so the retry re-issues
            // exactly the rows the failed statement covered.
            let targets = pick_targets(repo, rel, workload);
            let batch = repo.config().batch_size.max(1);
            for chunk in targets.chunks(batch) {
                let (n, f) = retry_on_fault(repo, |r| r.delete_by_ids(rel, chunk))?;
                report.completed += 1;
                report.faults_absorbed += f;
                report.rows_affected += n;
            }
        }
    }
    Ok(report)
}

/// [`run_insert`], but surviving injected faults: a self-copy killed
/// mid-shred rolls back (including any temp tables) and is retried.
pub fn run_insert_recovering(
    repo: &mut XmlRepository,
    rel: usize,
    workload: Workload,
) -> Result<RecoveryReport> {
    let targets = pick_targets(repo, rel, workload);
    let table = repo.mapping.relations[rel].table.clone();
    let lookup = repo
        .db
        .prepare(&format!("SELECT parentId FROM {table} WHERE id = ?"))?;
    let mut report = RecoveryReport::default();
    for id in targets {
        let parent_id = repo
            .db
            .query_prepared(&lookup, &[xmlup_rdb::Value::Int(id)])?
            .scalar()
            .and_then(xmlup_rdb::Value::as_int)
            .unwrap_or(0);
        let (n, f) = retry_on_fault(repo, |r| r.copy_subtree(rel, id, parent_id))?;
        report.completed += 1;
        report.faults_absorbed += f;
        report.rows_affected += n;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{fixed_document, synthetic_dtd, SyntheticParams};
    use xmlup_core::{DeleteStrategy, InsertStrategy, RepoConfig};

    fn repo(ds: DeleteStrategy, is: InsertStrategy) -> (XmlRepository, usize) {
        let p = SyntheticParams::new(20, 3, 2);
        let dtd = synthetic_dtd(3);
        let doc = fixed_document(&p);
        let mut repo = XmlRepository::new(
            &dtd,
            "root",
            RepoConfig {
                delete_strategy: ds,
                insert_strategy: is,
                build_asr: ds == DeleteStrategy::Asr || is == InsertStrategy::Asr,
                statement_cost_us: 0,
                ..RepoConfig::default()
            },
        )
        .unwrap();
        repo.load(&doc).unwrap();
        let n1 = repo.mapping.relation_by_element("n1").unwrap();
        (repo, n1)
    }

    #[test]
    fn bulk_delete_leaves_only_root() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
        let n = run_delete(&mut r, n1, Workload::Bulk).unwrap();
        assert_eq!(n, 20);
        assert_eq!(r.tuple_count(), 1);
    }

    #[test]
    fn random_delete_removes_ten_subtrees() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
        let before = r.tuple_count();
        let n = run_delete(&mut r, n1, Workload::random10()).unwrap();
        assert_eq!(n, 10);
        // Each subtree: 1 + 2 + 4 = 7 tuples.
        assert_eq!(before - r.tuple_count(), 70);
    }

    #[test]
    fn bulk_insert_doubles_the_document() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
        let before = r.tuple_count();
        let created = run_insert(&mut r, n1, Workload::Bulk).unwrap();
        assert_eq!(created, before - 1);
        assert_eq!(r.tuple_count(), 2 * before - 1);
    }

    #[test]
    fn random_insert_adds_ten_subtrees() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Tuple);
        let before = r.tuple_count();
        let created = run_insert(&mut r, n1, Workload::random10()).unwrap();
        assert_eq!(created, 70);
        assert_eq!(r.tuple_count(), before + 70);
    }

    #[test]
    fn targets_are_deterministic() {
        let (r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
        let a = pick_targets(&r, n1, Workload::random10());
        let b = pick_targets(&r, n1, Workload::random10());
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn strategies_agree_on_random_delete() {
        let mut counts = Vec::new();
        for ds in DeleteStrategy::ALL {
            let (mut r, n1) = repo(ds, InsertStrategy::Table);
            run_delete(&mut r, n1, Workload::random10()).unwrap();
            counts.push(r.tuple_count());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn random_delete_recovers_from_injected_fault() {
        let (mut r, n1) = repo(DeleteStrategy::Cascading, InsertStrategy::Table);
        let before = r.tuple_count();
        // Kill the 2nd client statement: mid-cascade inside the one
        // batched delete all 10 roots fold into (batch_size 256 default),
        // so the fault aborts — and the retry re-issues — that batch.
        r.db.fail_after_statements(2);
        let report = run_delete_recovering(&mut r, n1, Workload::random10()).unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(report.faults_absorbed, 1);
        assert_eq!(report.rows_affected, 10);
        // Same net effect as a fault-free run: 10 subtrees of 7 tuples.
        assert_eq!(before - r.tuple_count(), 70);
        assert!(!r.db.faults_armed());
    }

    #[test]
    fn random_insert_recovers_from_table_write_fault() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Tuple);
        let before = r.tuple_count();
        // Kill the 12th write to the n2 table: some self-copy dies
        // mid-subtree and must roll back cleanly before the retry.
        let n2_table = r.mapping.relations[r.mapping.relation_by_element("n2").unwrap()]
            .table
            .clone();
        r.db.fail_on_table_write(&n2_table, 12);
        let report = run_insert_recovering(&mut r, n1, Workload::random10()).unwrap();
        assert_eq!(report.completed, 10);
        assert_eq!(report.faults_absorbed, 1);
        assert_eq!(report.rows_affected, 70);
        assert_eq!(r.tuple_count(), before + 70);
    }

    #[test]
    fn real_errors_still_propagate() {
        let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, InsertStrategy::Table);
        // A genuine SQL error (unknown column) is not an injected fault
        // and must not be swallowed by the retry loop.
        let err = retry_on_fault(&mut r, |repo| {
            repo.delete_where(n1, Some("no_such_column = 1"))
        });
        assert!(err.is_err());
    }

    #[test]
    fn insert_strategies_agree_on_random_insert() {
        let mut counts = Vec::new();
        for is in InsertStrategy::ALL {
            let (mut r, n1) = repo(DeleteStrategy::PerTupleTrigger, is);
            run_insert(&mut r, n1, Workload::random10()).unwrap();
            counts.push(r.tuple_count());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
