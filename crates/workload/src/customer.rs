//! Scalable customer database conforming to the paper's Figure 4 DTD
//! (simplified TPC/W schema). Used by the examples and the quickstart.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlup_xml::dtd::Dtd;
use xmlup_xml::samples::CUSTOMER_DTD;
use xmlup_xml::Document;

/// Parameters for the generated customer database.
#[derive(Debug, Clone, Copy)]
pub struct CustomerParams {
    /// Number of customers.
    pub customers: usize,
    /// Maximum orders per customer (uniform `0..=max`).
    pub max_orders: usize,
    /// Maximum order lines per order (uniform `1..=max`).
    pub max_lines: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerParams {
    fn default() -> Self {
        CustomerParams {
            customers: 100,
            max_orders: 3,
            max_lines: 4,
            seed: 0xc057,
        }
    }
}

/// The Figure 4 DTD.
pub fn customer_dtd() -> Dtd {
    Dtd::parse(CUSTOMER_DTD).expect("Figure 4 DTD is well-formed")
}

const FIRST: [&str; 8] = [
    "John", "Mary", "Wei", "Aisha", "Igor", "Zack", "Alon", "Dan",
];
const CITY: [(&str, &str); 6] = [
    ("Seattle", "WA"),
    ("Los Angeles", "CA"),
    ("Sacramento", "CA"),
    ("Philadelphia", "PA"),
    ("Madison", "WI"),
    ("Santa Barbara", "CA"),
];
const ITEMS: [&str; 7] = ["tire", "wiper", "battery", "lamp", "seat", "mirror", "pump"];
const STATUS: [&str; 3] = ["ready", "shipped", "suspended"];

/// Generate a customer database document.
pub fn customer_document(p: &CustomerParams) -> Document {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut doc = Document::new("CustDB");
    let root = doc.root();
    for c in 0..p.customers {
        let cust = doc.new_element("Customer");
        doc.append_child(root, cust).expect("fresh attach");
        let (city, state) = CITY[rng.gen_range(0..CITY.len())];
        let name = format!("{} {}", FIRST[rng.gen_range(0..FIRST.len())], c);
        {
            let el = doc.new_element("Name");
            let t = doc.new_text(name);
            doc.append_child(el, t).expect("fresh attach");
            doc.append_child(cust, el).expect("fresh attach");
        }
        let addr = doc.new_element("Address");
        doc.append_child(cust, addr).expect("fresh attach");
        for (tag, text) in [("City", city), ("State", state)] {
            let el = doc.new_element(tag);
            let t = doc.new_text(text.to_string());
            doc.append_child(el, t).expect("fresh attach");
            doc.append_child(addr, el).expect("fresh attach");
        }
        for o in 0..rng.gen_range(0..=p.max_orders) {
            let order = doc.new_element("Order");
            doc.append_child(cust, order).expect("fresh attach");
            for (tag, text) in [
                (
                    "Date",
                    format!(
                        "200{}-{:02}-{:02}",
                        rng.gen_range(0..2),
                        rng.gen_range(1..13),
                        rng.gen_range(1..29)
                    ),
                ),
                ("Status", STATUS[rng.gen_range(0..STATUS.len())].to_string()),
            ] {
                let el = doc.new_element(tag);
                let t = doc.new_text(text);
                doc.append_child(el, t).expect("fresh attach");
                doc.append_child(order, el).expect("fresh attach");
            }
            for _ in 0..rng.gen_range(1..=p.max_lines.max(1)) {
                let line = doc.new_element("OrderLine");
                doc.append_child(order, line).expect("fresh attach");
                for (tag, text) in [
                    ("ItemName", ITEMS[rng.gen_range(0..ITEMS.len())].to_string()),
                    ("Qty", rng.gen_range(1..10).to_string()),
                ] {
                    let el = doc.new_element(tag);
                    let t = doc.new_text(text);
                    doc.append_child(el, t).expect("fresh attach");
                    doc.append_child(line, el).expect("fresh attach");
                }
            }
            let _ = o;
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforms_to_figure4_dtd() {
        let doc = customer_document(&CustomerParams {
            customers: 20,
            ..Default::default()
        });
        customer_dtd().validate(&doc).unwrap();
    }

    #[test]
    fn scales_with_customers() {
        let small = customer_document(&CustomerParams {
            customers: 5,
            ..Default::default()
        });
        let large = customer_document(&CustomerParams {
            customers: 50,
            ..Default::default()
        });
        assert_eq!(small.children(small.root()).len(), 5);
        assert_eq!(large.children(large.root()).len(), 50);
    }

    #[test]
    fn deterministic() {
        let a = customer_document(&CustomerParams::default());
        let b = customer_document(&CustomerParams::default());
        assert!(a.subtree_eq(a.root(), &b, b.root()));
    }
}
