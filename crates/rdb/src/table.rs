//! In-memory table storage with secondary hash and ordered indexes.

use crate::ast::ColumnDef;
use crate::error::{DbError, Result};
use crate::stats::TableStatistics;
use crate::storage::StorageBackend;
use crate::value::{OrdValue, Row, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// Schema of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name as created.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// One undo-style version record retained for MVCC snapshot reads:
/// "before `epoch` committed, slot `pos` held `prior`" (`None` = the slot
/// did not hold a live row). Entries are appended in mutation order, so
/// epochs are non-decreasing and the *first* matching entry for a slot is
/// the oldest — the one a snapshot reconstructs from.
#[derive(Debug, Clone)]
pub(crate) struct VersionEntry {
    /// Epoch the mutation commits under (`committed + 1` at write time).
    pub epoch: u64,
    /// Slot position the mutation touched.
    pub pos: usize,
    /// The slot's content immediately before the mutation.
    pub prior: Option<Row>,
}

/// Write-through attachment to a persistent storage backend: every slot
/// mutation of the owning table is mirrored into `store` under `key`.
/// Forward DML, rollback undo, and WAL replay all funnel through the
/// same six slot mutations, so the backend tracks the heap exactly.
#[derive(Debug, Clone)]
pub(crate) struct Backing {
    store: Arc<dyn StorageBackend>,
    key: String,
}

/// A heap of rows with optional hash indexes on single columns.
///
/// Rows live in slots (`Vec<Option<Row>>`); deletion tombstones the slot so
/// that row positions remain stable during statement execution. Indexes are
/// maintained eagerly on insert/delete/update.
///
/// `PartialEq` compares the full physical state — slot vector (including
/// tombstones), live count, and index bucket contents *in order* — which
/// is exactly the "byte-identical" equality the transaction layer's
/// exact undo restores (see `crate::txn`). The MVCC version history is
/// deliberately excluded: it is read-side reconstruction state, not part
/// of the committed physical image.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    live: usize,
    /// column index → (value → slot positions)
    indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// Ordered secondary indexes: column index → (key → slot positions).
    /// In-bucket positions are kept **sorted ascending** as an invariant
    /// — inserts append at the max position, undo splices by binary
    /// search — so the structure is a pure function of the slot vector
    /// and needs no undo offsets of its own.
    ordered: HashMap<usize, BTreeMap<OrdValue, Vec<usize>>>,
    /// `ANALYZE`-built planner statistics; counters are maintained by
    /// the slot mutations below, shape is frozen until the next analyze
    /// (see `crate::stats`).
    stats: Option<TableStatistics>,
    /// Version records for snapshot visibility (empty unless the owning
    /// database has MVCC enabled; see `crate::mvcc`).
    history: Vec<VersionEntry>,
    /// Persistent-backend mirror; `None` on the in-memory backend.
    /// Excluded from `PartialEq` (it is plumbing, not table state).
    backing: Option<Backing>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.slots == other.slots
            && self.live == other.live
            && self.indexes == other.indexes
            && self.ordered == other.ordered
            && self.stats == other.stats
    }
}

/// Splice `pos` into a sorted position bucket.
fn bucket_insert(bucket: &mut Vec<usize>, pos: usize) {
    let at = bucket.partition_point(|&p| p < pos);
    bucket.insert(at, pos);
}

/// Remove `pos` from the bucket under `key`, dropping the bucket when it
/// empties (ordered-index buckets never linger empty, so the map stays a
/// pure function of the slot vector).
fn ordered_remove(map: &mut BTreeMap<OrdValue, Vec<usize>>, key: &Value, pos: usize) {
    let k = OrdValue(key.clone());
    if let Some(bucket) = map.get_mut(&k) {
        if let Ok(at) = bucket.binary_search(&pos) {
            bucket.remove(at);
        }
        if bucket.is_empty() {
            map.remove(&k);
        }
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            slots: Vec::new(),
            live: 0,
            indexes: HashMap::new(),
            ordered: HashMap::new(),
            stats: None,
            history: Vec::new(),
            backing: None,
        }
    }

    // ------------------------------------------------------------------
    // storage-backend mirroring (see `crate::storage`)
    // ------------------------------------------------------------------

    /// Attach a persistent backend: from now on every slot mutation is
    /// mirrored into `store` under `key`.
    pub(crate) fn attach_backing(&mut self, store: Arc<dyn StorageBackend>, key: &str) {
        self.backing = Some(Backing {
            store,
            key: key.to_string(),
        });
    }

    /// Whether scans should materialize rows through the backend's
    /// buffer pool instead of the in-memory heap.
    pub fn backed_read_through(&self) -> bool {
        self.backing
            .as_ref()
            .is_some_and(|b| b.store.read_through())
    }

    /// All live rows read back through the backend, in slot order.
    pub(crate) fn backed_scan(&self) -> Result<Vec<(usize, Row)>> {
        let b = self.backing.as_ref().expect("backed_scan without backing");
        Ok(b.store
            .scan_table(&b.key)?
            .into_iter()
            .map(|(p, r)| (p as usize, r))
            .collect())
    }

    /// The row at slot `pos` read back through the backend.
    pub(crate) fn backed_row(&self, pos: usize) -> Result<Option<Row>> {
        let b = self.backing.as_ref().expect("backed_row without backing");
        b.store.get_row(&b.key, pos as u64)
    }

    /// Mirror the current content of slot `pos` into the backend (no-op
    /// when unattached or the slot is a tombstone).
    fn mirror_slot(&self, pos: usize) {
        if let Some(b) = &self.backing {
            if let Some(row) = self.slots.get(pos).and_then(Option::as_ref) {
                b.store.put_row(&b.key, pos as u64, row);
            }
        }
    }

    /// Mirror the deletion of slot `pos` into the backend.
    fn mirror_delete(&self, pos: usize) {
        if let Some(b) = &self.backing {
            b.store.delete_row(&b.key, pos as u64);
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.columns.len()
    }

    /// Add a hash index on `column` (no-op if one exists).
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let ci = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(format!("{}.{column}", self.schema.name)))?;
        if self.indexes.contains_key(&ci) {
            return Ok(());
        }
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (pos, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                map.entry(row[ci].clone()).or_default().push(pos);
            }
        }
        self.indexes.insert(ci, map);
        Ok(())
    }

    /// Whether `column` has a hash index.
    pub fn has_index(&self, column_idx: usize) -> bool {
        self.indexes.contains_key(&column_idx)
    }

    /// Add an ordered index on `column` (no-op if one exists). Positions
    /// are pushed in slot order, establishing the sorted-bucket invariant.
    pub fn create_ordered_index(&mut self, column: &str) -> Result<()> {
        let ci = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(format!("{}.{column}", self.schema.name)))?;
        if self.ordered.contains_key(&ci) {
            return Ok(());
        }
        let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
        for (pos, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                map.entry(OrdValue(row[ci].clone())).or_default().push(pos);
            }
        }
        self.ordered.insert(ci, map);
        Ok(())
    }

    /// Whether `column` has an ordered index.
    pub fn has_ordered_index(&self, column_idx: usize) -> bool {
        self.ordered.contains_key(&column_idx)
    }

    /// Columns carrying an ordered index, ascending.
    pub fn ordered_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.ordered.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// The table's `ANALYZE` statistics, if built.
    pub fn statistics(&self) -> Option<&TableStatistics> {
        self.stats.as_ref()
    }

    /// Install (or clear) statistics wholesale — the rollback path of
    /// `ANALYZE` and snapshot restore.
    pub(crate) fn set_statistics(&mut self, stats: Option<TableStatistics>) {
        self.stats = stats;
    }

    /// Rebuild statistics from a full scan of the live rows (the
    /// `ANALYZE` forward path). Returns the previous statistics so the
    /// transaction layer can restore them on rollback.
    pub(crate) fn analyze(&mut self) -> Option<TableStatistics> {
        let new =
            TableStatistics::build(self.slots.iter().filter_map(Option::as_ref), self.arity());
        self.stats.replace(new)
    }

    /// Insert a row (arity must match). Returns its slot position.
    pub fn insert(&mut self, row: Row) -> Result<usize> {
        if row.len() != self.arity() {
            return Err(DbError::Schema(format!(
                "insert into {}: {} values for {} columns",
                self.schema.name,
                row.len(),
                self.arity()
            )));
        }
        let pos = self.slots.len();
        for (ci, idx) in self.indexes.iter_mut() {
            idx.entry(row[*ci].clone()).or_default().push(pos);
        }
        for (ci, idx) in self.ordered.iter_mut() {
            // `pos` is the new maximum, so a push keeps buckets sorted.
            idx.entry(OrdValue(row[*ci].clone())).or_default().push(pos);
        }
        if let Some(s) = &mut self.stats {
            s.note_insert(&row);
        }
        if let Some(b) = &self.backing {
            b.store.put_row(&b.key, pos as u64, &row);
        }
        self.slots.push(Some(row));
        self.live += 1;
        Ok(pos)
    }

    /// Row at a slot position, if live.
    pub fn row(&self, pos: usize) -> Option<&Row> {
        self.slots.get(pos).and_then(Option::as_ref)
    }

    /// Delete the row at `pos`, returning it.
    pub fn delete(&mut self, pos: usize) -> Option<Row> {
        let row = self.slots.get_mut(pos)?.take()?;
        self.live -= 1;
        for (ci, idx) in self.indexes.iter_mut() {
            if let Some(v) = idx.get_mut(&row[*ci]) {
                v.retain(|&p| p != pos);
                if v.is_empty() {
                    idx.remove(&row[*ci]);
                }
            }
        }
        for (ci, idx) in self.ordered.iter_mut() {
            ordered_remove(idx, &row[*ci], pos);
        }
        if let Some(s) = &mut self.stats {
            s.note_delete(&row);
        }
        self.mirror_delete(pos);
        Some(row)
    }

    /// Overwrite one column of the row at `pos`.
    pub fn update_cell(&mut self, pos: usize, column_idx: usize, value: Value) -> Result<()> {
        let row = self
            .slots
            .get_mut(pos)
            .and_then(Option::as_mut)
            .ok_or_else(|| DbError::Execution(format!("no live row at slot {pos}")))?;
        let old = std::mem::replace(&mut row[column_idx], value.clone());
        if let Some(idx) = self.indexes.get_mut(&column_idx) {
            if let Some(v) = idx.get_mut(&old) {
                v.retain(|&p| p != pos);
                if v.is_empty() {
                    idx.remove(&old);
                }
            }
            idx.entry(value.clone()).or_default().push(pos);
        }
        if let Some(idx) = self.ordered.get_mut(&column_idx) {
            ordered_remove(idx, &old, pos);
            bucket_insert(idx.entry(OrdValue(value.clone())).or_default(), pos);
        }
        if let Some(s) = &mut self.stats {
            s.note_update(column_idx, &old, &value);
        }
        self.mirror_slot(pos);
        Ok(())
    }

    // ------------------------------------------------------------------
    // undo support (see `crate::txn`)
    //
    // The engine records enough from each forward mutation to restore the
    // table *exactly*: inserts are undone while they are still the last
    // slot (rollback applies records newest-first), and delete/update
    // undo re-inserts the slot position at its recorded offset inside
    // each index bucket, reproducing bucket ordering.
    // ------------------------------------------------------------------

    /// Delete the row at `pos` like [`Table::delete`], additionally
    /// returning the `(column, offset)` of the slot in each index bucket
    /// it is removed from, so [`Table::restore_row`] can splice it back
    /// in place.
    pub(crate) fn delete_with_undo(&mut self, pos: usize) -> Option<(Row, Vec<(usize, usize)>)> {
        {
            let row = self.slots.get(pos)?.as_ref()?;
            let mut offsets = Vec::new();
            for (ci, idx) in self.indexes.iter() {
                if let Some(off) = idx
                    .get(&row[*ci])
                    .and_then(|v| v.iter().position(|&p| p == pos))
                {
                    offsets.push((*ci, off));
                }
            }
            let row = self.delete(pos)?;
            Some((row, offsets))
        }
    }

    /// Undo a delete: put `row` back at `pos` and re-insert the slot at
    /// its recorded offset in each index bucket.
    pub(crate) fn restore_row(&mut self, pos: usize, row: Row, offsets: &[(usize, usize)]) {
        for &(ci, off) in offsets {
            if let Some(idx) = self.indexes.get_mut(&ci) {
                let bucket = idx.entry(row[ci].clone()).or_default();
                bucket.insert(off.min(bucket.len()), pos);
            }
        }
        for (ci, idx) in self.ordered.iter_mut() {
            // Sorted buckets need no recorded offset: splice by position.
            bucket_insert(idx.entry(OrdValue(row[*ci].clone())).or_default(), pos);
        }
        if let Some(s) = &mut self.stats {
            s.note_insert(&row);
        }
        if let Some(slot) = self.slots.get_mut(pos) {
            if slot.replace(row).is_none() {
                self.live += 1;
            }
        }
        self.mirror_slot(pos);
    }

    /// Overwrite a cell like [`Table::update_cell`], additionally
    /// returning the previous value and, when the column is indexed, the
    /// slot's offset in the old value's bucket.
    pub(crate) fn update_cell_with_undo(
        &mut self,
        pos: usize,
        column_idx: usize,
        value: Value,
    ) -> Result<(Value, Option<usize>)> {
        let old = self
            .row(pos)
            .and_then(|r| r.get(column_idx))
            .cloned()
            .ok_or_else(|| DbError::Execution(format!("no live row at slot {pos}")))?;
        let old_offset = self
            .indexes
            .get(&column_idx)
            .and_then(|idx| idx.get(&old))
            .and_then(|v| v.iter().position(|&p| p == pos));
        self.update_cell(pos, column_idx, value)?;
        Ok((old, old_offset))
    }

    /// Undo a cell update: restore `old` and rebuild the index entry at
    /// its recorded bucket offset.
    pub(crate) fn unupdate_cell(
        &mut self,
        pos: usize,
        column_idx: usize,
        old: Value,
        old_offset: Option<usize>,
    ) {
        let row = match self.slots.get_mut(pos).and_then(Option::as_mut) {
            Some(r) => r,
            None => return,
        };
        let current = std::mem::replace(&mut row[column_idx], old.clone());
        if let Some(idx) = self.indexes.get_mut(&column_idx) {
            if let Some(v) = idx.get_mut(&current) {
                v.retain(|&p| p != pos);
                if v.is_empty() {
                    idx.remove(&current);
                }
            }
            if let Some(off) = old_offset {
                let bucket = idx.entry(old.clone()).or_default();
                bucket.insert(off.min(bucket.len()), pos);
            }
        }
        if let Some(idx) = self.ordered.get_mut(&column_idx) {
            ordered_remove(idx, &current, pos);
            bucket_insert(idx.entry(OrdValue(old.clone())).or_default(), pos);
        }
        if let Some(s) = &mut self.stats {
            s.note_update(column_idx, &current, &old);
        }
        self.mirror_slot(pos);
    }

    /// Undo an insert of the row at `pos`. Rollback applies records
    /// newest-first, so any later appends were already undone and `pos`
    /// is the last slot again: popping it restores the slot vector's
    /// original length.
    pub(crate) fn undo_insert(&mut self, pos: usize) {
        if let Some(row) = self.slots.get_mut(pos).and_then(Option::take) {
            self.live -= 1;
            for (ci, idx) in self.indexes.iter_mut() {
                if let Some(v) = idx.get_mut(&row[*ci]) {
                    v.retain(|&p| p != pos);
                    if v.is_empty() {
                        idx.remove(&row[*ci]);
                    }
                }
            }
            for (ci, idx) in self.ordered.iter_mut() {
                ordered_remove(idx, &row[*ci], pos);
            }
            if let Some(s) = &mut self.stats {
                s.note_delete(&row);
            }
            self.mirror_delete(pos);
        }
        debug_assert_eq!(pos + 1, self.slots.len(), "insert undo must be last slot");
        if pos + 1 == self.slots.len() {
            self.slots.pop();
        }
    }

    /// Drop the hash index on `column_idx` (undo of `CREATE INDEX`).
    pub(crate) fn drop_index(&mut self, column_idx: usize) {
        self.indexes.remove(&column_idx);
    }

    /// Drop the ordered index on `column_idx` (undo of `CREATE INDEX ...
    /// USING ORDERED`).
    pub(crate) fn drop_ordered_index(&mut self, column_idx: usize) {
        self.ordered.remove(&column_idx);
    }

    // ------------------------------------------------------------------
    // snapshot support (see `crate::wal`)
    // ------------------------------------------------------------------

    /// The raw slot vector, tombstones included (snapshot serialization).
    pub(crate) fn slots_raw(&self) -> &[Option<Row>] {
        &self.slots
    }

    /// The raw index map (snapshot serialization).
    pub(crate) fn indexes_raw(&self) -> &HashMap<usize, HashMap<Value, Vec<usize>>> {
        &self.indexes
    }

    /// Rebuild a table from snapshot parts. The live count is derived
    /// from the slots; index buckets are installed verbatim so in-bucket
    /// position order survives the round trip.
    pub(crate) fn from_parts(
        schema: TableSchema,
        slots: Vec<Option<Row>>,
        indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
        ordered_columns: &[usize],
        stats: Option<TableStatistics>,
    ) -> Self {
        let live = slots.iter().filter(|s| s.is_some()).count();
        // Ordered buckets are a pure function of the slots (positions
        // ascending), so only the column list is persisted; rebuild here.
        let mut ordered: HashMap<usize, BTreeMap<OrdValue, Vec<usize>>> = HashMap::new();
        for &ci in ordered_columns {
            let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
            for (pos, slot) in slots.iter().enumerate() {
                if let Some(row) = slot {
                    map.entry(OrdValue(row[ci].clone())).or_default().push(pos);
                }
            }
            ordered.insert(ci, map);
        }
        Table {
            schema,
            slots,
            live,
            indexes,
            ordered,
            stats,
            history: Vec::new(),
            backing: None,
        }
    }

    /// Slot positions of all live rows.
    pub fn live_positions(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    /// Iterate live rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterate live rows with their slot positions. This is the scan
    /// surface the Volcano executor pulls from: rows are borrowed from
    /// the heap, never cloned wholesale into an intermediate relation.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// Distinct key count of the index on `column_idx` (hash index when
    /// present, else the ordered index); 0 when the column has neither.
    pub(crate) fn index_distinct(&self, column_idx: usize) -> usize {
        if let Some(m) = self.indexes.get(&column_idx) {
            return m.len();
        }
        self.ordered.get(&column_idx).map_or(0, |m| m.len())
    }

    /// Index lookup: positions of live rows with `row[column_idx] == key`.
    /// Served by the hash index when present, else by an equality probe
    /// of the ordered index. Returns `None` if the column carries neither.
    pub fn index_lookup(&self, column_idx: usize, key: &Value) -> Option<&[usize]> {
        if let Some(m) = self.indexes.get(&column_idx) {
            return Some(m.get(key).map(Vec::as_slice).unwrap_or(&[]));
        }
        self.ordered.get(&column_idx).map(|m| {
            m.get(&OrdValue(key.clone()))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        })
    }

    /// Build the `BTreeMap::range` bounds for `(value, inclusive)` seek
    /// endpoints. Returns `None` when the bounds are provably empty
    /// (`lower > upper`), which `BTreeMap::range` would panic on.
    fn seek_bounds(
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<(Bound<OrdValue>, Bound<OrdValue>)> {
        if let (Some((lo, lo_incl)), Some((hi, hi_incl))) = (lower, upper) {
            match lo.sort_cmp(hi) {
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Equal if !(lo_incl && hi_incl) => return None,
                _ => {}
            }
        }
        let as_bound = |b: Option<(&Value, bool)>| match b {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(OrdValue(v.clone())),
            Some((v, false)) => Bound::Excluded(OrdValue(v.clone())),
        };
        Some((as_bound(lower), as_bound(upper)))
    }

    /// Range seek over the ordered index on `column_idx`: slot positions
    /// (ascending) of live rows whose key lies within the bounds under
    /// [`Value::sort_cmp`]'s total order. Bounds are `(value, inclusive)`;
    /// `None` is unbounded. Returns `None` when the column has no ordered
    /// index. Callers re-check the originating predicate per row, so the
    /// seek only needs to be a superset under the total order.
    pub fn range_positions(
        &self,
        column_idx: usize,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<Vec<usize>> {
        let m = self.ordered.get(&column_idx)?;
        let Some(bounds) = Self::seek_bounds(lower, upper) else {
            return Some(Vec::new());
        };
        let mut out = Vec::new();
        for (_, ps) in m.range(bounds) {
            out.extend_from_slice(ps);
        }
        out.sort_unstable();
        Some(out)
    }

    /// Ordered seek: slot positions in key order (descending when `desc`),
    /// positions ascending within equal keys, optionally bounded like
    /// [`Table::range_positions`]. Returns `None` when the column has no
    /// ordered index. This is the access path that lets the planner elide
    /// an `ORDER BY` sort.
    pub fn ordered_positions(
        &self,
        column_idx: usize,
        desc: bool,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<Vec<usize>> {
        let m = self.ordered.get(&column_idx)?;
        let Some(bounds) = Self::seek_bounds(lower, upper) else {
            return Some(Vec::new());
        };
        let mut out = Vec::new();
        if desc {
            for (_, ps) in m.range(bounds).rev() {
                out.extend_from_slice(ps);
            }
        } else {
            for (_, ps) in m.range(bounds) {
                out.extend_from_slice(ps);
            }
        }
        Some(out)
    }

    /// Lazy form of [`Table::ordered_positions`]: an iterator over slot
    /// positions in key order. Lets `ORDER BY … LIMIT k` pull only the
    /// first `k` matches instead of materializing every position.
    pub(crate) fn ordered_seek<'t>(
        &'t self,
        column_idx: usize,
        desc: bool,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<Box<dyn Iterator<Item = usize> + 't>> {
        let m = self.ordered.get(&column_idx)?;
        let Some(bounds) = Self::seek_bounds(lower, upper) else {
            return Some(Box::new(std::iter::empty()));
        };
        let r = m.range(bounds);
        if desc {
            Some(Box::new(r.rev().flat_map(|(_, ps)| ps.iter().copied())))
        } else {
            Some(Box::new(r.flat_map(|(_, ps)| ps.iter().copied())))
        }
    }

    // ------------------------------------------------------------------
    // MVCC version history (see `crate::mvcc`)
    //
    // The engine records the *before* image of every slot a mutation is
    // about to touch, stamped with the epoch the enclosing transaction
    // will commit under. A reader holding snapshot epoch `S` reconstructs
    // each slot from the oldest entry with `epoch > S` (its `prior` is the
    // slot's content when `S` was current); slots with no such entry are
    // unchanged since the snapshot and read straight from the heap.
    // ------------------------------------------------------------------

    /// Record the before-image of `pos` under `epoch` before a mutation.
    /// No-op unless the owning database enabled version retention
    /// (single-threaded databases pay nothing). Repeated writes to one
    /// slot in one transaction are all recorded; only the first matters
    /// for visibility and GC drops them together.
    pub(crate) fn note_version(&mut self, epoch: u64, pos: usize) {
        let prior = self.slots.get(pos).cloned().unwrap_or(None);
        self.history.push(VersionEntry { epoch, pos, prior });
    }

    /// Record a freshly-inserted slot: its before-image is "no row", so
    /// snapshots older than `epoch` must not see it. Called *after* the
    /// insert with the returned position (the prior content of a new
    /// slot is always empty, so nothing needs capturing beforehand).
    pub(crate) fn note_insert(&mut self, epoch: u64, pos: usize) {
        self.history.push(VersionEntry {
            epoch,
            pos,
            prior: None,
        });
    }

    /// Whether any version entry is newer than snapshot `epoch` — i.e.
    /// whether a reader at that snapshot can trust the live heap and its
    /// indexes directly. Entries are appended with non-decreasing epochs,
    /// so only the newest needs checking.
    pub fn changed_since(&self, epoch: u64) -> bool {
        self.history.last().is_some_and(|e| e.epoch > epoch)
    }

    /// Materialize the rows visible at snapshot `epoch`: heap contents
    /// with every newer mutation's before-image layered back on. The
    /// executor only takes this path when [`Table::changed_since`] says
    /// the heap has moved past the snapshot.
    pub(crate) fn rows_visible_at(&self, epoch: u64) -> Vec<Row> {
        let mut overrides: HashMap<usize, &Option<Row>> = HashMap::new();
        for e in &self.history {
            if e.epoch > epoch {
                // First entry per slot wins: the oldest before-image is
                // the slot's content when the snapshot was current.
                overrides.entry(e.pos).or_insert(&e.prior);
            }
        }
        let max_pos = self
            .slots
            .len()
            .max(overrides.keys().map(|p| p + 1).max().unwrap_or(0));
        let mut rows = Vec::new();
        for pos in 0..max_pos {
            let visible = match overrides.get(&pos) {
                Some(prior) => prior.as_ref(),
                None => self.slots.get(pos).and_then(Option::as_ref),
            };
            if let Some(row) = visible {
                rows.push(row.clone());
            }
        }
        rows
    }

    /// Drop version entries no active snapshot can still need: an entry
    /// stamped `epoch` serves snapshots strictly older than it, so once
    /// the oldest active snapshot has reached `min_snapshot >= epoch` the
    /// entry is garbage. Entries of the open (uncommitted) transaction
    /// carry `committed + 1 > min_snapshot` and always survive.
    pub(crate) fn gc_versions(&mut self, min_snapshot: u64) {
        if self
            .history
            .first()
            .is_some_and(|e| e.epoch <= min_snapshot)
        {
            self.history.retain(|e| e.epoch > min_snapshot);
        }
    }

    /// Number of version entries currently retained.
    pub fn versions_retained(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    ty: DataType::Integer,
                },
                ColumnDef {
                    name: "name".into(),
                    ty: DataType::Text,
                },
            ],
        }
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut t = Table::new(schema());
        let p = t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        assert_eq!(t.len(), 1);
        let row = t.delete(p).unwrap();
        assert_eq!(row[0], Value::Int(1));
        assert_eq!(t.len(), 0);
        assert!(t.delete(p).is_none(), "double delete is a no-op");
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn index_maintained_on_mutation() {
        let mut t = Table::new(schema());
        t.create_index("id").unwrap();
        let p0 = t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        let p1 = t.insert(vec![Value::Int(1), Value::from("b")]).unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[p0, p1]);
        t.delete(p0);
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[p1]);
        t.update_cell(p1, 0, Value::Int(2)).unwrap();
        assert!(t.index_lookup(0, &Value::Int(1)).unwrap().is_empty());
        assert_eq!(t.index_lookup(0, &Value::Int(2)).unwrap(), &[p1]);
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(7), Value::from("x")]).unwrap();
        t.create_index("id").unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(7)).unwrap().len(), 1);
        assert_eq!(
            t.index_lookup(1, &Value::from("x")),
            None,
            "name not indexed"
        );
    }

    #[test]
    fn ordered_index_maintained_on_mutation() {
        let mut t = Table::new(schema());
        t.create_ordered_index("id").unwrap();
        let p0 = t.insert(vec![Value::Int(5), Value::from("a")]).unwrap();
        let p1 = t.insert(vec![Value::Int(1), Value::from("b")]).unwrap();
        let p2 = t.insert(vec![Value::Int(9), Value::from("c")]).unwrap();
        let p3 = t.insert(vec![Value::Int(5), Value::from("d")]).unwrap();
        assert_eq!(
            t.ordered_positions(0, false, None, None).unwrap(),
            vec![p1, p0, p3, p2]
        );
        assert_eq!(
            t.ordered_positions(0, true, None, None).unwrap(),
            vec![p2, p0, p3, p1],
            "descending flips key order but keeps in-key position order"
        );
        let lo = Value::Int(2);
        let hi = Value::Int(8);
        assert_eq!(
            t.range_positions(0, Some((&lo, true)), Some((&hi, true)))
                .unwrap(),
            vec![p0, p3]
        );
        t.delete(p0);
        assert_eq!(
            t.range_positions(0, Some((&lo, true)), Some((&hi, true)))
                .unwrap(),
            vec![p3]
        );
        t.update_cell(p3, 0, Value::Int(100)).unwrap();
        assert!(t
            .range_positions(0, Some((&lo, true)), Some((&hi, true)))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.ordered_positions(0, false, None, None).unwrap(),
            vec![p1, p2, p3]
        );
        // Equality probes fall back to the ordered index.
        assert_eq!(t.index_lookup(0, &Value::Int(100)).unwrap(), &[p3]);
    }

    #[test]
    fn inverted_range_is_empty_not_panic() {
        let mut t = Table::new(schema());
        t.create_ordered_index("id").unwrap();
        t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        let lo = Value::Int(9);
        let hi = Value::Int(2);
        assert_eq!(
            t.range_positions(0, Some((&lo, true)), Some((&hi, true))),
            Some(Vec::new())
        );
        assert_eq!(
            t.range_positions(0, Some((&hi, false)), Some((&hi, true))),
            Some(Vec::new()),
            "equal bounds with one exclusive end are empty"
        );
    }

    #[test]
    fn rebuilt_ordered_index_matches_maintained_one() {
        let mut a = Table::new(schema());
        a.create_ordered_index("id").unwrap();
        let mut rows = Vec::new();
        for i in 0..20i64 {
            rows.push(vec![Value::Int(i * 7 % 10), Value::from("x")]);
        }
        for r in &rows {
            a.insert(r.clone()).unwrap();
        }
        a.delete(3);
        a.update_cell(5, 0, Value::Int(-1)).unwrap();
        let mut b = Table::from_parts(
            a.schema.clone(),
            a.slots_raw().to_vec(),
            a.indexes_raw().clone(),
            &a.ordered_columns(),
            None,
        );
        b.set_statistics(a.statistics().cloned());
        assert_eq!(a, b, "ordered buckets are a pure function of the slots");
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("ID"), Some(0));
        assert_eq!(s.column_index("Name"), Some(1));
        assert_eq!(s.column_index("none"), None);
    }
}
