//! SQL execution engine: statement dispatch, query evaluation with
//! index-accelerated joins, trigger firing, and execution statistics.
//!
//! The engine is deliberately shaped like the slice of IBM DB2 the paper's
//! middleware exercised: everything arrives as SQL text (or a pre-parsed
//! [`Stmt`]), per-tuple and per-statement `AFTER DELETE` triggers cascade
//! inside the engine, and a statistics block exposes the quantities the
//! paper reasons about (statements executed, rows scanned, trigger
//! firings, index lookups).

use crate::ast::*;
use crate::cells::{Counter, DurCell, FlagCell, IdCell, OptDurCell};
use crate::error::{DbError, Result};
use crate::exec::{EvalCtx, PlanProf, RowEnv};
use crate::mvcc::MvccState;
use crate::obs::{self, Metric, SlowQuery, Span};
use crate::parser::{parse_script_with_text, parse_stmt_with_params};
use crate::plan::{PlanSlot, SelectPlan};
use crate::sql::stmt_to_sql;
use crate::storage::{
    BackendKind, CatalogTable, CheckpointCatalog, MemoryBackend, PagedStore, StorageBackend,
    StorageConfig, StorageMetrics,
};
use crate::table::{Table, TableSchema};
use crate::txn::{FaultState, Savepoint, TxnState, UndoRecord};
use crate::value::{Row, Value};
use crate::wal::{self, WalRecord};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

/// Cascading triggers deeper than this abort execution (recursive schemas
/// with always-firing triggers would otherwise loop; see the cascading
/// delete discussion in paper Section 6.1.2).
const MAX_TRIGGER_DEPTH: usize = 100;

/// Upper bound on cached statement plans. The paper's workloads cycle
/// through a few dozen statement shapes per relation, so the cache stays
/// far below this in practice; the bound only protects against clients
/// that submit unbounded families of distinct SQL texts.
const PLAN_CACHE_CAPACITY: usize = 512;

/// Execution counters. All counters are cumulative; use
/// [`Database::reset_stats`] between measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Statements submitted through the public API.
    pub client_statements: u64,
    /// All statements executed, including trigger bodies.
    pub total_statements: u64,
    /// Rows visited by scans and hash-build passes.
    pub rows_scanned: u64,
    /// Rows inserted.
    pub rows_inserted: u64,
    /// Rows deleted.
    pub rows_deleted: u64,
    /// Rows updated.
    pub rows_updated: u64,
    /// Trigger firings (per-row triggers count once per row).
    pub trigger_firings: u64,
    /// Probes answered by a persistent index.
    pub index_lookups: u64,
    /// Statements compiled from SQL text (each distinct statement shape
    /// should be parsed once; repeats come from the plan cache).
    pub statements_parsed: u64,
    /// `execute`/`prepare` calls answered by the plan cache.
    pub plan_cache_hits: u64,
    /// `execute`/`prepare` calls that had to parse.
    pub plan_cache_misses: u64,
    /// Transactions committed: explicit `COMMIT`s plus autocommitted
    /// statements that mutated state.
    pub txn_commits: u64,
    /// Rollbacks applied: explicit `ROLLBACK`/`ROLLBACK TO` plus
    /// automatic statement-level rollbacks of failed statements.
    pub txn_rollbacks: u64,
    /// Undo records appended to the transaction log.
    pub undo_records: u64,
    /// WAL records written to disk (frame markers included).
    pub wal_records: u64,
    /// Bytes appended to the WAL (framing included).
    pub wal_bytes: u64,
    /// `fsync` calls issued by WAL appends (group-flushed commits).
    pub wal_fsyncs: u64,
    /// Checkpoints taken (snapshot written, WAL truncated).
    pub checkpoints: u64,
    /// Committed transactions replayed from the WAL by the most recent
    /// [`Database::open`]. Set once at open; `reset_stats` zeroes it.
    pub recovered_txns: u64,
    /// Physical SELECT plans compiled by the planner (cache hits on a
    /// still-valid plan slot do not recompile).
    pub plans_built: u64,
    /// Sequential scans opened by the executor.
    pub seq_scans: u64,
    /// Index scans opened by the executor (SELECT probes plus the
    /// DELETE/UPDATE position-finding probes).
    pub index_scans: u64,
    /// Hash-join build sides materialized.
    pub hash_join_builds: u64,
    /// IN-list probe sets materialized (once per statement per list;
    /// correlated lists never build one).
    pub in_list_builds: u64,
    /// Row batches emitted by the vectorized executor.
    pub exec_batches: u64,
    /// Filter conjuncts pushed down into scans at plan time.
    pub predicates_pushed: u64,
    /// WAL payload bytes replayed by the most recent [`Database::open`]
    /// (header excluded). Set once at open; `reset_stats` zeroes it.
    pub wal_replayed_bytes: u64,
    /// Wall-clock time of the most recent [`Database::open`] recovery
    /// (snapshot load + WAL replay), in microseconds.
    pub recovery_micros: u64,
    /// Pages written by checkpoints: dirty buffer-pool frames plus meta
    /// on the paged backend, snapshot size in page units on the memory
    /// backend.
    pub checkpoint_pages_written: u64,
    /// Bytes written by checkpoints (page images + meta, or the full
    /// snapshot).
    pub checkpoint_bytes_written: u64,
    /// Range seeks answered by an ordered index (bounded scans that
    /// narrowed their candidate set through a B-tree range probe).
    pub range_seeks: u64,
    /// Scans that walked an ordered index in key order (ORDER BY
    /// pushdown and ordered-range access paths).
    pub ordered_index_scans: u64,
    /// Sorts elided because an ordered index already produced the
    /// requested ORDER BY order.
    pub sorts_elided: u64,
    /// `ANALYZE` statistics rebuilds (one per table analyzed).
    pub stats_rebuilds: u64,
}

#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub(crate) client_statements: Counter,
    pub(crate) total_statements: Counter,
    pub(crate) rows_scanned: Counter,
    pub(crate) rows_inserted: Counter,
    pub(crate) rows_deleted: Counter,
    pub(crate) rows_updated: Counter,
    pub(crate) trigger_firings: Counter,
    pub(crate) index_lookups: Counter,
    pub(crate) statements_parsed: Counter,
    pub(crate) plan_cache_hits: Counter,
    pub(crate) plan_cache_misses: Counter,
    pub(crate) txn_commits: Counter,
    pub(crate) txn_rollbacks: Counter,
    pub(crate) undo_records: Counter,
    pub(crate) wal_records: Counter,
    pub(crate) wal_bytes: Counter,
    pub(crate) wal_fsyncs: Counter,
    pub(crate) checkpoints: Counter,
    pub(crate) recovered_txns: Counter,
    pub(crate) plans_built: Counter,
    pub(crate) seq_scans: Counter,
    pub(crate) index_scans: Counter,
    pub(crate) hash_join_builds: Counter,
    pub(crate) in_list_builds: Counter,
    pub(crate) exec_batches: Counter,
    pub(crate) predicates_pushed: Counter,
    pub(crate) wal_replayed_bytes: Counter,
    pub(crate) recovery_micros: Counter,
    pub(crate) checkpoint_pages_written: Counter,
    pub(crate) checkpoint_bytes_written: Counter,
    pub(crate) range_seeks: Counter,
    pub(crate) ordered_index_scans: Counter,
    pub(crate) sorts_elided: Counter,
    pub(crate) stats_rebuilds: Counter,
}

impl StatsCells {
    fn snapshot(&self) -> Stats {
        Stats {
            client_statements: self.client_statements.get(),
            total_statements: self.total_statements.get(),
            rows_scanned: self.rows_scanned.get(),
            rows_inserted: self.rows_inserted.get(),
            rows_deleted: self.rows_deleted.get(),
            rows_updated: self.rows_updated.get(),
            trigger_firings: self.trigger_firings.get(),
            index_lookups: self.index_lookups.get(),
            statements_parsed: self.statements_parsed.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
            plan_cache_misses: self.plan_cache_misses.get(),
            txn_commits: self.txn_commits.get(),
            txn_rollbacks: self.txn_rollbacks.get(),
            undo_records: self.undo_records.get(),
            wal_records: self.wal_records.get(),
            wal_bytes: self.wal_bytes.get(),
            wal_fsyncs: self.wal_fsyncs.get(),
            checkpoints: self.checkpoints.get(),
            recovered_txns: self.recovered_txns.get(),
            plans_built: self.plans_built.get(),
            seq_scans: self.seq_scans.get(),
            index_scans: self.index_scans.get(),
            hash_join_builds: self.hash_join_builds.get(),
            in_list_builds: self.in_list_builds.get(),
            exec_batches: self.exec_batches.get(),
            predicates_pushed: self.predicates_pushed.get(),
            wal_replayed_bytes: self.wal_replayed_bytes.get(),
            recovery_micros: self.recovery_micros.get(),
            checkpoint_pages_written: self.checkpoint_pages_written.get(),
            checkpoint_bytes_written: self.checkpoint_bytes_written.get(),
            range_seeks: self.range_seeks.get(),
            ordered_index_scans: self.ordered_index_scans.get(),
            sorts_elided: self.sorts_elided.get(),
            stats_rebuilds: self.stats_rebuilds.get(),
        }
    }

    pub(crate) fn bump(cell: &Counter, by: u64) {
        cell.add(by);
    }
}

/// A registered trigger.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Trigger name.
    pub name: String,
    /// Firing event.
    pub event: TriggerEvent,
    /// Table (lower-cased) the trigger watches.
    pub table: String,
    /// Firing granularity.
    pub granularity: TriggerGranularity,
    /// Parsed body.
    pub body: Arc<Vec<Stmt>>,
}

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Index of an output column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Single-value convenience accessor (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A query's result set.
    Rows(ResultSet),
    /// Rows affected by DML.
    Affected(usize),
    /// DDL completed.
    Ddl,
    /// Transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`/`SAVEPOINT`)
    /// completed.
    Txn,
    /// `CHECKPOINT` completed: snapshot written, WAL truncated.
    Checkpoint,
}

impl ExecResult {
    /// Rows affected (0 for non-DML).
    pub fn affected(&self) -> usize {
        match self {
            ExecResult::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// A statement compiled once and executable many times with bound
/// parameter values — the engine-side analogue of the JDBC
/// `PreparedStatement`s the paper's middleware holds against DB2.
///
/// Obtained from [`Database::prepare`]; executed with
/// [`Database::execute_prepared`]. The compiled plan is owned by the
/// handle, so later DDL (which clears the plan cache) does not invalidate
/// it: names are resolved against the catalog at execution time.
#[derive(Debug, Clone)]
pub struct PreparedStmt {
    stmt: Arc<Stmt>,
    params: usize,
    sql: String,
    /// Physical-plan slot shared with the SQL-text plan cache entry for
    /// the same text; replanned lazily when the schema epoch moves.
    slot: Arc<PlanSlot>,
}

impl PreparedStmt {
    /// Number of parameter slots the statement binds.
    pub fn param_count(&self) -> usize {
        self.params
    }

    /// The SQL text the statement was compiled from.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

/// Bounded LRU cache of compiled plans keyed on SQL text.
#[derive(Debug)]
struct PlanCache {
    plans: HashMap<String, CachedPlan>,
    /// Monotonic use counter driving LRU eviction.
    tick: u64,
    capacity: usize,
}

#[derive(Debug)]
struct CachedPlan {
    stmt: Arc<Stmt>,
    params: usize,
    last_used: u64,
    slot: Arc<PlanSlot>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            plans: HashMap::new(),
            tick: 0,
            capacity: PLAN_CACHE_CAPACITY,
        }
    }
}

impl PlanCache {
    fn get(&mut self, sql: &str) -> Option<(Arc<Stmt>, usize, Arc<PlanSlot>)> {
        self.tick += 1;
        let tick = self.tick;
        self.plans.get_mut(sql).map(|p| {
            p.last_used = tick;
            (p.stmt.clone(), p.params, p.slot.clone())
        })
    }

    fn insert(&mut self, sql: &str, stmt: Arc<Stmt>, params: usize, slot: Arc<PlanSlot>) {
        if self.plans.len() >= self.capacity && !self.plans.contains_key(sql) {
            // Evict the least recently used plan. O(n), but only on the
            // rare capacity-overflow path.
            if let Some(victim) = self
                .plans
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(k, _)| k.clone())
            {
                self.plans.remove(&victim);
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.plans.insert(
            sql.to_string(),
            CachedPlan {
                stmt,
                params,
                last_used: tick,
                slot,
            },
        );
    }

    fn clear(&mut self) {
        self.plans.clear();
    }
}

/// The in-memory relational database.
#[derive(Debug)]
pub struct Database {
    pub(crate) tables: HashMap<String, Table>,
    triggers: Vec<Trigger>,
    pub(crate) stats: StatsCells,
    next_id: IdCell,
    /// Simulated per-client-statement overhead (see
    /// [`Database::set_statement_cost`]).
    statement_cost: DurCell,
    /// Compiled plans for SQL text seen by `execute`/`prepare`, cleared
    /// on any DDL.
    plan_cache: Mutex<PlanCache>,
    /// Bumped on every DDL (and plan-cache clear); physical plans carry
    /// the epoch they were built under and replan when it moves.
    pub(crate) schema_epoch: Counter,
    /// When set, the planner skips predicate pushdown and index-access
    /// selection and re-checks the whole filter on joined rows,
    /// reproducing the pre-planner AST interpreter's strategy (for A/B
    /// experiments).
    pub(crate) planner_naive: FlagCell,
    /// Undo log, explicit-transaction flag, and savepoints.
    txn: TxnState,
    /// Armed fault-injection counters (see
    /// [`Database::fail_after_statements`]).
    fault: FaultState,
    /// Durable-storage attachment, present iff the database was created
    /// with [`Database::open`]. `None` while recovery replays the log so
    /// replayed work is not re-logged.
    durable: Option<DurableState>,
    /// Slow-query threshold; statements at or above it are recorded in
    /// `slow_log`. `None` disables the log (the default).
    slow_threshold: OptDurCell,
    /// Retained slow-query records, oldest first, capped at
    /// [`obs::SLOW_QUERY_CAPACITY`](crate::obs).
    slow_log: Mutex<Vec<SlowQuery>>,
    /// MVCC epoch, snapshot registry, and concurrency metrics (see
    /// [`crate::mvcc`]).
    pub(crate) mvcc: MvccState,
    /// Storage backend underneath the in-memory tables (see
    /// [`crate::storage`]). [`MemoryBackend`] — every hook a no-op —
    /// unless [`Database::open_with`] selected the paged store.
    storage: Arc<dyn StorageBackend>,
    /// Per-statement execution aggregates (`rdb_statements`), keyed by
    /// literal-normalized fingerprint. Off by default.
    pub(crate) statements: crate::sysview::StatementStore,
    /// Live-session registry (`rdb_sessions`), shared with the session
    /// layer via [`Database::session_registry`].
    pub(crate) sessions: Arc<crate::sysview::SessionRegistry>,
    /// Instant this `Database` value was created — the anchor for the
    /// `rdb_uptime_seconds` gauge.
    pub(crate) created: std::time::Instant,
    /// Unix timestamp (seconds) of the most recent crash recovery
    /// performed by [`Database::open_with`]; 0 when the database never
    /// recovered. Exposed as the `rdb_recovery_timestamp_seconds` gauge.
    pub(crate) recovered_at: Counter,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// On-disk attachment of a durable database: the storage directory, the
/// open WAL appender, and the checkpoint generation bookkeeping.
#[derive(Debug)]
struct DurableState {
    /// Directory holding `wal.bin` and `snapshot.bin`.
    dir: PathBuf,
    /// Buffered appender positioned at the WAL's end.
    wal: Mutex<std::io::BufWriter<fs::File>>,
    /// Whether commits `fsync` the WAL (default true; benchmarks may
    /// disable it to isolate the logging cost from the disk cost).
    sync: FlagCell,
    /// Group-commit window: commits coalesced per `fsync` (≤ 1 syncs
    /// every commit, the default). With a window of N, each commit
    /// appends and flushes its frames immediately but the `fsync` is
    /// deferred until N commits have joined the group; the one
    /// `sync_data` then acknowledges them all.
    group_window: Counter,
    /// Commits appended since the last fsync — the open group.
    pending_commits: Counter,
    /// WAL length in bytes known to be fsynced: the group-commit sync
    /// ticket. A commit whose frames end at or before this offset is
    /// acknowledged durable.
    synced_len: Counter,
    /// WAL length in bytes appended and flushed to the OS.
    appended_len: Counter,
    /// Commits acknowledged by a group fsync (or subsumed by a
    /// checkpoint snapshot) so far.
    acked_commits: Counter,
    /// Checkpoint generation stamped in both the snapshot body and the
    /// WAL header. A WAL whose generation trails the snapshot's is
    /// leftover from before a checkpoint whose truncation never landed —
    /// recovery discards it.
    generation: u64,
    /// Monotonic transaction sequence number for WAL frames.
    txn_seq: Counter,
}

/// WAL file name inside a durable database's directory.
const WAL_FILE: &str = "wal.bin";
/// Snapshot file name inside a durable database's directory.
const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name; atomically renamed over [`SNAPSHOT_FILE`].
const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn storage_err(ctx: &str, e: &std::io::Error) -> DbError {
    DbError::Storage(format!("{ctx}: {e}"))
}

/// A deleted row captured for undo: its slot position, the row itself,
/// and its offset inside each index bucket.
type DeletedRowUndo = (usize, Row, Vec<(usize, usize)>);

/// One timed statement execution, as handed from the logged funnels to
/// [`Database::account_statement`].
struct StatementSample {
    /// Record into the per-statement store (tracking on + success).
    track: bool,
    /// Slow-query threshold in effect, if any.
    threshold: Option<std::time::Duration>,
    /// Wall-clock execution time.
    elapsed: std::time::Duration,
    /// Rows returned (queries) or affected (DML).
    rows: u64,
    /// WAL bytes appended while the statement ran.
    wal_bytes: u64,
    /// Rows scanned/inserted/deleted/updated by the statement.
    rows_touched: u64,
    /// `(phase, total ns)` span breakdown collected during the statement.
    phases: Vec<(&'static str, u64)>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database {
            tables: HashMap::new(),
            triggers: Vec::new(),
            stats: StatsCells::default(),
            next_id: IdCell::new(0),
            statement_cost: DurCell::default(),
            plan_cache: Mutex::new(PlanCache::default()),
            schema_epoch: Counter::new(0),
            planner_naive: FlagCell::new(false),
            txn: TxnState::default(),
            fault: FaultState::default(),
            durable: None,
            slow_threshold: OptDurCell::default(),
            slow_log: Mutex::new(Vec::new()),
            mvcc: MvccState::default(),
            storage: Arc::new(MemoryBackend),
            statements: crate::sysview::StatementStore::default(),
            sessions: Arc::new(crate::sysview::SessionRegistry::default()),
            created: std::time::Instant::now(),
            recovered_at: Counter::new(0),
        }
    }

    /// The live-session registry, shared with the session layer so
    /// `rdb_sessions` reflects sessions opened through
    /// [`SharedDatabase`](crate::session::SharedDatabase).
    pub(crate) fn session_registry(&self) -> Arc<crate::sysview::SessionRegistry> {
        self.sessions.clone()
    }

    /// Simulate a fixed per-*client*-statement overhead (the round-trip +
    /// SQL-compilation cost a JDBC application pays against a real RDBMS
    /// such as the paper's DB2 setup). Statements executed inside trigger
    /// bodies are not charged — they run inside the engine. Zero by
    /// default; the benchmark harness enables it so that strategies
    /// trading statement count against set-oriented work (tuple- vs
    /// table-based insert, Section 6.2) face the paper's trade-off.
    pub fn set_statement_cost(&mut self, cost: std::time::Duration) {
        self.statement_cost.set(cost);
    }

    /// The configured per-client-statement overhead.
    pub fn statement_cost(&self) -> std::time::Duration {
        self.statement_cost.get()
    }

    #[inline]
    fn charge_statement(&self) {
        let cost = self.statement_cost.get();
        if !cost.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < cost {
                std::hint::spin_loop();
            }
        }
    }

    /// Snapshot of the execution counters.
    pub fn stats(&self) -> Stats {
        self.stats.snapshot()
    }

    /// Zero all counters.
    pub fn reset_stats(&mut self) {
        self.stats = StatsCells::default();
    }

    /// Record statements whose wall-clock latency is at or above
    /// `threshold` in the slow-query log (SQL text, phase breakdown,
    /// rows touched). `None` disables the log. The log keeps the most
    /// recent [`obs::SLOW_QUERY_CAPACITY`](crate::obs) entries.
    pub fn set_slow_query_threshold(&mut self, threshold: Option<std::time::Duration>) {
        self.slow_threshold.set(threshold);
    }

    /// Drain the slow-query log, oldest first.
    pub fn take_slow_queries(&mut self) -> Vec<SlowQuery> {
        std::mem::take(&mut *self.slow_log.lock().unwrap())
    }

    /// The metrics registry: every [`Stats`] counter as an `rdb_*`
    /// counter metric, point-in-time gauges (tables, plan-cache entries,
    /// WAL size, transaction state), and — when tracing has recorded
    /// spans — per-phase latency series labelled by phase name.
    pub fn metrics(&self) -> Vec<Metric> {
        let s = self.stats.snapshot();
        let mut m = vec![
            Metric::counter(
                "rdb_client_statements_total",
                "Statements submitted through the public API",
                s.client_statements,
            ),
            Metric::counter(
                "rdb_total_statements_total",
                "All statements executed, including trigger bodies",
                s.total_statements,
            ),
            Metric::counter(
                "rdb_rows_scanned_total",
                "Rows visited by scans and hash-build passes",
                s.rows_scanned,
            ),
            Metric::counter("rdb_rows_inserted_total", "Rows inserted", s.rows_inserted),
            Metric::counter("rdb_rows_deleted_total", "Rows deleted", s.rows_deleted),
            Metric::counter("rdb_rows_updated_total", "Rows updated", s.rows_updated),
            Metric::counter(
                "rdb_trigger_firings_total",
                "Trigger firings (per-row triggers count once per row)",
                s.trigger_firings,
            ),
            Metric::counter(
                "rdb_index_lookups_total",
                "Probes answered by a persistent index",
                s.index_lookups,
            ),
            Metric::counter(
                "rdb_statements_parsed_total",
                "Statements compiled from SQL text",
                s.statements_parsed,
            ),
            Metric::counter(
                "rdb_plan_cache_hits_total",
                "execute/prepare calls answered by the plan cache",
                s.plan_cache_hits,
            ),
            Metric::counter(
                "rdb_plan_cache_misses_total",
                "execute/prepare calls that had to parse",
                s.plan_cache_misses,
            ),
            Metric::counter(
                "rdb_txn_commits_total",
                "Transactions committed (explicit plus autocommit)",
                s.txn_commits,
            ),
            Metric::counter(
                "rdb_txn_rollbacks_total",
                "Rollbacks applied (explicit plus statement-level)",
                s.txn_rollbacks,
            ),
            Metric::counter(
                "rdb_undo_records_total",
                "Undo records appended to the transaction log",
                s.undo_records,
            ),
            Metric::counter(
                "rdb_wal_records_total",
                "WAL records written to disk (frame markers included)",
                s.wal_records,
            ),
            Metric::counter(
                "rdb_wal_bytes_total",
                "Bytes appended to the WAL (framing included)",
                s.wal_bytes,
            ),
            Metric::counter(
                "rdb_wal_fsyncs_total",
                "fsync calls issued by WAL appends",
                s.wal_fsyncs,
            ),
            Metric::counter(
                "rdb_checkpoints_total",
                "Checkpoints taken (snapshot written, WAL truncated)",
                s.checkpoints,
            ),
            Metric::counter(
                "rdb_checkpoint_pages_written_total",
                "Pages written by checkpoints (dirty frames + meta, or snapshot size in pages)",
                s.checkpoint_pages_written,
            ),
            Metric::counter(
                "rdb_checkpoint_bytes_written_total",
                "Bytes written by checkpoints",
                s.checkpoint_bytes_written,
            ),
            Metric::counter(
                "rdb_recovered_txns_total",
                "Committed transactions replayed by the most recent open",
                s.recovered_txns,
            ),
            Metric::counter(
                "rdb_wal_replayed_bytes_total",
                "WAL payload bytes replayed by the most recent open",
                s.wal_replayed_bytes,
            ),
            Metric::counter(
                "rdb_recovery_micros_total",
                "Wall-clock recovery time of the most recent open (microseconds)",
                s.recovery_micros,
            ),
            Metric::counter(
                "rdb_plans_built_total",
                "Physical SELECT plans compiled by the planner",
                s.plans_built,
            ),
            Metric::counter(
                "rdb_seq_scans_total",
                "Sequential scans opened by the executor",
                s.seq_scans,
            ),
            Metric::counter(
                "rdb_index_scans_total",
                "Index scans opened by the executor",
                s.index_scans,
            ),
            Metric::counter(
                "rdb_hash_join_builds_total",
                "Hash-join build sides materialized",
                s.hash_join_builds,
            ),
            Metric::counter(
                "rdb_in_list_builds_total",
                "IN-list probe sets materialized (once per statement per list)",
                s.in_list_builds,
            ),
            Metric::counter(
                "rdb_exec_batches_total",
                "Row batches emitted by the vectorized executor",
                s.exec_batches,
            ),
            Metric::counter(
                "rdb_predicates_pushed_total",
                "Filter conjuncts pushed down into scans at plan time",
                s.predicates_pushed,
            ),
            Metric::counter(
                "rdb_range_seeks_total",
                "Range seeks answered by an ordered index",
                s.range_seeks,
            ),
            Metric::counter(
                "rdb_ordered_index_scans_total",
                "Scans that walked an ordered index in key order",
                s.ordered_index_scans,
            ),
            Metric::counter(
                "rdb_sorts_elided_total",
                "Sorts elided because an ordered index yielded index order",
                s.sorts_elided,
            ),
            Metric::counter(
                "rdb_stats_rebuilds_total",
                "ANALYZE statistics rebuilds",
                s.stats_rebuilds,
            ),
            Metric::gauge(
                "rdb_tables",
                "Tables in the catalog",
                self.tables.len() as u64,
            ),
            Metric::gauge(
                "rdb_plan_cache_entries",
                "Compiled plans cached by SQL text",
                self.plan_cache.lock().unwrap().plans.len() as u64,
            ),
            Metric::gauge(
                "rdb_wal_size_bytes",
                "Current WAL file size (0 when non-durable)",
                self.wal_size(),
            ),
            Metric::gauge(
                "rdb_in_transaction",
                "Whether an explicit transaction is open",
                self.txn.explicit as u64,
            ),
            Metric::gauge(
                "rdb_undo_log_len",
                "Undo records currently in the transaction log",
                self.txn.log.len() as u64,
            ),
            Metric::gauge(
                "rdb_slow_queries",
                "Slow-query records currently retained",
                self.slow_log.lock().unwrap().len() as u64,
            ),
            Metric::counter(
                "rdb_snapshot_reads_total",
                "Queries answered against a pinned MVCC snapshot",
                self.mvcc.snapshot_reads.get(),
            ),
            Metric::gauge(
                "rdb_active_sessions",
                "Sessions currently open on the shared database",
                self.mvcc.active_sessions.get(),
            ),
            Metric::gauge(
                "rdb_snapshot_versions_retained",
                "MVCC before-images retained across all tables",
                self.snapshot_versions_retained(),
            ),
            Metric::gauge(
                "rdb_uptime_seconds",
                "Seconds since this database instance was created",
                self.created.elapsed().as_secs(),
            ),
            Metric::gauge(
                "rdb_recovery_timestamp_seconds",
                "Unix time of the most recent crash recovery (0 = never)",
                self.recovered_at.get(),
            ),
            Metric::gauge(
                "rdb_statement_tracking_enabled",
                "Whether per-statement statistics collection is on",
                self.statements.enabled() as u64,
            ),
            Metric::gauge(
                "rdb_tracked_statements",
                "Statement fingerprints currently in the statistics store",
                self.statements.len() as u64,
            ),
            Metric::counter(
                "rdb_statement_store_evictions_total",
                "Fingerprints evicted by the statement store's capacity bound",
                self.statements.evictions(),
            ),
        ];
        if self.storage.kind() != BackendKind::Memory {
            let sm = self.storage.metrics();
            m.push(Metric::counter(
                "rdb_storage_pool_hits_total",
                "Buffer-pool page requests answered from a resident frame",
                sm.pool.hits,
            ));
            m.push(Metric::counter(
                "rdb_storage_pool_misses_total",
                "Buffer-pool page requests that read the page file",
                sm.pool.misses,
            ));
            m.push(Metric::counter(
                "rdb_storage_pool_evictions_total",
                "Buffer-pool frames reclaimed by the clock hand",
                sm.pool.evictions,
            ));
            m.push(Metric::counter(
                "rdb_storage_pool_writebacks_total",
                "Dirty frames written back at eviction time",
                sm.pool.writebacks,
            ));
            m.push(Metric::gauge(
                "rdb_storage_pool_frames",
                "Configured buffer-pool frame budget",
                sm.pool_frames,
            ));
            m.push(Metric::gauge(
                "rdb_storage_pages_allocated",
                "Highest allocated page id in the page store",
                sm.pages_allocated,
            ));
        }
        {
            // Writer-admission wait histogram (recorded in ns, reported
            // in µs to match the metric name).
            let h = self.mvcc.write_lock_wait_us.lock().unwrap();
            m.push(Metric::counter(
                "rdb_write_lock_wait_count",
                "Writer-admission waits recorded",
                h.count(),
            ));
            m.push(Metric::counter(
                "rdb_write_lock_wait_us_sum",
                "Total writer-admission wait time (microseconds)",
                h.sum_ns() / 1000,
            ));
            m.push(Metric::gauge(
                "rdb_write_lock_wait_us_p50",
                "Median writer-admission wait (microseconds)",
                h.p50_ns() / 1000,
            ));
            m.push(Metric::gauge(
                "rdb_write_lock_wait_us_p95",
                "95th-percentile writer-admission wait (microseconds)",
                h.p95_ns() / 1000,
            ));
        }
        // Grouped per family so the Prometheus renderer emits each
        // HELP/TYPE header once.
        let phases = obs::phase_stats();
        for ps in &phases {
            let mut metric = Metric::counter(
                "rdb_phase_spans_total",
                "Spans recorded per phase",
                ps.count,
            );
            metric.labels.push(("phase", ps.name.to_string()));
            m.push(metric);
        }
        for ps in &phases {
            let mut metric = Metric::counter(
                "rdb_phase_ns_total",
                "Total time spent per phase (nanoseconds)",
                ps.total_ns,
            );
            metric.labels.push(("phase", ps.name.to_string()));
            m.push(metric);
        }
        for ps in &phases {
            let mut metric = Metric::gauge(
                "rdb_phase_p95_ns",
                "95th-percentile phase latency estimate (nanoseconds)",
                ps.p95_ns,
            );
            metric.labels.push(("phase", ps.name.to_string()));
            m.push(metric);
        }
        m
    }

    /// The metrics registry rendered in the Prometheus text exposition
    /// format.
    pub fn metrics_text(&self) -> String {
        obs::render_prometheus(&self.metrics())
    }

    /// Name/value pairs for the `rdb_wal` system view: WAL counters from
    /// [`Stats`] plus the live durability state (group-commit window and
    /// progress offsets) when the database is durable.
    pub(crate) fn wal_view_rows(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        let mut rows = vec![
            ("durable", self.durable.is_some() as u64),
            ("wal_size_bytes", self.wal_size()),
            ("wal_records_total", s.wal_records),
            ("wal_bytes_total", s.wal_bytes),
            ("wal_fsyncs_total", s.wal_fsyncs),
            ("wal_replayed_bytes", s.wal_replayed_bytes),
        ];
        if let Some(d) = &self.durable {
            rows.push(("group_commit_window", d.group_window.get()));
            rows.push(("pending_commits", d.pending_commits.get()));
            rows.push(("acked_commits", d.acked_commits.get()));
            rows.push(("appended_len", d.appended_len.get()));
            rows.push(("synced_len", d.synced_len.get()));
            rows.push(("txn_seq", d.txn_seq.get()));
        }
        rows
    }

    /// Name/value pairs for the `rdb_checkpoints` system view:
    /// checkpoint counters plus the most recent recovery's telemetry.
    pub(crate) fn checkpoint_view_rows(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        let mut rows = vec![
            ("checkpoints_total", s.checkpoints),
            ("pages_written_total", s.checkpoint_pages_written),
            ("bytes_written_total", s.checkpoint_bytes_written),
            ("recovered_txns", s.recovered_txns),
            ("wal_replayed_bytes", s.wal_replayed_bytes),
            ("recovery_micros", s.recovery_micros),
            ("recovery_timestamp", self.recovered_at.get()),
        ];
        if let Some(d) = &self.durable {
            rows.push(("generation", d.generation));
        }
        rows
    }

    /// Best-effort per-table page count from the storage backend
    /// (`None` on the in-memory backend, which has no pages).
    pub(crate) fn table_pages_hint(&self, table: &str) -> Option<u64> {
        self.storage.table_pages(table)
    }

    /// The system-wide "next available id" counter used by the id
    /// allocation heuristics of paper Section 6.2. Reserves `count` ids and
    /// returns the first.
    pub fn allocate_ids(&self, count: i64) -> i64 {
        let start = self.next_id.get();
        self.next_id.set(start + count);
        if count != 0 {
            self.wal_push(WalRecord::NextId {
                value: start + count,
            });
            self.autoflush_id_counter();
        }
        start
    }

    /// Raise the id counter to at least `floor` (used after bulk loads).
    pub fn bump_next_id(&self, floor: i64) {
        if self.next_id.get() < floor {
            self.next_id.set(floor);
            self.wal_push(WalRecord::NextId { value: floor });
            self.autoflush_id_counter();
        }
    }

    /// Id allocation happens between statements, so outside an explicit
    /// transaction nothing else would flush the `NextId` record — a
    /// crash right after a bulk load must not recover a stale counter
    /// under persisted rows. Best-effort: on failure the record stays
    /// buffered and the next successful flush carries it.
    fn autoflush_id_counter(&self) {
        if !self.txn.explicit {
            let _ = self.wal_flush_commit();
        }
    }

    /// Current value of the id counter without allocating.
    pub fn peek_next_id(&self) -> i64 {
        self.next_id.get()
    }

    /// Access a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Names of all tables (lower-cased), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Registered triggers.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Look up the compiled plan for `sql`, parsing and caching on a
    /// miss. The trailing `bool` reports whether the cache hit — the
    /// per-statement statistics store counts hits per fingerprint.
    fn plan_for(&self, sql: &str) -> Result<(Arc<Stmt>, usize, Arc<PlanSlot>, bool)> {
        if let Some((stmt, params, slot)) = self.plan_cache.lock().unwrap().get(sql) {
            StatsCells::bump(&self.stats.plan_cache_hits, 1);
            return Ok((stmt, params, slot, true));
        }
        StatsCells::bump(&self.stats.plan_cache_misses, 1);
        StatsCells::bump(&self.stats.statements_parsed, 1);
        let parse_span = Span::enter("sql.parse");
        let (stmt, params) = parse_stmt_with_params(sql)?;
        drop(parse_span);
        let stmt = Arc::new(stmt);
        let slot = Arc::new(PlanSlot::default());
        self.plan_cache
            .lock()
            .unwrap()
            .insert(sql, stmt.clone(), params, slot.clone());
        Ok((stmt, params, slot, false))
    }

    /// Drop all cached statement plans and advance the schema epoch so
    /// physical plans held by prepared statements replan lazily.
    fn invalidate_plans(&self) {
        self.plan_cache.lock().unwrap().clear();
        self.schema_epoch.set(self.schema_epoch.get() + 1);
    }

    /// Disable (or re-enable) the planner's predicate pushdown and
    /// index-access selection. With `naive` set, a SELECT still picks
    /// hash joins where an equality conjunct allows (the interpreter did
    /// too) but re-evaluates the whole filter on every joined row and
    /// never probes an index or pushes a predicate into a scan — the
    /// pre-planner AST interpreter's strategy, which the experiments use
    /// as the A side of interpreter-vs-planner comparisons.
    pub fn set_planner_naive(&mut self, naive: bool) {
        self.planner_naive.set(naive);
        self.invalidate_plans();
    }

    /// Physical plan for a top-level SELECT: reuse the statement's plan
    /// slot when its epoch is current, otherwise compile and store. The
    /// returned plan is pinned in `ctx.keepalive` for the statement.
    fn select_plan_for(&self, q: &SelectStmt, ctx: &EvalCtx<'_>) -> Result<Arc<SelectPlan>> {
        let plan = match &ctx.plan_slot {
            Some(slot) => {
                let epoch = self.schema_epoch.get();
                let cached = slot
                    .plan
                    .lock()
                    .unwrap()
                    .as_ref()
                    .filter(|(e, _)| *e == epoch)
                    .map(|(_, p)| p.clone());
                match cached {
                    Some(p) => p,
                    None => {
                        let p = Arc::new(self.build_select_plan(q, ctx)?);
                        *slot.plan.lock().unwrap() = Some((epoch, p.clone()));
                        p
                    }
                }
            }
            None => Arc::new(self.build_select_plan(q, ctx)?),
        };
        ctx.keepalive.borrow_mut().push(plan.clone());
        Ok(plan)
    }

    /// Execute one SQL statement. Repeat executions of the same SQL text
    /// reuse the cached plan instead of re-parsing.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let (stmt, _, slot, hit) = self.plan_for(sql)?;
        StatsCells::bump(&self.stats.client_statements, 1);
        self.charge_statement();
        let mut ctx = EvalCtx::new();
        ctx.plan_slot = Some(slot);
        ctx.plan_cache_hit = hit;
        self.exec_client_logged(&stmt, &ctx, Some(sql))
    }

    /// Compile `sql` into a reusable [`PreparedStmt`]. `?` placeholders
    /// bind positionally; `$n` placeholders name their 1-based slot.
    /// Preparation does not count as a client statement — only
    /// [`Database::execute_prepared`] calls do.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStmt> {
        let (stmt, params, slot, _) = self.plan_for(sql)?;
        Ok(PreparedStmt {
            stmt,
            params,
            sql: sql.to_string(),
            slot,
        })
    }

    /// Execute a prepared statement with `params` bound to its
    /// placeholders. The statement is not re-parsed; parameter values are
    /// substituted during evaluation.
    pub fn execute_prepared(
        &mut self,
        stmt: &PreparedStmt,
        params: &[Value],
    ) -> Result<ExecResult> {
        if params.len() != stmt.params {
            return Err(DbError::Execution(format!(
                "prepared statement binds {} parameter(s), got {}: {}",
                stmt.params,
                params.len(),
                stmt.sql
            )));
        }
        StatsCells::bump(&self.stats.client_statements, 1);
        self.charge_statement();
        let mut ctx = EvalCtx::with_params(params);
        ctx.plan_slot = Some(stmt.slot.clone());
        // A prepared statement reuses its compiled plan by construction.
        ctx.plan_cache_hit = true;
        self.exec_client_logged(&stmt.stmt, &ctx, Some(&stmt.sql))
    }

    /// Execute a prepared read-only query and return its result set.
    /// Shares the `&self` read path with [`Database::query`].
    pub fn query_prepared(&self, stmt: &PreparedStmt, params: &[Value]) -> Result<ResultSet> {
        self.query_prepared_at(stmt, params, None)
    }

    /// [`Database::query_prepared`] against a pinned MVCC snapshot.
    pub fn query_prepared_at(
        &self,
        stmt: &PreparedStmt,
        params: &[Value],
        snapshot: Option<u64>,
    ) -> Result<ResultSet> {
        if params.len() != stmt.params {
            return Err(DbError::Execution(format!(
                "prepared statement binds {} parameter(s), got {}: {}",
                stmt.params,
                params.len(),
                stmt.sql
            )));
        }
        StatsCells::bump(&self.stats.client_statements, 1);
        self.charge_statement();
        let mut ctx = EvalCtx::with_params(params);
        ctx.plan_slot = Some(stmt.slot.clone());
        ctx.snapshot = snapshot;
        ctx.plan_cache_hit = true;
        self.query_logged(&stmt.stmt, &ctx, Some(&stmt.sql))
    }

    /// Execute a pre-parsed statement (counts as one client statement).
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<ExecResult> {
        StatsCells::bump(&self.stats.client_statements, 1);
        self.charge_statement();
        self.exec_client_logged(stmt, &EvalCtx::new(), None)
    }

    /// Execute a `;`-separated script.
    ///
    /// On failure the error is a [`DbError::ScriptStatement`] carrying
    /// the failing statement's 0-based index and SQL text. Under
    /// autocommit every statement *preceding* the failing one stays
    /// applied (each committed on its own); the failing statement itself
    /// rolls back atomically. If the script opened an explicit
    /// transaction (`BEGIN`) that is still uncommitted at the point of
    /// failure, the preceding statements of that transaction remain
    /// pending — the caller decides whether to `COMMIT` or `ROLLBACK`
    /// them.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<ExecResult>> {
        let stmts = parse_script_with_text(sql)?;
        StatsCells::bump(&self.stats.statements_parsed, stmts.len() as u64);
        let mut out = Vec::with_capacity(stmts.len());
        for (index, (s, text)) in stmts.iter().enumerate() {
            StatsCells::bump(&self.stats.client_statements, 1);
            self.charge_statement();
            match self.exec_client_logged(s, &EvalCtx::new(), Some(text)) {
                Ok(r) => out.push(r),
                Err(cause) => {
                    return Err(DbError::ScriptStatement {
                        index,
                        sql: text.clone(),
                        cause: Box::new(cause),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Run a read-only query (`SELECT`, `EXPLAIN`, or
    /// `EXPLAIN ANALYZE <select>`) and return its result set.
    ///
    /// Takes `&self`: concurrent sessions holding a shared reference can
    /// query simultaneously while a writer serializes through the
    /// `&mut self` statement paths (see [`crate::session`]). Reads see
    /// the live committed state; for a transaction-consistent view across
    /// statements use [`Database::query_at`] with a pinned snapshot.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        self.query_at(sql, None)
    }

    /// [`Database::query`] against a pinned MVCC snapshot (from
    /// [`Database::begin_snapshot`]): every table is reconstructed as of
    /// that epoch, so a sequence of `query_at` calls with the same
    /// snapshot observes one transaction-consistent state regardless of
    /// concurrently committing writers.
    pub fn query_at(&self, sql: &str, snapshot: Option<u64>) -> Result<ResultSet> {
        let (stmt, _, slot, hit) = self.plan_for(sql)?;
        StatsCells::bump(&self.stats.client_statements, 1);
        self.charge_statement();
        let mut ctx = EvalCtx::new();
        ctx.plan_slot = Some(slot);
        ctx.snapshot = snapshot;
        ctx.plan_cache_hit = hit;
        self.query_logged(&stmt, &ctx, Some(sql))
    }

    /// Run a statement that returns rows through the full `&mut`
    /// statement funnel — needed for `EXPLAIN ANALYZE` over DML, which
    /// really executes its statement and therefore mutates.
    pub fn query_mut(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)? {
            ExecResult::Rows(rs) => Ok(rs),
            other => Err(DbError::Execution(format!("not a query: {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // transactions
    // ------------------------------------------------------------------

    /// [`exec_client`] plus per-statement accounting. When a slow-query
    /// threshold is set the statement is timed, its spans are collected
    /// (even with tracing off), and on breach a [`SlowQuery`] record —
    /// attributed to the current session, snapshot epoch, and statement
    /// fingerprint — lands in the log with the SQL text (rendered from
    /// the AST when `sql` is not at hand), per-phase breakdown, and rows
    /// touched. When statement tracking is on, every successful
    /// execution is aggregated into the fingerprint store behind
    /// `rdb_statements`. With neither configured this is two atomic
    /// reads on top of [`exec_client`].
    fn exec_client_logged(
        &mut self,
        stmt: &Stmt,
        ctx: &EvalCtx<'_>,
        sql: Option<&str>,
    ) -> Result<ExecResult> {
        let threshold = self.slow_threshold.get();
        let track = self.statements.enabled();
        if threshold.is_none() && !track {
            return self.exec_client(stmt, ctx);
        }
        let touched_before = self.rows_touched();
        let wal_before = self.stats.wal_bytes.get();
        obs::stmt_collect_begin();
        let start = std::time::Instant::now();
        let result = self.exec_client(stmt, ctx);
        let elapsed = start.elapsed();
        let phases = obs::stmt_collect_end();
        let rows = match &result {
            Ok(ExecResult::Rows(rs)) => rs.rows.len() as u64,
            Ok(ExecResult::Affected(n)) => *n as u64,
            _ => 0,
        };
        self.account_statement(
            stmt,
            ctx,
            sql,
            StatementSample {
                track: track && result.is_ok(),
                threshold,
                elapsed,
                rows,
                wal_bytes: self.stats.wal_bytes.get() - wal_before,
                rows_touched: self.rows_touched() - touched_before,
                phases,
            },
        );
        result
    }

    /// [`exec_read`] plus per-statement accounting — the `&self` twin of
    /// [`exec_client_logged`], sharing the same thresholds, stores, and
    /// record shapes so read-path statements land in the same places.
    fn query_logged(&self, stmt: &Stmt, ctx: &EvalCtx<'_>, sql: Option<&str>) -> Result<ResultSet> {
        if ctx.snapshot.is_some() {
            StatsCells::bump(&self.mvcc.snapshot_reads, 1);
        }
        let threshold = self.slow_threshold.get();
        let track = self.statements.enabled();
        if threshold.is_none() && !track {
            return self.exec_read(stmt, ctx);
        }
        let touched_before = self.rows_touched();
        obs::stmt_collect_begin();
        let start = std::time::Instant::now();
        let result = self.exec_read(stmt, ctx);
        let elapsed = start.elapsed();
        let phases = obs::stmt_collect_end();
        let rows = result.as_ref().map_or(0, |rs| rs.rows.len() as u64);
        self.account_statement(
            stmt,
            ctx,
            sql,
            StatementSample {
                track: track && result.is_ok(),
                threshold,
                elapsed,
                rows,
                wal_bytes: 0,
                rows_touched: self.rows_touched() - touched_before,
                phases,
            },
        );
        result
    }

    /// Shared tail of the logged funnels: aggregate the sample into the
    /// statement store (when tracking) and into the slow-query log (when
    /// the threshold is breached). The fingerprint is read from the plan
    /// slot — computed at most once per SQL text — or computed on the
    /// spot for slot-less paths (`run_script`, `execute_stmt`).
    fn account_statement(
        &self,
        stmt: &Stmt,
        ctx: &EvalCtx<'_>,
        sql: Option<&str>,
        sample: StatementSample,
    ) {
        let slow = sample.threshold.is_some_and(|t| sample.elapsed >= t);
        if !sample.track && !slow {
            return;
        }
        let compute = || {
            Arc::new(match sql {
                Some(s) => crate::sysview::fingerprint(s),
                None => crate::sysview::fingerprint(&stmt_to_sql(stmt)),
            })
        };
        let fp = match &ctx.plan_slot {
            Some(slot) => slot.fingerprint.get_or_init(compute).clone(),
            None => compute(),
        };
        if sample.track {
            self.statements.record(
                &fp,
                sample.rows,
                sample.elapsed.as_nanos() as u64,
                ctx.plan_cache_hit,
                sample.wal_bytes,
            );
        }
        if slow {
            let mut log = self.slow_log.lock().unwrap();
            if log.len() >= obs::SLOW_QUERY_CAPACITY {
                log.remove(0);
            }
            log.push(SlowQuery {
                sql: match sql {
                    Some(s) => s.to_string(),
                    None => stmt_to_sql(stmt),
                },
                total_ns: sample.elapsed.as_nanos() as u64,
                phases: sample.phases,
                rows_touched: sample.rows_touched,
                session_id: crate::sysview::current_session(),
                snapshot_epoch: ctx.snapshot,
                fingerprint: fp.hash,
            });
        }
    }

    /// Read-only statement funnel: `SELECT`, plain `EXPLAIN`, and
    /// `EXPLAIN ANALYZE` over a SELECT. Mirrors [`exec_client`]'s
    /// bookkeeping (fault injection, statement counters, rollback stat
    /// on error) without touching the undo/redo machinery — a failed
    /// read has nothing to roll back.
    fn exec_read(&self, stmt: &Stmt, ctx: &EvalCtx<'_>) -> Result<ResultSet> {
        let _span = Span::enter("sql.execute");
        self.fault.check_statement()?;
        StatsCells::bump(&self.stats.total_statements, 1);
        let result = match stmt {
            Stmt::Select(q) => {
                let plan = self.select_plan_for(q, ctx)?;
                self.exec_select_plan(&plan, ctx)
            }
            Stmt::Explain { analyze, stmt } => match (*analyze, stmt.as_ref()) {
                (false, _) => self.explain_stmt(stmt, ctx),
                (true, Stmt::Select(q)) => self.explain_analyze_select(q, ctx),
                (true, _) => Err(DbError::Execution(
                    "EXPLAIN ANALYZE of DML executes the statement; \
                     use a write path (`execute`/`query_mut`)"
                        .into(),
                )),
            },
            other => Err(DbError::Execution(format!(
                "not a query: {}",
                stmt_to_sql(other)
            ))),
        };
        if result.is_err() {
            StatsCells::bump(&self.stats.txn_rollbacks, 1);
        }
        result
    }

    /// `EXPLAIN ANALYZE` for a SELECT: runs the plan with a per-operator
    /// profile and renders actuals. Shared by the `&self` read path and
    /// [`exec_explain_analyze`].
    fn explain_analyze_select(&self, q: &SelectStmt, ctx: &EvalCtx<'_>) -> Result<ResultSet> {
        let mut lines: Vec<String> = Vec::new();
        let start = std::time::Instant::now();
        let plan = self.select_plan_for(q, ctx)?;
        let prof = PlanProf::for_plan(&plan);
        self.exec_select_plan_prof(&plan, ctx, Some(&prof))?;
        let total_ns = start.elapsed().as_nanos() as u64;
        crate::plan::render_select_plan_prof(&plan, 0, &mut lines, Some(&prof));
        lines.push(format!("Execution time: {}", obs::fmt_ns(total_ns)));
        Ok(ResultSet {
            columns: vec!["plan".into()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    /// Rows scanned + inserted + deleted + updated so far (slow-query
    /// "rows touched" bookkeeping).
    fn rows_touched(&self) -> u64 {
        self.stats.rows_scanned.get()
            + self.stats.rows_inserted.get()
            + self.stats.rows_deleted.get()
            + self.stats.rows_updated.get()
    }

    /// Client-statement funnel: every public execution path lands here.
    ///
    /// Non-control statements run under statement-level atomicity — on
    /// error, everything the statement did (including trigger-body
    /// mutations, which share the same undo log) is rolled back before
    /// the error is returned, matching how a real RDBMS aborts a failed
    /// statement. Outside an explicit transaction a successful statement
    /// autocommits (its undo records are discarded).
    fn exec_client(&mut self, stmt: &Stmt, ctx: &EvalCtx<'_>) -> Result<ExecResult> {
        let _span = Span::enter("sql.execute");
        if stmt.is_txn_control() || matches!(stmt, Stmt::Checkpoint) {
            // Control statements manage the log; they are not run under
            // it and are exempt from the statement fault (so a test can
            // arm a fault and still COMMIT/ROLLBACK around it).
            return self.exec_internal(stmt, ctx, 0);
        }
        self.fault.check_statement()?;
        let mark = self.txn.mark();
        let redo_mark = self.txn.redo_mark();
        match self.exec_internal(stmt, ctx, 0) {
            Ok(r) => {
                if !self.txn.explicit {
                    // Autocommit: group-flush the statement's redo
                    // records as one committed WAL frame before
                    // declaring it durable and dropping the undo.
                    if let Err(e) = self.wal_flush_commit() {
                        self.rollback_to_mark(mark);
                        self.txn.redo.lock().unwrap().truncate(redo_mark);
                        StatsCells::bump(&self.stats.txn_rollbacks, 1);
                        return Err(e);
                    }
                    if !self.txn.log.is_empty() {
                        self.txn.log.clear();
                        StatsCells::bump(&self.stats.txn_commits, 1);
                        self.mvcc_commit();
                    }
                }
                Ok(r)
            }
            Err(e) => {
                self.rollback_to_mark(mark);
                self.txn.redo.lock().unwrap().truncate(redo_mark);
                StatsCells::bump(&self.stats.txn_rollbacks, 1);
                Err(e)
            }
        }
    }

    /// Open an explicit transaction. Statements until [`Database::commit`]
    /// or [`Database::rollback`] accumulate undo records as one unit.
    /// Nested transactions are not supported — use
    /// [`Database::savepoint`]. Direct API transaction control does not
    /// count as a client statement (it models JDBC's connection-level
    /// `setAutoCommit`/`commit`, not a round trip).
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.explicit {
            return Err(DbError::Txn(
                "already in a transaction (nested BEGIN; use SAVEPOINT)".into(),
            ));
        }
        debug_assert!(self.txn.log.is_empty(), "autocommit left undo records");
        self.txn.explicit = true;
        self.txn.start_next_id = self.next_id.get();
        Ok(())
    }

    /// Commit the open transaction, discarding its undo log. On a durable
    /// database the buffered redo records are group-flushed to the WAL as
    /// one `TxnBegin … TxnCommit` frame first; if that write fails the
    /// transaction stays open (nothing was made durable) and the error is
    /// surfaced.
    pub fn commit(&mut self) -> Result<()> {
        if !self.txn.explicit {
            return Err(DbError::Txn("COMMIT outside a transaction".into()));
        }
        let _span = Span::enter("txn.commit");
        self.wal_flush_commit()?;
        self.txn.reset();
        StatsCells::bump(&self.stats.txn_commits, 1);
        self.mvcc_commit();
        Ok(())
    }

    /// Roll the open transaction back entirely: every recorded effect is
    /// undone (newest first) and the id counter returns to its
    /// `BEGIN`-time value.
    pub fn rollback(&mut self) -> Result<()> {
        if !self.txn.explicit {
            return Err(DbError::Txn("ROLLBACK outside a transaction".into()));
        }
        self.rollback_to_mark(0);
        let id_changed = self.next_id.get() != self.txn.start_next_id;
        self.next_id.set(self.txn.start_next_id);
        let had_redo = !self.txn.redo.lock().unwrap().is_empty();
        self.txn.reset();
        if self.durable.is_some() && had_redo {
            // Audit marker only: the aborted frame was discarded
            // unflushed, so replay has nothing to skip. Best-effort — a
            // failed append must not fail the (already complete)
            // rollback.
            let txn = self.next_wal_txn();
            let mut buf = Vec::new();
            wal::encode_frame(&WalRecord::TxnAbort { txn }, &mut buf);
            // The abort marker is not a commit: it must not claim a
            // group-commit sync ticket (`commits: 0`), or a rollback in
            // the window would inflate `wal_pending_commits` and a later
            // group fsync would acknowledge a commit that never happened.
            let _ = self.wal_append(&buf, 1, 0);
        }
        if id_changed {
            // Re-assert the id counter (rolled back in memory) so the
            // durable image converges with it immediately: the aborted
            // transaction's NextId records were discarded with its frame.
            self.wal_push(WalRecord::NextId {
                value: self.next_id.get(),
            });
            self.autoflush_id_counter();
        }
        StatsCells::bump(&self.stats.txn_rollbacks, 1);
        Ok(())
    }

    /// Mark a savepoint inside the open transaction.
    pub fn savepoint(&mut self, name: &str) -> Result<()> {
        if !self.txn.explicit {
            return Err(DbError::Txn(format!(
                "SAVEPOINT {name} outside a transaction"
            )));
        }
        self.txn.savepoints.push(Savepoint {
            name: name.to_string(),
            mark: self.txn.mark(),
            next_id: self.next_id.get(),
            redo_mark: self.txn.redo_mark(),
        });
        Ok(())
    }

    /// Roll back to the most recent savepoint named `name`
    /// (case-insensitive). The savepoint stays active, so a transaction
    /// can retry past it; later savepoints are discarded.
    pub fn rollback_to(&mut self, name: &str) -> Result<()> {
        if !self.txn.explicit {
            return Err(DbError::Txn(format!(
                "ROLLBACK TO {name} outside a transaction"
            )));
        }
        let at = self
            .txn
            .savepoints
            .iter()
            .rposition(|s| s.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::Txn(format!("no savepoint named `{name}`")))?;
        let sp = self.txn.savepoints[at].clone();
        self.txn.savepoints.truncate(at + 1);
        self.rollback_to_mark(sp.mark);
        self.txn.redo.lock().unwrap().truncate(sp.redo_mark);
        self.next_id.set(sp.next_id);
        StatsCells::bump(&self.stats.txn_rollbacks, 1);
        Ok(())
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.explicit
    }

    /// Number of undo records currently in the transaction log.
    pub fn undo_log_len(&self) -> usize {
        self.txn.log.len()
    }

    /// Undo all records above `mark`, newest first. If any undone record
    /// was DDL the plan cache is invalidated, mirroring the forward DDL
    /// path (satellite: ROLLBACK of DDL must not leave stale plans).
    fn rollback_to_mark(&mut self, mark: usize) {
        let mut ddl = false;
        while self.txn.log.len() > mark {
            let rec = self.txn.log.pop().expect("len > mark");
            ddl |= rec.is_ddl();
            self.apply_undo(rec);
        }
        if ddl {
            self.invalidate_plans();
        }
    }

    /// Apply one undo record. Records are self-describing; a missing
    /// table means the sequence was corrupted, so the undo degrades to a
    /// no-op rather than panicking.
    fn apply_undo(&mut self, rec: UndoRecord) {
        match rec {
            UndoRecord::InsertedRow { table, pos } => {
                if let Some(t) = self.tables.get_mut(&table) {
                    t.undo_insert(pos);
                }
            }
            UndoRecord::DeletedRow {
                table,
                pos,
                row,
                index_offsets,
            } => {
                if let Some(t) = self.tables.get_mut(&table) {
                    t.restore_row(pos, row, &index_offsets);
                }
            }
            UndoRecord::UpdatedCell {
                table,
                pos,
                column,
                old,
                old_offset,
            } => {
                if let Some(t) = self.tables.get_mut(&table) {
                    t.unupdate_cell(pos, column, old, old_offset);
                }
            }
            UndoRecord::CreatedTable { name } => {
                self.tables.remove(&name);
                if self.storage.is_persistent() {
                    self.storage.drop_table(&name);
                }
            }
            UndoRecord::DroppedTable {
                name,
                table,
                triggers,
            } => {
                // The forward DROP reclaimed the table's pages; rebuild
                // them from the restored heap before reinstating it (the
                // stashed table still carries its backing, so later
                // mutations mirror as usual).
                if self.storage.is_persistent() {
                    self.storage.create_table(&name);
                    for (pos, row) in table.iter_live() {
                        self.storage.put_row(&name, pos as u64, row);
                    }
                }
                self.tables.insert(name, *table);
                for (at, trig) in triggers {
                    self.triggers.insert(at.min(self.triggers.len()), trig);
                }
            }
            UndoRecord::CreatedIndex {
                table,
                column,
                ordered,
            } => {
                if let Some(t) = self.tables.get_mut(&table) {
                    if ordered {
                        t.drop_ordered_index(column);
                    } else {
                        t.drop_index(column);
                    }
                }
            }
            UndoRecord::Analyzed { table, prior } => {
                if let Some(t) = self.tables.get_mut(&table) {
                    t.set_statistics(prior.map(|b| *b));
                }
            }
            UndoRecord::CreatedTrigger { name } => {
                self.triggers
                    .retain(|t| !t.name.eq_ignore_ascii_case(&name));
            }
            UndoRecord::DroppedTrigger { position, trigger } => {
                self.triggers
                    .insert(position.min(self.triggers.len()), *trigger);
            }
        }
    }

    /// Append an undo record for a forward mutation.
    fn record_undo(&mut self, rec: UndoRecord) {
        StatsCells::bump(&self.stats.undo_records, 1);
        self.txn.log.push(rec);
    }

    // ------------------------------------------------------------------
    // fault injection
    // ------------------------------------------------------------------

    /// Arm a one-shot deterministic fault: the `n`th client statement
    /// from now (1 = the very next one) fails with
    /// [`DbError::FaultInjected`] before executing. Transaction-control
    /// statements are not counted. The armed fault survives until it
    /// fires or [`Database::clear_faults`] is called.
    pub fn fail_after_statements(&mut self, n: u64) {
        self.fault.arm_statement(n);
    }

    /// Arm a one-shot fault on the `n`th row write (insert, delete, or
    /// cell update) to `table`, firing *mid-statement* — the
    /// statement-level rollback then has real partial work to undo,
    /// including any trigger-body writes already applied.
    pub fn fail_on_table_write(&mut self, table: &str, n: u64) {
        self.fault.arm_table_write(table, n);
    }

    /// Disarm all injected faults.
    pub fn clear_faults(&mut self) {
        self.fault.clear();
    }

    /// Whether any injected fault is still armed.
    pub fn faults_armed(&self) -> bool {
        self.fault.armed()
    }

    // ------------------------------------------------------------------
    // durable storage: WAL, checkpoint, recovery
    // ------------------------------------------------------------------

    /// Open (or create) a durable database rooted at `path`.
    ///
    /// Recovery loads `snapshot.bin` if present, then replays the WAL's
    /// committed frames on top: each complete `TxnBegin … TxnCommit`
    /// frame is applied, an uncommitted trailing frame (the transaction
    /// the crash caught in flight) is discarded, and a torn final record
    /// is truncated away. Replay is physical — rows land at the slot
    /// positions the log recorded — so the recovered state is
    /// byte-identical to the pre-crash committed state. A WAL whose
    /// generation trails the snapshot's is leftover from a checkpoint
    /// whose truncation never landed; its effects are already inside the
    /// snapshot, so it is discarded.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_with(path, StorageConfig::default())
    }

    /// [`Database::open`] with an explicit [`StorageConfig`]. With the
    /// paged backend selected, recovery prefers the page store's
    /// checkpoint meta (tables are rebuilt from the B-trees and hash
    /// indexes recomputed in slot order); a directory that only holds a
    /// full snapshot is migrated by seeding the page store from it. All
    /// table mutations from then on — including the WAL replay below —
    /// are mirrored into the store.
    pub fn open_with(path: impl AsRef<Path>, config: StorageConfig) -> Result<Database> {
        let _span = Span::enter("db.recover");
        let recover_start = std::time::Instant::now();
        let dir = path.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| storage_err("create database directory", &e))?;
        let mut db = Database::new();
        let mut generation = 0u64;
        let snap_path = dir.join(SNAPSHOT_FILE);
        match config.backend {
            BackendKind::Memory => {
                if snap_path.exists() {
                    let bytes =
                        fs::read(&snap_path).map_err(|e| storage_err("read snapshot", &e))?;
                    let snap = wal::decode_snapshot(&bytes)?;
                    generation = snap.generation;
                    db.restore_snapshot(snap)?;
                }
            }
            BackendKind::Paged => {
                let (store, meta) =
                    PagedStore::open(&dir, config.pool_frames, config.read_through)?;
                db.storage = Arc::new(store);
                match meta {
                    Some(meta) => {
                        generation = meta.generation;
                        db.restore_from_pages(&meta)?;
                    }
                    None => {
                        // First paged open of this directory. If the
                        // memory backend left a full snapshot, migrate
                        // it; either way, seed the page store from the
                        // in-memory tables and attach the mirrors.
                        if snap_path.exists() {
                            let bytes = fs::read(&snap_path)
                                .map_err(|e| storage_err("read snapshot", &e))?;
                            let snap = wal::decode_snapshot(&bytes)?;
                            generation = snap.generation;
                            db.restore_snapshot(snap)?;
                        }
                        db.seed_page_store();
                    }
                }
            }
        }
        let wal_path = dir.join(WAL_FILE);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| storage_err("open WAL", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| storage_err("read WAL", &e))?;
        let mut recovered = 0u64;
        let mut replayed_bytes = 0u64;
        let mut reset_wal = true;
        if bytes.len() >= wal::WAL_HEADER_LEN {
            if let Ok(contents) = wal::decode_wal(&bytes) {
                if contents.generation == generation {
                    replayed_bytes = contents.clean_len - wal::WAL_HEADER_LEN as u64;
                    recovered = db.replay(contents.records)?;
                    if (contents.clean_len as usize) < bytes.len() {
                        // Torn tail from a crash mid-append: discard it.
                        file.set_len(contents.clean_len)
                            .map_err(|e| storage_err("truncate torn WAL tail", &e))?;
                    }
                    reset_wal = false;
                }
            }
        }
        if reset_wal {
            file.set_len(0).map_err(|e| storage_err("reset WAL", &e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| storage_err("reset WAL", &e))?;
            file.write_all(&wal::encode_wal_header(generation))
                .map_err(|e| storage_err("write WAL header", &e))?;
            file.sync_data()
                .map_err(|e| storage_err("sync WAL header", &e))?;
        }
        let wal_len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| storage_err("seek WAL end", &e))?;
        // Replay ran with `durable` unset so nothing re-logged itself;
        // wipe its undo/stats bookkeeping before arming the appender.
        db.txn = TxnState::default();
        db.invalidate_plans();
        db.stats = StatsCells::default();
        db.stats.recovered_txns.set(recovered);
        db.stats.wal_replayed_bytes.set(replayed_bytes);
        db.stats
            .recovery_micros
            .set(recover_start.elapsed().as_micros() as u64);
        db.recovered_at.set(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        );
        db.durable = Some(DurableState {
            dir,
            wal: Mutex::new(std::io::BufWriter::new(file)),
            sync: FlagCell::new(true),
            group_window: Counter::new(1),
            pending_commits: Counter::new(0),
            synced_len: Counter::new(wal_len),
            appended_len: Counter::new(wal_len),
            acked_commits: Counter::new(0),
            generation,
            txn_seq: Counter::new(0),
        });
        Ok(db)
    }

    /// Flush and sync the WAL, then drop the database. An explicit
    /// transaction still open at close is discarded unflushed — exactly
    /// as a crash would discard it.
    pub fn close(mut self) -> Result<()> {
        if let Some(d) = self.durable.take() {
            let file = d
                .wal
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .into_inner()
                .map_err(|e| {
                    let e = e.into_error();
                    storage_err("flush WAL on close", &e)
                })?;
            file.sync_all()
                .map_err(|e| storage_err("sync WAL on close", &e))?;
        }
        Ok(())
    }

    /// Write a checkpoint: snapshot the full state (catalog, heaps,
    /// indexes, triggers, id counter) to `snapshot.bin` and truncate the
    /// WAL. The snapshot is written to a temporary file, synced, and
    /// renamed over the old one, so a crash at any point leaves either
    /// the old snapshot (with a usable or discarded-stale WAL) or the
    /// new one — never a torn snapshot.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.durable.is_none() {
            return Err(DbError::Storage(
                "CHECKPOINT requires a durable database (Database::open)".into(),
            ));
        }
        if self.txn.explicit {
            return Err(DbError::Txn(
                "CHECKPOINT inside an explicit transaction".into(),
            ));
        }
        let generation = self.durable.as_ref().expect("checked above").generation + 1;
        // A persistent backend commits an incremental checkpoint (dirty
        // pages + meta rename) and reports its work; the memory backend
        // declines and the engine writes the full snapshot as before.
        let report = if self.storage.is_persistent() {
            self.storage
                .checkpoint(&self.checkpoint_catalog(generation))?
        } else {
            None
        };
        let (cp_pages, cp_bytes) = match report {
            Some(r) => (r.pages_written, r.bytes_written),
            None => {
                let bytes = wal::encode_snapshot(&self.build_snapshot(generation));
                let d = self.durable.as_ref().expect("checked above");
                let tmp = d.dir.join(SNAPSHOT_TMP);
                let dest = d.dir.join(SNAPSHOT_FILE);
                let io = (|| -> std::io::Result<()> {
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&bytes)?;
                    f.sync_all()?;
                    drop(f);
                    fs::rename(&tmp, &dest)?;
                    // Make the rename durable before truncating the WAL
                    // the snapshot subsumes; a crash in between leaves a
                    // stale WAL, which the generation check at open
                    // discards.
                    if let Ok(dirf) = fs::File::open(&d.dir) {
                        let _ = dirf.sync_all();
                    }
                    Ok(())
                })();
                io.map_err(|e| storage_err("checkpoint", &e))?;
                let len = bytes.len() as u64;
                (len.div_ceil(crate::storage::pager::PAGE_SIZE as u64), len)
            }
        };
        let d = self.durable.as_mut().expect("checked above");
        let io = (|| -> std::io::Result<()> {
            let mut w = d.wal.lock().unwrap();
            w.flush()?;
            let f = w.get_mut();
            f.set_len(0)?;
            f.seek(SeekFrom::Start(0))?;
            f.write_all(&wal::encode_wal_header(generation))?;
            f.sync_data()?;
            Ok(())
        })();
        io.map_err(|e| storage_err("checkpoint", &e))?;
        d.generation = generation;
        // The snapshot subsumes everything appended so far, including
        // any group-commit window still waiting on its fsync — those
        // commits are now durably acknowledged by the snapshot itself.
        d.acked_commits
            .set(d.acked_commits.get() + d.pending_commits.get());
        d.pending_commits.set(0);
        d.appended_len.set(wal::WAL_HEADER_LEN as u64);
        d.synced_len.set(wal::WAL_HEADER_LEN as u64);
        StatsCells::bump(&self.stats.checkpoints, 1);
        StatsCells::bump(&self.stats.checkpoint_pages_written, cp_pages);
        StatsCells::bump(&self.stats.checkpoint_bytes_written, cp_bytes);
        Ok(())
    }

    /// Which storage backend the database runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.storage.kind()
    }

    /// Storage-layer counters: buffer-pool hits/misses/evictions, pages
    /// allocated, store LSN. All zero on the memory backend.
    pub fn storage_metrics(&self) -> StorageMetrics {
        self.storage.metrics()
    }

    /// Whether this database was opened durably ([`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Storage directory of a durable database.
    pub fn storage_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Toggle per-commit `fsync` of the WAL (on by default). With sync
    /// off commits are still written and flushed to the OS — a process
    /// crash loses nothing; only an OS crash can. Benchmarks use this to
    /// separate the logging cost from the disk-sync cost.
    pub fn set_wal_sync(&mut self, sync: bool) {
        if let Some(d) = &self.durable {
            d.sync.set(sync);
        }
    }

    /// Configure the group-commit window (the `set_wal_sync` extension):
    /// coalesce up to `window` commits per WAL `fsync`. Commits still
    /// append and flush their frames immediately — a process crash loses
    /// nothing — but the disk sync is deferred until `window` commits
    /// have joined the group, and the single `sync_data` acknowledges
    /// every one of them. `window <= 1` restores fsync-per-commit. Use
    /// [`Database::wal_sync`] to force the pending group out early.
    pub fn set_wal_group_commit(&mut self, window: u64) {
        if let Some(d) = &self.durable {
            d.group_window.set(window);
        }
    }

    /// Force the pending group-commit fsync now, acknowledging every
    /// commit waiting on the sync ticket. No-op when nothing is pending
    /// or the database is non-durable.
    pub fn wal_sync(&mut self) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let mut w = d.wal.lock().unwrap();
        w.flush().map_err(|e| storage_err("WAL flush", &e))?;
        if d.pending_commits.get() > 0 || d.synced_len.get() < d.appended_len.get() {
            let _fsync_span = Span::enter("wal.fsync");
            w.get_ref()
                .sync_data()
                .map_err(|e| storage_err("WAL fsync", &e))?;
            StatsCells::bump(&self.stats.wal_fsyncs, 1);
            d.synced_len.set(d.appended_len.get());
            d.acked_commits
                .set(d.acked_commits.get() + d.pending_commits.get());
            d.pending_commits.set(0);
        }
        Ok(())
    }

    /// Commits acknowledged durable so far: covered by a group fsync or
    /// subsumed by a checkpoint snapshot. With group commit active this
    /// trails [`Stats::txn_commits`] by up to `window - 1`.
    pub fn wal_acked_commits(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.acked_commits.get())
    }

    /// Commits appended and flushed but not yet covered by a group
    /// fsync — the open group waiting on the sync ticket.
    pub fn wal_pending_commits(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.pending_commits.get())
    }

    /// WAL length in bytes known to be fsynced (the group-commit sync
    /// ticket). Bytes past this offset survive a process crash but not
    /// necessarily an OS crash; crash tests truncate here to simulate
    /// losing the unsynced tail.
    pub fn wal_synced_len(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.synced_len.get())
    }

    /// Current WAL file size in bytes (0 for a non-durable database).
    pub fn wal_size(&self) -> u64 {
        self.durable
            .as_ref()
            .and_then(|d| fs::metadata(d.dir.join(WAL_FILE)).ok())
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Buffer a redo record for the current transaction (no-op on a
    /// non-durable database).
    fn wal_push(&self, rec: WalRecord) {
        if self.durable.is_some() {
            self.txn.redo.lock().unwrap().push(rec);
        }
    }

    fn next_wal_txn(&self) -> u64 {
        let d = self.durable.as_ref().expect("durable database");
        let n = d.txn_seq.get() + 1;
        d.txn_seq.set(n);
        n
    }

    /// Append pre-framed bytes to the WAL: always written and flushed to
    /// the OS (a process crash loses nothing committed). With sync mode
    /// on, the commit joins the group-commit window: the `fsync` is
    /// issued once the window fills, and that one `sync_data` advances
    /// the sync ticket past every commit in the group — acknowledging
    /// them all. A window of 1 (the default) degenerates to the classic
    /// fsync-per-commit behavior.
    fn wal_append(&self, bytes: &[u8], records: u64, commits: u64) -> Result<()> {
        let _span = Span::enter("wal.append");
        let d = self.durable.as_ref().expect("durable database");
        let mut w = d.wal.lock().unwrap();
        w.write_all(bytes)
            .map_err(|e| storage_err("WAL append", &e))?;
        w.flush().map_err(|e| storage_err("WAL flush", &e))?;
        d.appended_len
            .set(d.appended_len.get() + bytes.len() as u64);
        if d.sync.get() {
            // Only committed frames take a sync ticket; audit records
            // (TxnAbort markers) ride along and are covered by whatever
            // fsync the group eventually issues.
            d.pending_commits.set(d.pending_commits.get() + commits);
            if d.pending_commits.get() >= d.group_window.get().max(1) {
                let _fsync_span = Span::enter("wal.fsync");
                w.get_ref()
                    .sync_data()
                    .map_err(|e| storage_err("WAL fsync", &e))?;
                StatsCells::bump(&self.stats.wal_fsyncs, 1);
                d.synced_len.set(d.appended_len.get());
                d.acked_commits
                    .set(d.acked_commits.get() + d.pending_commits.get());
                d.pending_commits.set(0);
            }
        }
        StatsCells::bump(&self.stats.wal_records, records);
        StatsCells::bump(&self.stats.wal_bytes, bytes.len() as u64);
        Ok(())
    }

    /// Group-flush the buffered redo records as one committed WAL frame
    /// (`TxnBegin`, the records, `TxnCommit`). On failure the buffer is
    /// left intact — the caller decides whether to roll back; on success
    /// it is cleared. No-op when non-durable or nothing is buffered.
    fn wal_flush_commit(&self) -> Result<()> {
        if self.durable.is_none() || self.txn.redo.lock().unwrap().is_empty() {
            return Ok(());
        }
        let txn = self.next_wal_txn();
        let (buf, n) = {
            let records = self.txn.redo.lock().unwrap();
            let mut buf = Vec::new();
            wal::encode_frame(&WalRecord::TxnBegin { txn }, &mut buf);
            for r in records.iter() {
                wal::encode_frame(r, &mut buf);
            }
            wal::encode_frame(&WalRecord::TxnCommit { txn }, &mut buf);
            (buf, records.len() as u64 + 2)
        };
        self.wal_append(&buf, n, 1)?;
        self.txn.redo.lock().unwrap().clear();
        Ok(())
    }

    /// Reconstruct state from a decoded snapshot (open-time only).
    fn restore_snapshot(&mut self, snap: wal::Snapshot) -> Result<()> {
        for st in snap.tables {
            let schema = TableSchema {
                name: st.name,
                columns: st
                    .columns
                    .into_iter()
                    .map(|(name, ty)| ColumnDef { name, ty })
                    .collect(),
            };
            let mut indexes: HashMap<usize, HashMap<Value, Vec<usize>>> = HashMap::new();
            for (column, buckets) in st.indexes {
                let map = buckets
                    .into_iter()
                    .map(|(v, ps)| (v, ps.into_iter().map(|p| p as usize).collect()))
                    .collect();
                indexes.insert(column as usize, map);
            }
            let ordered: Vec<usize> = st.ordered.iter().map(|&c| c as usize).collect();
            if ordered.iter().any(|&ci| ci >= schema.columns.len()) {
                return Err(DbError::Storage(format!(
                    "snapshot orders unknown column of `{}`",
                    st.key
                )));
            }
            self.tables.insert(
                st.key,
                Table::from_parts(schema, st.slots, indexes, &ordered, st.stats),
            );
        }
        for sql in snap.triggers {
            let (stmt, _) = parse_stmt_with_params(&sql)?;
            self.exec_internal(&stmt, &EvalCtx::new(), 0)?;
        }
        self.next_id.set(snap.next_id);
        Ok(())
    }

    /// Reconstruct state from the page store's checkpoint meta
    /// (paged-backend open). Slot vectors are rebuilt at their recorded
    /// length (trailing tombstones preserved, so WAL replay lands rows at
    /// the logged positions) and hash indexes are recomputed with bucket
    /// entries in ascending slot order — logically identical to, but not
    /// necessarily bucket-order-identical with, the pre-crash image.
    fn restore_from_pages(&mut self, meta: &crate::storage::pager::StoreMeta) -> Result<()> {
        for tm in &meta.tables {
            let schema = TableSchema {
                name: tm.name.clone(),
                columns: tm
                    .columns
                    .iter()
                    .map(|(name, ty)| ColumnDef {
                        name: name.clone(),
                        ty: *ty,
                    })
                    .collect(),
            };
            let mut slots: Vec<Option<Row>> = vec![None; tm.slots_len as usize];
            for (pos, row) in self.storage.scan_table(&tm.key)? {
                let pos = pos as usize;
                if pos >= slots.len() {
                    slots.resize(pos + 1, None);
                }
                slots[pos] = Some(row);
            }
            let ordered: Vec<usize> = tm.ordered.iter().map(|&c| c as usize).collect();
            if ordered.iter().any(|&ci| ci >= schema.columns.len()) {
                return Err(DbError::Storage(format!(
                    "page meta orders unknown column of `{}`",
                    tm.key
                )));
            }
            let mut table =
                Table::from_parts(schema, slots, HashMap::new(), &ordered, tm.stats.clone());
            for &ci in &tm.indexed {
                let column = table
                    .schema
                    .columns
                    .get(ci as usize)
                    .map(|c| c.name.clone())
                    .ok_or_else(|| {
                        DbError::Storage(format!(
                            "page meta indexes unknown column {ci} of `{}`",
                            tm.key
                        ))
                    })?;
                table.create_index(&column)?;
            }
            table.attach_backing(self.storage.clone(), &tm.key);
            self.tables.insert(tm.key.clone(), table);
        }
        for sql in &meta.triggers {
            let (stmt, _) = parse_stmt_with_params(sql)?;
            self.exec_internal(&stmt, &EvalCtx::new(), 0)?;
        }
        self.next_id.set(meta.next_id);
        Ok(())
    }

    /// Seed a fresh page store from the in-memory tables and attach the
    /// write-through mirrors (first paged open of a directory).
    fn seed_page_store(&mut self) {
        let store = self.storage.clone();
        for (key, t) in self.tables.iter_mut() {
            store.create_table(key);
            for (pos, row) in t.iter_live() {
                store.put_row(key, pos as u64, row);
            }
            t.attach_backing(store.clone(), key);
        }
    }

    /// Triggers in registration order rendered back to `CREATE TRIGGER`
    /// SQL (checkpoint serialization).
    fn trigger_sql(&self) -> Vec<String> {
        self.triggers
            .iter()
            .map(|t| {
                stmt_to_sql(&Stmt::CreateTrigger {
                    name: t.name.clone(),
                    event: t.event,
                    table: t.table.clone(),
                    granularity: t.granularity,
                    body: (*t.body).clone(),
                })
            })
            .collect()
    }

    /// The catalog a persistent backend needs to commit a checkpoint it
    /// can later be reopened from: schemas, slot-vector lengths, indexed
    /// columns, triggers, and the id counter.
    fn checkpoint_catalog(&self, generation: u64) -> CheckpointCatalog {
        let mut tables: Vec<CatalogTable> = self
            .tables
            .iter()
            .map(|(key, t)| {
                let mut indexed: Vec<u32> = t.indexes_raw().keys().map(|&ci| ci as u32).collect();
                indexed.sort_unstable();
                CatalogTable {
                    key: key.clone(),
                    name: t.schema.name.clone(),
                    columns: t
                        .schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    slots_len: t.slots_raw().len() as u64,
                    indexed,
                    ordered: t.ordered_columns().iter().map(|&ci| ci as u32).collect(),
                    stats: t.statistics().cloned(),
                }
            })
            .collect();
        tables.sort_by(|a, b| a.key.cmp(&b.key));
        CheckpointCatalog {
            generation,
            next_id: self.next_id.get(),
            tables,
            triggers: self.trigger_sql(),
        }
    }

    /// Serialize the full state for a checkpoint. Tables and index
    /// buckets are sorted so the snapshot bytes are deterministic.
    fn build_snapshot(&self, generation: u64) -> wal::Snapshot {
        let mut tables: Vec<wal::SnapshotTable> = self
            .tables
            .iter()
            .map(|(key, t)| {
                let mut indexes: wal::IndexBuckets = t
                    .indexes_raw()
                    .iter()
                    .map(|(ci, buckets)| {
                        let mut bs: Vec<(Value, Vec<u64>)> = buckets
                            .iter()
                            .map(|(v, ps)| (v.clone(), ps.iter().map(|&p| p as u64).collect()))
                            .collect();
                        bs.sort_by(|a, b| a.0.sort_cmp(&b.0));
                        (*ci as u32, bs)
                    })
                    .collect();
                indexes.sort_by_key(|(ci, _)| *ci);
                wal::SnapshotTable {
                    key: key.clone(),
                    name: t.schema.name.clone(),
                    columns: t
                        .schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    slots: t.slots_raw().to_vec(),
                    indexes,
                    ordered: t.ordered_columns().iter().map(|&ci| ci as u32).collect(),
                    stats: t.statistics().cloned(),
                }
            })
            .collect();
        tables.sort_by(|a, b| a.key.cmp(&b.key));
        wal::Snapshot {
            generation,
            next_id: self.next_id.get(),
            tables,
            triggers: self.trigger_sql(),
        }
    }

    /// Apply the WAL's records: complete `TxnBegin … TxnCommit` frames
    /// are applied, aborted or uncommitted (trailing) frames discarded,
    /// top-level records applied immediately. Returns the number of
    /// committed transactions replayed.
    fn replay(&mut self, records: Vec<WalRecord>) -> Result<u64> {
        let mut pending: Vec<WalRecord> = Vec::new();
        let mut in_txn = false;
        let mut committed = 0u64;
        for rec in records {
            match rec {
                WalRecord::TxnBegin { .. } => {
                    pending.clear();
                    in_txn = true;
                }
                WalRecord::TxnCommit { .. } => {
                    for r in pending.drain(..) {
                        self.apply_wal_record(r)?;
                    }
                    if in_txn {
                        committed += 1;
                    }
                    in_txn = false;
                }
                WalRecord::TxnAbort { .. } => {
                    pending.clear();
                    in_txn = false;
                }
                other if in_txn => pending.push(other),
                other => self.apply_wal_record(other)?,
            }
        }
        // A trailing frame with no commit is the transaction the crash
        // caught in flight: `pending` is simply dropped.
        Ok(committed)
    }

    /// Redo one record. DML is physical (slot positions recorded at log
    /// time); trigger-fired statements were logged as their own records,
    /// so triggers are not re-fired here. DDL replays as SQL text.
    fn apply_wal_record(&mut self, rec: WalRecord) -> Result<()> {
        let missing =
            |t: &str| DbError::Storage(format!("WAL replay references missing table `{t}`"));
        match rec {
            WalRecord::Insert { table, row } => {
                self.tables
                    .get_mut(&table)
                    .ok_or_else(|| missing(&table))?
                    .insert(row)?;
            }
            WalRecord::Delete { table, pos } => {
                self.tables
                    .get_mut(&table)
                    .ok_or_else(|| missing(&table))?
                    .delete(pos as usize);
            }
            WalRecord::Update {
                table,
                pos,
                column,
                value,
            } => {
                self.tables
                    .get_mut(&table)
                    .ok_or_else(|| missing(&table))?
                    .update_cell(pos as usize, column as usize, value)?;
            }
            WalRecord::Ddl { sql } => {
                let (stmt, _) = parse_stmt_with_params(&sql)?;
                self.exec_internal(&stmt, &EvalCtx::new(), 0)?;
            }
            WalRecord::NextId { value } => self.next_id.set(value),
            WalRecord::TxnBegin { .. }
            | WalRecord::TxnCommit { .. }
            | WalRecord::TxnAbort { .. } => {}
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // statement dispatch
    // ------------------------------------------------------------------

    fn exec_internal(
        &mut self,
        stmt: &Stmt,
        ctx: &EvalCtx<'_>,
        depth: usize,
    ) -> Result<ExecResult> {
        if depth > MAX_TRIGGER_DEPTH {
            return Err(DbError::TriggerDepth(format!("depth {depth}")));
        }
        StatsCells::bump(&self.stats.total_statements, 1);
        // Any DDL may change what cached plans would resolve to (tables,
        // indexes, triggers), so the plan cache is dropped wholesale.
        let is_ddl = matches!(
            stmt,
            Stmt::CreateTable { .. }
                | Stmt::DropTable { .. }
                | Stmt::CreateIndex { .. }
                | Stmt::Analyze { .. }
                | Stmt::CreateTrigger { .. }
                | Stmt::DropTrigger { .. }
        );
        if is_ddl {
            self.invalidate_plans();
        }
        let result = match stmt {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let key = name.to_ascii_lowercase();
                if self.tables.contains_key(&key) {
                    if *if_not_exists {
                        return Ok(ExecResult::Ddl);
                    }
                    return Err(DbError::Schema(format!("table `{name}` already exists")));
                }
                let mut seen = HashSet::new();
                for c in columns {
                    if !seen.insert(c.name.to_ascii_lowercase()) {
                        return Err(DbError::Schema(format!(
                            "duplicate column `{}` in `{name}`",
                            c.name
                        )));
                    }
                }
                self.tables.insert(
                    key.clone(),
                    Table::new(TableSchema {
                        name: name.clone(),
                        columns: columns.clone(),
                    }),
                );
                if self.storage.is_persistent() {
                    self.storage.create_table(&key);
                    if let Some(t) = self.tables.get_mut(&key) {
                        t.attach_backing(self.storage.clone(), &key);
                    }
                }
                self.record_undo(UndoRecord::CreatedTable { name: key });
                Ok(ExecResult::Ddl)
            }
            Stmt::DropTable { name, if_exists } => {
                let key = name.to_ascii_lowercase();
                match self.tables.remove(&key) {
                    None => {
                        if !*if_exists {
                            return Err(DbError::NoSuchTable(name.clone()));
                        }
                    }
                    Some(table) => {
                        // Capture the triggers removed with the table at
                        // their positions so undo can splice them back.
                        let mut removed = Vec::new();
                        let mut kept = Vec::with_capacity(self.triggers.len());
                        for (at, trig) in std::mem::take(&mut self.triggers).into_iter().enumerate()
                        {
                            if trig.table == key {
                                removed.push((at, trig));
                            } else {
                                kept.push(trig);
                            }
                        }
                        self.triggers = kept;
                        if self.storage.is_persistent() {
                            self.storage.drop_table(&key);
                        }
                        self.record_undo(UndoRecord::DroppedTable {
                            name: key,
                            table: Box::new(table),
                            triggers: removed,
                        });
                    }
                }
                Ok(ExecResult::Ddl)
            }
            Stmt::CreateIndex {
                table,
                column,
                ordered,
                ..
            } => {
                let key = table.to_ascii_lowercase();
                let t = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let ci = t.schema.column_index(column);
                let was_new = ci
                    .map(|ci| {
                        if *ordered {
                            !t.has_ordered_index(ci)
                        } else {
                            !t.has_index(ci)
                        }
                    })
                    .unwrap_or(false);
                if *ordered {
                    t.create_ordered_index(column)?;
                } else {
                    t.create_index(column)?;
                }
                if was_new {
                    self.record_undo(UndoRecord::CreatedIndex {
                        table: key,
                        column: ci.expect("checked above"),
                        ordered: *ordered,
                    });
                }
                Ok(ExecResult::Ddl)
            }
            Stmt::Analyze { table } => {
                let keys: Vec<String> = match table {
                    Some(name) => {
                        let key = name.to_ascii_lowercase();
                        if !self.tables.contains_key(&key) {
                            return Err(DbError::NoSuchTable(name.clone()));
                        }
                        vec![key]
                    }
                    None => {
                        let mut all: Vec<String> = self.tables.keys().cloned().collect();
                        all.sort();
                        all
                    }
                };
                for key in keys {
                    let t = self.tables.get_mut(&key).expect("existence checked above");
                    let prior = t.analyze();
                    StatsCells::bump(&self.stats.stats_rebuilds, 1);
                    self.record_undo(UndoRecord::Analyzed {
                        table: key,
                        prior: prior.map(Box::new),
                    });
                }
                Ok(ExecResult::Ddl)
            }
            Stmt::CreateTrigger {
                name,
                event,
                table,
                granularity,
                body,
            } => {
                let key = table.to_ascii_lowercase();
                if !self.tables.contains_key(&key) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                if self
                    .triggers
                    .iter()
                    .any(|t| t.name.eq_ignore_ascii_case(name))
                {
                    return Err(DbError::Schema(format!("trigger `{name}` already exists")));
                }
                self.triggers.push(Trigger {
                    name: name.clone(),
                    event: *event,
                    table: key,
                    granularity: *granularity,
                    body: Arc::new(body.clone()),
                });
                self.record_undo(UndoRecord::CreatedTrigger { name: name.clone() });
                Ok(ExecResult::Ddl)
            }
            Stmt::DropTrigger { name } => {
                let at = self
                    .triggers
                    .iter()
                    .position(|t| t.name.eq_ignore_ascii_case(name))
                    .ok_or_else(|| DbError::Schema(format!("no trigger `{name}`")))?;
                let trigger = self.triggers.remove(at);
                self.record_undo(UndoRecord::DroppedTrigger {
                    position: at,
                    trigger: Box::new(trigger),
                });
                Ok(ExecResult::Ddl)
            }
            Stmt::Insert {
                table,
                columns,
                source,
            } => self.exec_insert(table, columns.as_deref(), source, ctx, depth),
            Stmt::Delete { table, filter } => self.exec_delete(table, filter.as_ref(), ctx, depth),
            Stmt::Update {
                table,
                sets,
                filter,
            } => self.exec_update(table, sets, filter.as_ref(), ctx),
            Stmt::Select(q) => {
                let plan = self.select_plan_for(q, ctx)?;
                Ok(ExecResult::Rows(self.exec_select_plan(&plan, ctx)?))
            }
            Stmt::Explain { analyze, stmt } => {
                if *analyze {
                    Ok(ExecResult::Rows(
                        self.exec_explain_analyze(stmt, ctx, depth)?,
                    ))
                } else {
                    Ok(ExecResult::Rows(self.explain_stmt(stmt, ctx)?))
                }
            }
            Stmt::Begin | Stmt::Commit | Stmt::Rollback { .. } | Stmt::Savepoint { .. } => {
                if depth > 0 {
                    return Err(DbError::Txn(
                        "transaction control inside a trigger body".into(),
                    ));
                }
                match stmt {
                    Stmt::Begin => self.begin()?,
                    Stmt::Commit => self.commit()?,
                    Stmt::Rollback { to_savepoint } => match to_savepoint {
                        Some(name) => self.rollback_to(name)?,
                        None => self.rollback()?,
                    },
                    Stmt::Savepoint { name } => self.savepoint(name)?,
                    _ => unreachable!("outer match covers txn control"),
                }
                Ok(ExecResult::Txn)
            }
            Stmt::Checkpoint => {
                if depth > 0 {
                    return Err(DbError::Txn("CHECKPOINT inside a trigger body".into()));
                }
                self.checkpoint()?;
                Ok(ExecResult::Checkpoint)
            }
        };
        // DDL is redone from the WAL as SQL text: one `Ddl` record per
        // successful statement, rendered by the exact-roundtrip printer.
        // (No-op DDL such as `CREATE TABLE IF NOT EXISTS` on an existing
        // table returns early above and is not logged.)
        if is_ddl && result.is_ok() {
            self.wal_push(WalRecord::Ddl {
                sql: stmt_to_sql(stmt),
            });
        }
        result
    }

    /// `EXPLAIN ANALYZE`: execute the statement for real and render its
    /// plan tree annotated with per-operator actuals (rows produced,
    /// loop counts, wall time) against the planner's estimates. As in
    /// PostgreSQL the statement really runs, so DML under
    /// `EXPLAIN ANALYZE` mutates the database. Per-operator profiling
    /// state is allocated per execution and never stored on the
    /// (possibly cached, shared) plan.
    fn exec_explain_analyze(
        &mut self,
        stmt: &Stmt,
        ctx: &EvalCtx<'_>,
        depth: usize,
    ) -> Result<ResultSet> {
        let mut lines: Vec<String> = Vec::new();
        let start = std::time::Instant::now();
        match stmt {
            Stmt::Select(q) => return self.explain_analyze_select(q, ctx),
            other => {
                // DML (and DDL) has no cursor tree; report the plan the
                // non-analyzing EXPLAIN would print plus an `Actual:`
                // line derived from the statement's stats deltas.
                let before = self.stats.snapshot();
                let result = self.exec_internal(other, ctx, depth)?;
                let total_ns = start.elapsed().as_nanos() as u64;
                let after = self.stats.snapshot();
                self.explain_into(other, ctx, 0, &mut lines)?;
                lines.push(format!(
                    "Actual: rows={} scanned={} index_lookups={} triggers={} time={}",
                    result.affected(),
                    after.rows_scanned - before.rows_scanned,
                    after.index_lookups - before.index_lookups,
                    after.trigger_firings - before.trigger_firings,
                    obs::fmt_ns(total_ns)
                ));
            }
        }
        Ok(ResultSet {
            columns: vec!["plan".into()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn exec_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
        ctx: &EvalCtx<'_>,
        depth: usize,
    ) -> Result<ExecResult> {
        // Evaluate source rows first (they may read the target table).
        let source_rows: Vec<Row> = match source {
            InsertSource::Values(rows) => {
                let env = RowEnv::default();
                rows.iter()
                    .map(|exprs| {
                        exprs
                            .iter()
                            .map(|e| self.eval_expr(e, &env, ctx, &HashMap::new()))
                            .collect::<Result<Row>>()
                    })
                    .collect::<Result<Vec<Row>>>()?
            }
            InsertSource::Select(q) => self.eval_select(q, ctx)?.rows,
        };
        let key = table.to_ascii_lowercase();
        let (arity, col_map) = {
            let t = self
                .tables
                .get(&key)
                .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
            let arity = t.arity();
            let col_map: Option<Vec<usize>> = match columns {
                None => None,
                Some(cols) => Some(
                    cols.iter()
                        .map(|c| {
                            t.schema
                                .column_index(c)
                                .ok_or_else(|| DbError::NoSuchColumn(format!("{table}.{c}")))
                        })
                        .collect::<Result<Vec<usize>>>()?,
                ),
            };
            (arity, col_map)
        };
        let has_insert_triggers = self
            .triggers
            .iter()
            .any(|t| t.table == key && t.event == TriggerEvent::Insert);
        let mut inserted_rows: Vec<Row> = Vec::new();
        for src in source_rows {
            let full = match &col_map {
                None => {
                    if src.len() != arity {
                        return Err(DbError::Schema(format!(
                            "INSERT into {table}: {} values for {arity} columns",
                            src.len()
                        )));
                    }
                    src
                }
                Some(map) => {
                    if src.len() != map.len() {
                        return Err(DbError::Schema(format!(
                            "INSERT into {table}: {} values for {} named columns",
                            src.len(),
                            map.len()
                        )));
                    }
                    let mut full = vec![Value::Null; arity];
                    for (v, &ci) in src.into_iter().zip(map.iter()) {
                        full[ci] = v;
                    }
                    full
                }
            };
            inserted_rows.push(full);
        }
        let n = inserted_rows.len();
        // Rows applied so far are recorded in the undo log even when the
        // statement fails partway (arity error, injected fault): the
        // client funnel rolls the partial work back before surfacing the
        // error.
        let mut positions = Vec::with_capacity(n);
        let mut failure = None;
        let mvcc_epoch = self.mvcc.enabled().then(|| self.mvcc.write_epoch());
        {
            let t = self.tables.get_mut(&key).unwrap();
            if has_insert_triggers {
                for row in &inserted_rows {
                    if let Err(e) = self.fault.check_table_write(&key) {
                        failure = Some(e);
                        break;
                    }
                    match t.insert(row.clone()) {
                        Ok(p) => positions.push(p),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            } else {
                // No trigger needs the rows afterwards: move them in.
                for row in std::mem::take(&mut inserted_rows) {
                    if let Err(e) = self.fault.check_table_write(&key) {
                        failure = Some(e);
                        break;
                    }
                    match t.insert(row) {
                        Ok(p) => positions.push(p),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        let applied = positions.len();
        if let Some(epoch) = mvcc_epoch {
            // Inserted slots had no prior row: snapshots older than this
            // epoch must reconstruct them as absent.
            let t = self.tables.get_mut(&key).expect("resolved above");
            for &pos in &positions {
                t.note_insert(epoch, pos);
            }
        }
        if self.durable.is_some() {
            // Redo is physical: the row as it landed, at its slot. A
            // partially-applied failing statement's records are truncated
            // by the client funnel along with the undo.
            let t = self.tables.get(&key).expect("resolved above");
            let mut redo = self.txn.redo.lock().unwrap();
            for &pos in &positions {
                if let Some(row) = t.row(pos) {
                    redo.push(WalRecord::Insert {
                        table: key.clone(),
                        row: row.clone(),
                    });
                }
            }
        }
        for pos in positions {
            self.record_undo(UndoRecord::InsertedRow {
                table: key.clone(),
                pos,
            });
        }
        if let Some(e) = failure {
            return Err(e);
        }
        StatsCells::bump(&self.stats.rows_inserted, applied as u64);
        if n > 0 && has_insert_triggers {
            self.fire_triggers(&key, TriggerEvent::Insert, &inserted_rows, depth)?;
        }
        Ok(ExecResult::Affected(n))
    }

    fn exec_delete(
        &mut self,
        table: &str,
        filter: Option<&Expr>,
        ctx: &EvalCtx<'_>,
        depth: usize,
    ) -> Result<ExecResult> {
        let key = table.to_ascii_lowercase();
        let positions = self.select_positions(&key, filter, ctx)?;
        let has_delete_triggers = self
            .triggers
            .iter()
            .any(|t| t.table == key && t.event == TriggerEvent::Delete);
        let mut failure = None;
        let mvcc_epoch = self.mvcc.enabled().then(|| self.mvcc.write_epoch());
        let deleted: Vec<DeletedRowUndo> = {
            let t = self.tables.get_mut(&key).unwrap();
            let mut out = Vec::with_capacity(positions.len());
            for &p in &positions {
                if let Err(e) = self.fault.check_table_write(&key) {
                    failure = Some(e);
                    break;
                }
                if let Some(epoch) = mvcc_epoch {
                    // Before-image of the slot, captured ahead of the
                    // physical delete.
                    t.note_version(epoch, p);
                }
                if let Some((row, offsets)) = t.delete_with_undo(p) {
                    out.push((p, row, offsets));
                }
            }
            out
        };
        let n = deleted.len();
        if self.durable.is_some() {
            let mut redo = self.txn.redo.lock().unwrap();
            for (pos, _, _) in &deleted {
                redo.push(WalRecord::Delete {
                    table: key.clone(),
                    pos: *pos as u64,
                });
            }
        }
        // Triggers bind OLD per deleted row; clone only when one exists.
        let mut trigger_rows: Vec<Row> = Vec::new();
        for (pos, row, index_offsets) in deleted {
            if has_delete_triggers {
                trigger_rows.push(row.clone());
            }
            self.record_undo(UndoRecord::DeletedRow {
                table: key.clone(),
                pos,
                row,
                index_offsets,
            });
        }
        if let Some(e) = failure {
            return Err(e);
        }
        StatsCells::bump(&self.stats.rows_deleted, n as u64);
        if !trigger_rows.is_empty() {
            self.fire_triggers(&key, TriggerEvent::Delete, &trigger_rows, depth)?;
        }
        Ok(ExecResult::Affected(n))
    }

    fn exec_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
        ctx: &EvalCtx<'_>,
    ) -> Result<ExecResult> {
        let key = table.to_ascii_lowercase();
        let positions = self.select_positions(&key, filter, ctx)?;
        // Resolve target columns and evaluate per-row assignments against
        // the *old* row, then apply.
        let (columns, set_indices) = {
            let t = self.tables.get(&key).unwrap();
            let cols = t.schema.column_names();
            let idx: Vec<usize> = sets
                .iter()
                .map(|(c, _)| {
                    t.schema
                        .column_index(c)
                        .ok_or_else(|| DbError::NoSuchColumn(format!("{table}.{c}")))
                })
                .collect::<Result<Vec<usize>>>()?;
            (cols, idx)
        };
        let mut pending: Vec<(usize, Vec<Value>)> = Vec::with_capacity(positions.len());
        // Layout built once; only the row values change per tuple.
        let mut env = RowEnv::single(table, &columns, &[]);
        for &p in &positions {
            let row = self.tables.get(&key).unwrap().row(p).ok_or_else(|| {
                DbError::Execution(format!("row vanished during UPDATE at slot {p}"))
            })?;
            env.set_values(row);
            let vals: Vec<Value> = sets
                .iter()
                .map(|(_, e)| self.eval_expr(e, &env, ctx, &HashMap::new()))
                .collect::<Result<Vec<Value>>>()?;
            pending.push((p, vals));
        }
        let n = pending.len();
        let mut failure = None;
        let mut cell_undo: Vec<(usize, usize, Value, Option<usize>)> = Vec::new();
        let mvcc_epoch = self.mvcc.enabled().then(|| self.mvcc.write_epoch());
        {
            let t = self.tables.get_mut(&key).unwrap();
            'rows: for (p, vals) in pending {
                if let Some(epoch) = mvcc_epoch {
                    // One before-image per row, ahead of the first cell
                    // write; the visibility scan keeps the oldest entry
                    // per slot, so later statements in the same epoch
                    // don't clobber it.
                    t.note_version(epoch, p);
                }
                for (&ci, v) in set_indices.iter().zip(vals) {
                    if let Err(e) = self.fault.check_table_write(&key) {
                        failure = Some(e);
                        break 'rows;
                    }
                    match t.update_cell_with_undo(p, ci, v) {
                        Ok((old, old_offset)) => cell_undo.push((p, ci, old, old_offset)),
                        Err(e) => {
                            failure = Some(e);
                            break 'rows;
                        }
                    }
                }
            }
        }
        if self.durable.is_some() {
            // Log the value as written (read back from the table), one
            // record per cell, in application order.
            let t = self.tables.get(&key).expect("resolved above");
            let mut redo = self.txn.redo.lock().unwrap();
            for (pos, ci, _, _) in &cell_undo {
                if let Some(row) = t.row(*pos) {
                    redo.push(WalRecord::Update {
                        table: key.clone(),
                        pos: *pos as u64,
                        column: *ci as u32,
                        value: row[*ci].clone(),
                    });
                }
            }
        }
        for (pos, column, old, old_offset) in cell_undo {
            self.record_undo(UndoRecord::UpdatedCell {
                table: key.clone(),
                pos,
                column,
                old,
                old_offset,
            });
        }
        if let Some(e) = failure {
            return Err(e);
        }
        StatsCells::bump(&self.stats.rows_updated, n as u64);
        Ok(ExecResult::Affected(n))
    }

    /// Slot positions of rows in `table` satisfying `filter`. Uses a
    /// persistent index when the filter contains an `indexed_col = expr`
    /// conjunct whose right side is row-independent.
    fn select_positions(
        &self,
        key: &str,
        filter: Option<&Expr>,
        ctx: &EvalCtx<'_>,
    ) -> Result<Vec<usize>> {
        let t = self
            .tables
            .get(key)
            .ok_or_else(|| DbError::NoSuchTable(key.into()))?;
        let columns = t.schema.column_names();
        let filter = match filter {
            None => return Ok(t.live_positions()),
            Some(f) => f,
        };
        // Row environment reused across the per-tuple loops below: the
        // layout (and its case-insensitive name resolution) is built once
        // per statement, only the values are swapped per row.
        let mut env = RowEnv::single(&t.schema.name, &columns, &[]);
        // Index fast path.
        let empty_env = RowEnv::default();
        if let Some((ci, key_expr)) = self.find_index_probe(t, filter, &columns) {
            if let Ok(keyv) = self.eval_expr(key_expr, &empty_env, ctx, &HashMap::new()) {
                if !keyv.is_null() {
                    if let Some(positions) = t.index_lookup(ci, &keyv) {
                        StatsCells::bump(&self.stats.index_lookups, 1);
                        StatsCells::bump(&self.stats.index_scans, 1);
                        let mut out = Vec::new();
                        for &p in positions {
                            let row = t.row(p).expect("index points at live row");
                            StatsCells::bump(&self.stats.rows_scanned, 1);
                            env.set_values(row);
                            if self.eval_bool(filter, &env, ctx, &HashMap::new())? == Some(true) {
                                out.push(p);
                            }
                        }
                        return Ok(out);
                    }
                }
            }
        }
        // IN-subquery probe: `indexed_col IN (SELECT …)` probes the index
        // once per subquery value instead of scanning the table.
        for conj in filter.conjuncts() {
            if let Expr::InSubquery {
                expr,
                query,
                negated: false,
            } = conj
            {
                if let Expr::Column { table: qual, name } = expr.as_ref() {
                    let qual_ok = qual
                        .as_deref()
                        .map(|q| q.eq_ignore_ascii_case(&t.schema.name))
                        .unwrap_or(true);
                    if qual_ok {
                        if let Some(ci) = t.schema.column_index(name) {
                            if t.has_index(ci) || t.has_ordered_index(ci) {
                                let sub = self.cached_subquery(query, ctx)?;
                                StatsCells::bump(&self.stats.index_scans, 1);
                                let mut out = Vec::new();
                                for key in &sub.set {
                                    if let Some(positions) = t.index_lookup(ci, key) {
                                        StatsCells::bump(&self.stats.index_lookups, 1);
                                        for &p in positions {
                                            let row = t.row(p).expect("live");
                                            StatsCells::bump(&self.stats.rows_scanned, 1);
                                            env.set_values(row);
                                            if self.eval_bool(filter, &env, ctx, &HashMap::new())?
                                                == Some(true)
                                            {
                                                out.push(p);
                                            }
                                        }
                                    }
                                }
                                out.sort_unstable();
                                return Ok(out);
                            }
                        }
                    }
                }
            }
            // Literal IN-list probe: `indexed_col IN (v1, …, vN)` — the
            // batched-DML shape — probes the index once per distinct list
            // value instead of scanning the table.
            if let Expr::InList {
                expr,
                list,
                negated: false,
            } = conj
            {
                if let Expr::Column { table: qual, name } = expr.as_ref() {
                    let qual_ok = qual
                        .as_deref()
                        .map(|q| q.eq_ignore_ascii_case(&t.schema.name))
                        .unwrap_or(true);
                    if qual_ok {
                        if let Some(ci) = t.schema.column_index(name) {
                            if t.has_index(ci) || t.has_ordered_index(ci) {
                                if let Some(probe) =
                                    self.cached_in_list(list, ctx, &HashMap::new())?
                                {
                                    StatsCells::bump(&self.stats.index_scans, 1);
                                    let mut out = Vec::new();
                                    for key in &probe.set {
                                        if let Some(positions) = t.index_lookup(ci, key) {
                                            StatsCells::bump(&self.stats.index_lookups, 1);
                                            for &p in positions {
                                                let row = t.row(p).expect("live");
                                                StatsCells::bump(&self.stats.rows_scanned, 1);
                                                env.set_values(row);
                                                if self.eval_bool(
                                                    filter,
                                                    &env,
                                                    ctx,
                                                    &HashMap::new(),
                                                )? == Some(true)
                                                {
                                                    out.push(p);
                                                }
                                            }
                                        }
                                    }
                                    out.sort_unstable();
                                    return Ok(out);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Full scan.
        StatsCells::bump(&self.stats.seq_scans, 1);
        let mut out = Vec::new();
        for p in t.live_positions() {
            let row = t.row(p).expect("live position");
            StatsCells::bump(&self.stats.rows_scanned, 1);
            env.set_values(row);
            if self.eval_bool(filter, &env, ctx, &HashMap::new())? == Some(true) {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Find a conjunct `col = expr` (or `expr = col`) where `col` is an
    /// indexed column of `t` and `expr` does not reference `t`'s row.
    pub(crate) fn find_index_probe<'e>(
        &self,
        t: &Table,
        filter: &'e Expr,
        _columns: &[String],
    ) -> Option<(usize, &'e Expr)> {
        for conj in filter.conjuncts() {
            if let Expr::Binary {
                left,
                op: BinOp::Eq,
                right,
            } = conj
            {
                for (colside, keyside) in [(left, right), (right, left)] {
                    if let Expr::Column { table: qual, name } = colside.as_ref() {
                        if qual
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(&t.schema.name))
                            .unwrap_or(true)
                        {
                            if let Some(ci) = t.schema.column_index(name) {
                                if (t.has_index(ci) || t.has_ordered_index(ci))
                                    && Self::row_independent(keyside)
                                {
                                    return Some((ci, keyside));
                                }
                            }
                        }
                    }
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // triggers
    // ------------------------------------------------------------------

    fn fire_triggers(
        &mut self,
        table_key: &str,
        event: TriggerEvent,
        rows: &[Row],
        depth: usize,
    ) -> Result<()> {
        let fired: Vec<Trigger> = self
            .triggers
            .iter()
            .filter(|t| t.table == table_key && t.event == event)
            .cloned()
            .collect();
        if fired.is_empty() {
            return Ok(());
        }
        let _span = Span::enter("trigger.fire");
        let columns: Vec<String> = self
            .tables
            .get(table_key)
            .map(|t| t.schema.column_names())
            .unwrap_or_default();
        let pseudo = match event {
            TriggerEvent::Delete => "OLD",
            TriggerEvent::Insert => "NEW",
        };
        for trig in fired {
            match trig.granularity {
                TriggerGranularity::Row => {
                    for row in rows {
                        StatsCells::bump(&self.stats.trigger_firings, 1);
                        let bindings: Vec<(String, Value)> =
                            columns.iter().cloned().zip(row.iter().cloned()).collect();
                        let ctx = EvalCtx::with_pseudo(pseudo, &bindings);
                        for stmt in trig.body.iter() {
                            self.exec_internal(stmt, &ctx, depth + 1)?;
                        }
                    }
                }
                TriggerGranularity::Statement => {
                    StatsCells::bump(&self.stats.trigger_firings, 1);
                    let ctx = EvalCtx::new();
                    for stmt in trig.body.iter() {
                        self.exec_internal(stmt, &ctx, depth + 1)?;
                    }
                }
            }
        }
        Ok(())
    }
}
