//! # xmlup-rdb
//!
//! An in-memory relational engine standing in for the IBM DB2 UDB 7.1
//! instance the paper's experiments ran against. The engine executes the
//! SQL subset the XML-update translation layer emits: DDL with per-tuple /
//! per-statement `AFTER DELETE` triggers and hash indexes, DML, and queries
//! with multi-way (hash) joins, `WITH` CTEs, `UNION ALL`, `ORDER BY`,
//! uncorrelated `IN`/`NOT IN` subqueries, and `MIN`/`MAX`/`COUNT`/`SUM`
//! aggregates.
//!
//! Execution statistics ([`Stats`]) expose the quantities the paper's
//! analysis reasons about: SQL statements executed (client vs. total,
//! including trigger bodies), rows scanned, trigger firings, index
//! lookups, and transaction commits/rollbacks.
//!
//! The [`txn`] module supplies transactions: `BEGIN`/`COMMIT`/`ROLLBACK`
//! and `SAVEPOINT`/`ROLLBACK TO` (both as SQL and as the
//! [`Database::begin`]-family API), statement-level atomicity under
//! autocommit, exact undo of DML *and* DDL, and deterministic fault
//! injection for crash-recovery tests.
//!
//! ```
//! use xmlup_rdb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.run_script(
//!     "CREATE TABLE Customer (id INTEGER, Name VARCHAR(50));
//!      CREATE INDEX c_id ON Customer (id);
//!      INSERT INTO Customer VALUES (0, 'John'), (1, 'Mary');",
//! )
//! .unwrap();
//! let rs = db.query("SELECT Name FROM Customer WHERE id = 1").unwrap();
//! assert_eq!(rs.rows[0][0], Value::Str("Mary".into()));
//! ```

#![deny(missing_docs)]

pub mod ast;
mod cells;
pub mod engine;
pub mod error;
mod exec;
pub mod http;
pub mod lexer;
pub mod mvcc;
pub mod obs;
pub mod parser;
mod plan;
pub mod server;
pub mod session;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod sysview;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use ast::{
    BinOp, ColumnDef, Expr, InsertSource, SelectStmt, Stmt, TriggerEvent, TriggerGranularity, UnOp,
};
pub use engine::{Database, ExecResult, PreparedStmt, ResultSet, Stats, Trigger};
pub use error::{DbError, Result};
pub use http::{MetricsHandle, MetricsServer};
pub use obs::{Metric, MetricKind, PhaseStat, SlowQuery, Span, TraceEvent};
pub use parser::{parse_script, parse_script_with_text, parse_stmt, parse_stmt_with_params};
pub use server::{Server, ServerHandle};
pub use session::{Session, SharedDatabase};
pub use sql::stmt_to_sql;
pub use stats::{ColumnStatistics, TableStatistics};
pub use storage::{
    BackendKind, MemoryBackend, PagedStore, PoolStats, StorageBackend, StorageConfig,
    StorageMetrics,
};
pub use sysview::{
    fingerprint, is_system_view, view_columns, Fingerprint, SessionInfo, SessionState,
    StatementStats, SYSTEM_VIEWS,
};
pub use table::{Table, TableSchema};
pub use txn::UndoRecord;
pub use value::{DataType, Row, Value};
pub use wal::WalRecord;
