//! Shared-database facade and per-connection sessions.
//!
//! [`SharedDatabase`] wraps one [`Database`] for concurrent use: readers
//! run simultaneously under a shared `RwLock` guard and always read
//! through a pinned MVCC snapshot (see [`crate::mvcc`]), so a reader can
//! never observe a half-committed transaction; writers serialize through
//! a writer-admission token (one engine-level transaction at a time,
//! measured into the `write_lock_wait_us` histogram) and then take the
//! exclusive lock per statement.
//!
//! [`Session`] is the unit of connection state: autocommit by default,
//! `BEGIN` opens either a read transaction (a snapshot held across
//! statements) that lazily upgrades to a write transaction on the first
//! mutating statement, acquiring the writer token for the rest of the
//! transaction. `COMMIT`/`ROLLBACK` release it. Dropping a session rolls
//! back anything uncommitted — a dropped connection can never leave the
//! engine's single transaction slot occupied or a sync ticket pending.
//!
//! Lock order is fixed everywhere: writer token first, `RwLock` guard
//! second. Readers never touch the token, so reader admission is
//! conflict-free.

use crate::engine::{Database, ExecResult, ResultSet};
use crate::error::{DbError, Result};
use crate::sysview::{SessionRegistry, SessionScope, SessionState};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Shared state behind every handle and session.
struct Shared {
    db: RwLock<Database>,
    /// Writer-admission token: `true` while some session owns the write
    /// side (an explicit write transaction or an autocommit write
    /// statement). Guards the engine's single transaction slot.
    writer: Mutex<bool>,
    writer_cv: Condvar,
    /// Live-session registry behind `rdb_sessions`, shared with the
    /// engine (which materializes the view). Its lock is never held
    /// while the writer token or the `RwLock` is acquired.
    registry: Arc<SessionRegistry>,
}

impl Shared {
    /// Acquire the writer token, recording the wait in the
    /// `write_lock_wait_us` histogram and — when acquiring on behalf of
    /// a session (`session != 0`) — attributing it to that session's
    /// cumulative wait time in `rdb_sessions`.
    fn acquire_writer(&self, session: u64) {
        if session != 0 {
            self.registry
                .set_state(session, SessionState::WaitingWriteLock);
        }
        let start = Instant::now();
        let mut held = self.writer.lock().unwrap();
        while *held {
            held = self.writer_cv.wait(held).unwrap();
        }
        *held = true;
        drop(held);
        let waited = start.elapsed();
        if session != 0 {
            self.registry.add_wait(session, waited.as_nanos() as u64);
            self.registry.set_state(session, SessionState::Executing);
        }
        self.db
            .read()
            .unwrap()
            .record_write_lock_wait(waited.as_micros() as u64);
    }

    fn release_writer(&self) {
        *self.writer.lock().unwrap() = false;
        self.writer_cv.notify_one();
    }
}

/// A concurrency facade over one [`Database`]: cheap to clone, safe to
/// share across threads. Construction enables MVCC on the engine so
/// every mutation retains the before-images snapshot readers need.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<Shared>,
}

impl SharedDatabase {
    /// Wrap `db` for shared use (enables MVCC version retention).
    pub fn new(mut db: Database) -> Self {
        db.enable_mvcc(true);
        let registry = db.session_registry();
        SharedDatabase {
            inner: Arc::new(Shared {
                db: RwLock::new(db),
                writer: Mutex::new(false),
                writer_cv: Condvar::new(),
                registry,
            }),
        }
    }

    /// Open a new session (one per connection / thread of control). The
    /// session appears in `rdb_sessions` until dropped.
    pub fn session(&self) -> Session {
        self.inner.db.read().unwrap().session_opened();
        let id = self.inner.registry.register();
        Session {
            shared: self.inner.clone(),
            state: SessionTxn::Idle,
            id,
        }
    }

    /// Run a closure against a shared read guard. The closure sees the
    /// live committed state; use a [`Session`] for snapshot-consistent
    /// multi-statement reads.
    pub fn with_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.db.read().unwrap())
    }

    /// Run a closure against the exclusive write guard, serialized
    /// behind the writer-admission token. The closure may use the full
    /// `&mut` engine API (explicit transactions included) but must leave
    /// no transaction open on return.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.inner.acquire_writer(0);
        let r = f(&mut self.inner.db.write().unwrap());
        self.inner.release_writer();
        r
    }

    /// One-shot snapshot read (autocommit SELECT).
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let db = self.inner.db.read().unwrap();
        let snap = db.begin_snapshot();
        let result = db.query_at(sql, Some(snap));
        db.end_snapshot(snap);
        result
    }

    /// One-shot write statement (autocommit), serialized behind the
    /// writer token.
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        self.with_write(|db| db.execute(sql))
    }

    /// Metrics text of the underlying database.
    pub fn metrics_text(&self) -> String {
        self.with_read(|db| db.metrics_text())
    }
}

/// Per-session transaction state.
enum SessionTxn {
    /// Autocommit: reads take a fresh snapshot per statement, writes
    /// take the token per statement.
    Idle,
    /// `BEGIN` was issued and no write has happened yet: all reads pin
    /// this snapshot, so the transaction sees one consistent epoch.
    Read { snapshot: u64 },
    /// The transaction wrote: the session owns the writer token and the
    /// engine's explicit-transaction slot until `COMMIT`/`ROLLBACK`.
    Write,
}

/// What a statement produced, shaped for a wire protocol.
#[derive(Debug)]
pub enum SqlOutcome {
    /// A result set (SELECT / EXPLAIN).
    Rows(ResultSet),
    /// Rows affected by DML.
    Affected(usize),
    /// Statement executed with nothing to report (DDL, txn control).
    Done,
}

/// One connection's view of a [`SharedDatabase`]: autocommit statements
/// plus `BEGIN`/`COMMIT`/`ROLLBACK` transaction scoping.
pub struct Session {
    shared: Arc<Shared>,
    state: SessionTxn,
    /// Registry-assigned id; the `rdb_sessions.id` column and the
    /// slow-query log's session attribution.
    id: u64,
}

impl Session {
    /// Execute one SQL statement in this session. The session's
    /// `rdb_sessions` row tracks the statement text and the state
    /// machine (`parsing` → `executing` / `waiting_write_lock` /
    /// `committing` → `idle`) while it runs.
    pub fn execute(&mut self, sql: &str) -> Result<SqlOutcome> {
        self.shared.registry.statement_begin(self.id, sql);
        // Mark the thread so engine-level records (the slow-query log)
        // attribute work done inside the statement to this session.
        let _scope = SessionScope::enter(self.id);
        let result = match classify(sql) {
            StmtClass::Begin => self.begin(),
            StmtClass::Commit => self.commit(),
            StmtClass::Rollback => self.rollback(),
            StmtClass::Read => self.run_read(sql),
            StmtClass::Write => self.run_write(sql),
        };
        self.shared.registry.statement_end(self.id);
        result
    }

    /// Whether the session is inside an explicit transaction.
    pub fn in_transaction(&self) -> bool {
        !matches!(self.state, SessionTxn::Idle)
    }

    /// The session's registry id (the `rdb_sessions.id` column).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn begin(&mut self) -> Result<SqlOutcome> {
        if self.in_transaction() {
            return Err(DbError::Txn(
                "already in a transaction (nested BEGIN; use SAVEPOINT)".into(),
            ));
        }
        // Snapshot acquisition at BEGIN: reads in this transaction all
        // see the epoch current right now.
        let snapshot = self.shared.db.read().unwrap().begin_snapshot();
        self.shared.registry.set_snapshot(self.id, Some(snapshot));
        self.state = SessionTxn::Read { snapshot };
        Ok(SqlOutcome::Done)
    }

    fn commit(&mut self) -> Result<SqlOutcome> {
        match std::mem::replace(&mut self.state, SessionTxn::Idle) {
            SessionTxn::Idle => Err(DbError::Txn("COMMIT outside a transaction".into())),
            SessionTxn::Read { snapshot } => {
                // A read-only transaction commits trivially: release the
                // snapshot so version GC can advance.
                self.shared.db.read().unwrap().end_snapshot(snapshot);
                self.shared.registry.set_snapshot(self.id, None);
                Ok(SqlOutcome::Done)
            }
            SessionTxn::Write => {
                self.shared
                    .registry
                    .set_state(self.id, SessionState::Committing);
                let result = self.shared.db.write().unwrap().commit();
                self.shared.release_writer();
                result.map(|()| SqlOutcome::Done)
            }
        }
    }

    fn rollback(&mut self) -> Result<SqlOutcome> {
        match std::mem::replace(&mut self.state, SessionTxn::Idle) {
            SessionTxn::Idle => Err(DbError::Txn("ROLLBACK outside a transaction".into())),
            SessionTxn::Read { snapshot } => {
                self.shared.db.read().unwrap().end_snapshot(snapshot);
                self.shared.registry.set_snapshot(self.id, None);
                Ok(SqlOutcome::Done)
            }
            SessionTxn::Write => {
                let result = self.shared.db.write().unwrap().rollback();
                self.shared.release_writer();
                result.map(|()| SqlOutcome::Done)
            }
        }
    }

    fn run_read(&mut self, sql: &str) -> Result<SqlOutcome> {
        self.shared
            .registry
            .set_state(self.id, SessionState::Executing);
        let db = self.shared.db.read().unwrap();
        match self.state {
            // Inside a write transaction reads must see the session's
            // own uncommitted writes, so they read the live heap. No
            // other writer can be active (the session holds the token),
            // and concurrent readers are snapshot-pinned, so nobody else
            // observes those uncommitted rows.
            SessionTxn::Write => db.query(sql).map(SqlOutcome::Rows),
            SessionTxn::Read { snapshot } => db.query_at(sql, Some(snapshot)).map(SqlOutcome::Rows),
            SessionTxn::Idle => {
                let snap = db.begin_snapshot();
                // Publish the per-statement snapshot so `rdb_sessions`
                // shows the epoch a concurrent autocommit read uses.
                self.shared.registry.set_snapshot(self.id, Some(snap));
                let result = db.query_at(sql, Some(snap));
                db.end_snapshot(snap);
                self.shared.registry.set_snapshot(self.id, None);
                result.map(SqlOutcome::Rows)
            }
        }
    }

    fn run_write(&mut self, sql: &str) -> Result<SqlOutcome> {
        match self.state {
            SessionTxn::Idle => {
                // Autocommit write: token for the duration of the
                // statement.
                self.shared.acquire_writer(self.id);
                let result = self.shared.db.write().unwrap().execute(sql);
                self.shared.release_writer();
                result.map(outcome)
            }
            SessionTxn::Read { snapshot } => {
                // First write upgrades the transaction: drop the read
                // snapshot, claim the writer token and the engine's
                // transaction slot, then run the statement inside it.
                self.shared.acquire_writer(self.id);
                {
                    let mut db = self.shared.db.write().unwrap();
                    db.end_snapshot(snapshot);
                    self.shared.registry.set_snapshot(self.id, None);
                    if let Err(e) = db.begin() {
                        drop(db);
                        self.shared.release_writer();
                        self.state = SessionTxn::Idle;
                        return Err(e);
                    }
                }
                self.state = SessionTxn::Write;
                self.run_write_stmt(sql)
            }
            SessionTxn::Write => self.run_write_stmt(sql),
        }
    }

    /// A write statement inside the session's open write transaction. On
    /// error the engine has already rolled the statement back; the
    /// transaction stays open (the client decides).
    fn run_write_stmt(&mut self, sql: &str) -> Result<SqlOutcome> {
        self.shared
            .registry
            .set_state(self.id, SessionState::Executing);
        self.shared.db.write().unwrap().execute(sql).map(outcome)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.state, SessionTxn::Idle) {
            SessionTxn::Idle => {}
            SessionTxn::Read { snapshot } => {
                self.shared.db.read().unwrap().end_snapshot(snapshot);
            }
            SessionTxn::Write => {
                // A dropped connection mid-transaction rolls back, so
                // the engine's transaction slot and the group-commit
                // ticket accounting stay clean.
                let _ = self.shared.db.write().unwrap().rollback();
                self.shared.release_writer();
            }
        }
        self.shared.registry.unregister(self.id);
        self.shared.db.read().unwrap().session_closed();
    }
}

fn outcome(r: ExecResult) -> SqlOutcome {
    match r {
        ExecResult::Rows(rs) => SqlOutcome::Rows(rs),
        ExecResult::Affected(n) => SqlOutcome::Affected(n),
        _ => SqlOutcome::Done,
    }
}

enum StmtClass {
    Begin,
    Commit,
    Rollback,
    Read,
    Write,
}

/// Route a statement by its leading keyword(s). `SELECT` and plain
/// `EXPLAIN` are reads; `EXPLAIN ANALYZE` executes its inner statement
/// (which may be DML) and `ROLLBACK TO <savepoint>` targets the open
/// engine transaction, so both take the write path.
fn classify(sql: &str) -> StmtClass {
    let mut words = sql
        .split([' ', '\t', '\r', '\n', ';'])
        .filter(|w| !w.is_empty());
    let first = words.next().unwrap_or("").to_ascii_uppercase();
    let second = words.next().unwrap_or("").to_ascii_uppercase();
    match first.as_str() {
        "SELECT" => StmtClass::Read,
        "EXPLAIN" if second != "ANALYZE" => StmtClass::Read,
        "BEGIN" => StmtClass::Begin,
        "COMMIT" => StmtClass::Commit,
        "ROLLBACK" if second != "TO" => StmtClass::Rollback,
        _ => StmtClass::Write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedDatabase {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE t (id INTEGER, v VARCHAR(10));
             CREATE INDEX t_id ON t (id);
             INSERT INTO t VALUES (1, 'a'), (2, 'b');",
        )
        .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn autocommit_read_and_write() {
        let s = shared();
        let mut sess = s.session();
        match sess.execute("SELECT COUNT(*) FROM t").unwrap() {
            SqlOutcome::Rows(rs) => assert_eq!(rs.rows[0][0], crate::Value::Int(2)),
            other => panic!("expected rows: {other:?}"),
        }
        match sess.execute("INSERT INTO t VALUES (3, 'c')").unwrap() {
            SqlOutcome::Affected(1) => {}
            other => panic!("expected 1 affected: {other:?}"),
        }
    }

    #[test]
    fn read_txn_pins_its_snapshot() {
        let s = shared();
        let mut reader = s.session();
        reader.execute("BEGIN").unwrap();
        let before = match reader.execute("SELECT COUNT(*) FROM t").unwrap() {
            SqlOutcome::Rows(rs) => rs.rows[0][0].clone(),
            other => panic!("{other:?}"),
        };
        // A concurrent session commits a write.
        let mut writer = s.session();
        writer.execute("INSERT INTO t VALUES (3, 'c')").unwrap();
        // The reader still sees its BEGIN-time state.
        let after = match reader.execute("SELECT COUNT(*) FROM t").unwrap() {
            SqlOutcome::Rows(rs) => rs.rows[0][0].clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(before, after);
        reader.execute("COMMIT").unwrap();
        // A fresh statement sees the new row.
        match reader.execute("SELECT COUNT(*) FROM t").unwrap() {
            SqlOutcome::Rows(rs) => assert_eq!(rs.rows[0][0], crate::Value::Int(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_txn_rolls_back_on_drop() {
        let s = shared();
        {
            let mut sess = s.session();
            sess.execute("BEGIN").unwrap();
            sess.execute("DELETE FROM t").unwrap();
            // dropped here without COMMIT
        }
        let mut sess = s.session();
        match sess.execute("SELECT COUNT(*) FROM t").unwrap() {
            SqlOutcome::Rows(rs) => assert_eq!(rs.rows[0][0], crate::Value::Int(2)),
            other => panic!("{other:?}"),
        }
        // The writer token was released: a new write transaction works.
        sess.execute("BEGIN").unwrap();
        sess.execute("INSERT INTO t VALUES (9, 'z')").unwrap();
        sess.execute("COMMIT").unwrap();
    }

    #[test]
    fn session_gauge_tracks_open_sessions() {
        let s = shared();
        let a = s.session();
        let b = s.session();
        assert!(s
            .with_read(|db| db.metrics_text())
            .contains("rdb_active_sessions 2"));
        drop(a);
        drop(b);
        assert!(s.metrics_text().contains("rdb_active_sessions 0"));
    }
}
