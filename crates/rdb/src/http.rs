//! Minimal HTTP/1.1 metrics endpoint over a [`SharedDatabase`].
//!
//! Serves exactly two read-only routes, hand-rolled over `TcpListener`
//! (no HTTP dependency — the request parser reads one request line plus
//! headers and ignores everything but the method and path):
//!
//! - `GET /metrics` — the full metric registry in Prometheus text
//!   exposition format ([`Database::metrics_text`](crate::Database::metrics_text)),
//!   ready to be scraped.
//! - `GET /statements` — the per-statement statistics store as a JSON
//!   array ([`Database::statements_json`](crate::Database::statements_json)),
//!   sorted by total execution time.
//!
//! Everything else is `404`; non-`GET` methods are `405`. Responses
//! always carry `Content-Length` and `Connection: close`, and each
//! request is served on the accept thread — metrics scrapes are rare
//! and cheap, so there is no per-connection thread pool to manage.
//! Reads hold only the database read lock, so scrapes never block
//! writers.

use crate::SharedDatabase;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// HTTP metrics server builder: binds and spawns the accept loop.
pub struct MetricsServer;

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve scrapes until
    /// [`MetricsHandle::shutdown`] (or drop).
    pub fn start(shared: SharedDatabase, addr: &str) -> std::io::Result<MetricsHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_request(stream, &shared);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(MetricsHandle {
            addr: local,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }
}

/// Handle to a running metrics server: bound address plus shutdown knob.
pub struct MetricsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl MetricsHandle {
    /// The address the server actually bound (port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join it. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve a single HTTP request on `stream` and close the connection.
fn serve_request(stream: TcpStream, shared: &SharedDatabase) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut out = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers up to the blank line; the routes take no body.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                shared.with_read(|db| db.metrics_text()),
            ),
            "/statements" => (
                "200 OK",
                "application/json",
                shared.with_read(|db| db.statements_json()),
            ),
            _ => (
                "404 Not Found",
                "text/plain",
                String::from("routes: /metrics /statements\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    out.write_all(response.as_bytes())
}
