//! Observability: structured tracing spans, fixed-bucket latency
//! histograms, and a metrics registry with Prometheus-style rendering.
//!
//! The design goal is **zero cost when off**: a disabled
//! [`Span::enter`] is one thread-local flag read and no clock access,
//! so instrumented hot paths (parse, plan, execute, WAL append) pay
//! nothing measurable with tracing disabled. When enabled, each span
//! records a complete event (name, start, duration) into a thread-local
//! buffer dumpable as chrome://tracing JSON, and feeds a per-phase
//! log2-bucket histogram for the aggregated latency table.
//!
//! The module is dependency-free and single-threaded by construction
//! (the engine itself is `Rc`/`Cell` based), so the tracer state lives
//! in a `thread_local!` — spans on different threads never contend.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`]: one per power of two of
/// nanoseconds, which comfortably covers sub-ns to ~580 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Cap on buffered trace events; beyond it events are counted but
/// dropped so an unbounded trace session cannot exhaust memory.
const MAX_TRACE_EVENTS: usize = 1 << 20;

/// Cap on retained slow-query records (oldest evicted first).
pub(crate) const SLOW_QUERY_CAPACITY: usize = 128;

/// A fixed-bucket log2 latency histogram over nanosecond samples.
///
/// Bucket `i` holds samples whose `floor(log2(ns))` is `i` (bucket 0
/// also takes `ns == 0`), so quantiles are answered to within a factor
/// of two without storing samples. `max` is exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for a nanosecond sample: `floor(log2(ns))`, with 0
    /// mapping to bucket 0.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) - 1` ns).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest sample recorded (exact), in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Raw bucket counts (for format-stability tests).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (0 for an empty histogram). `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }
}

/// One completed trace event (chrome://tracing "complete" semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Phase name (the string passed to [`Span::enter`]).
    pub name: &'static str,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregated statistics for one phase, derived from its histogram.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Phase name.
    pub name: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Total time in nanoseconds.
    pub total_ns: u64,
    /// Median latency estimate in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency estimate in nanoseconds.
    pub p95_ns: u64,
    /// Maximum latency (exact) in nanoseconds.
    pub max_ns: u64,
}

/// A statement that exceeded the slow-query threshold: its SQL text,
/// total latency, per-phase breakdown, and rows touched.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The statement's SQL text.
    pub sql: String,
    /// Wall-clock latency of the whole statement, in nanoseconds.
    pub total_ns: u64,
    /// `(phase, total ns)` pairs for the spans that ran inside the
    /// statement, in completion order.
    pub phases: Vec<(&'static str, u64)>,
    /// Rows scanned + inserted + deleted + updated by the statement
    /// (trigger cascades included).
    pub rows_touched: u64,
    /// Session the statement ran for (0 when executed outside the
    /// session layer). Joins against `rdb_sessions.id`.
    pub session_id: u64,
    /// MVCC snapshot epoch the statement read at, if pinned.
    pub snapshot_epoch: Option<u64>,
    /// Literal-normalized statement fingerprint (FNV-1a 64). Joins
    /// against `rdb_statements.fingerprint`.
    pub fingerprint: u64,
}

struct Tracer {
    enabled: Cell<bool>,
    collecting: Cell<bool>,
    epoch: Instant,
    events: RefCell<Vec<TraceEvent>>,
    dropped: Cell<u64>,
    agg: RefCell<BTreeMap<&'static str, Histogram>>,
    stmt_phases: RefCell<Vec<(&'static str, u64)>>,
}

thread_local! {
    static TRACER: Tracer = Tracer {
        enabled: Cell::new(false),
        collecting: Cell::new(false),
        epoch: Instant::now(),
        events: RefCell::new(Vec::new()),
        dropped: Cell::new(0),
        agg: RefCell::new(BTreeMap::new()),
        stmt_phases: RefCell::new(Vec::new()),
    };
}

/// Enable or disable span tracing on this thread. Disabling keeps the
/// buffered events (dump then [`clear_trace`] to reset).
pub fn set_tracing(on: bool) {
    TRACER.with(|t| t.enabled.set(on));
}

/// Whether span tracing is enabled on this thread.
pub fn tracing_enabled() -> bool {
    TRACER.with(|t| t.enabled.get())
}

/// Drop all buffered trace events and per-phase histograms.
pub fn clear_trace() {
    TRACER.with(|t| {
        t.events.borrow_mut().clear();
        t.dropped.set(0);
        t.agg.borrow_mut().clear();
    });
}

/// Snapshot of the buffered trace events (oldest first).
pub fn trace_events() -> Vec<TraceEvent> {
    TRACER.with(|t| t.events.borrow().clone())
}

/// Events dropped because the trace buffer was full.
pub fn trace_events_dropped() -> u64 {
    TRACER.with(|t| t.dropped.get())
}

/// Render the buffered events as a chrome://tracing-compatible JSON
/// array of complete (`"ph": "X"`) events; timestamps and durations are
/// microseconds with nanosecond precision.
pub fn trace_json() -> String {
    TRACER.with(|t| {
        let events = t.events.borrow();
        let mut out = String::with_capacity(events.len() * 96 + 2);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{}.{:03},\"dur\":{}.{:03}}}",
                e.name,
                e.start_ns / 1_000,
                e.start_ns % 1_000,
                e.dur_ns / 1_000,
                e.dur_ns % 1_000,
            );
        }
        out.push(']');
        out
    })
}

/// Aggregated per-phase statistics, sorted by phase name.
pub fn phase_stats() -> Vec<PhaseStat> {
    TRACER.with(|t| {
        t.agg
            .borrow()
            .iter()
            .map(|(name, h)| PhaseStat {
                name,
                count: h.count(),
                total_ns: h.sum_ns(),
                p50_ns: h.p50_ns(),
                p95_ns: h.p95_ns(),
                max_ns: h.max_ns(),
            })
            .collect()
    })
}

/// The aggregated per-phase latency table as aligned text:
/// `phase  count  p50  p95  max  total` per row.
pub fn render_phase_table() -> String {
    let stats = phase_stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "phase", "count", "p50", "p95", "max", "total"
    );
    for s in &stats {
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>10} {:>10} {:>10} {:>12}",
            s.name,
            s.count,
            fmt_ns(s.p50_ns),
            fmt_ns(s.p95_ns),
            fmt_ns(s.max_ns),
            fmt_ns(s.total_ns)
        );
    }
    out
}

/// Begin per-statement phase collection (slow-query support): spans
/// record into the statement buffer even with tracing off.
pub(crate) fn stmt_collect_begin() {
    TRACER.with(|t| {
        t.stmt_phases.borrow_mut().clear();
        t.collecting.set(true);
    });
}

/// End per-statement phase collection, returning `(phase, ns)` pairs in
/// completion order.
pub(crate) fn stmt_collect_end() -> Vec<(&'static str, u64)> {
    TRACER.with(|t| {
        t.collecting.set(false);
        std::mem::take(&mut *t.stmt_phases.borrow_mut())
    })
}

/// An RAII tracing span. [`Span::enter`] starts timing a named phase;
/// dropping the span records the event. When tracing is off (and no
/// statement collection is active) the span is inert: no clock is read
/// and nothing is recorded.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Open a span for `name`. Inert (no timestamp taken) unless
    /// tracing or per-statement collection is active on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let active = TRACER.with(|t| t.enabled.get() || t.collecting.get());
        Span {
            name,
            start: if active { Some(Instant::now()) } else { None },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        TRACER.with(|t| {
            let end = Instant::now();
            let dur_ns = end.duration_since(start).as_nanos() as u64;
            if t.enabled.get() {
                let start_ns = start.duration_since(t.epoch).as_nanos() as u64;
                let mut events = t.events.borrow_mut();
                if events.len() < MAX_TRACE_EVENTS {
                    events.push(TraceEvent {
                        name: self.name,
                        start_ns,
                        dur_ns,
                    });
                } else {
                    t.dropped.set(t.dropped.get() + 1);
                }
                t.agg
                    .borrow_mut()
                    .entry(self.name)
                    .or_default()
                    .record(dur_ns);
            }
            if t.collecting.get() {
                t.stmt_phases.borrow_mut().push((self.name, dur_ns));
            }
        });
    }
}

/// Kind of a metric in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
}

/// One named metric sample: family name, optional labels, kind, help
/// text, and current value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric family name (e.g. `rdb_rows_scanned`).
    pub name: &'static str,
    /// Label pairs, rendered `{k="v",…}`.
    pub labels: Vec<(&'static str, String)>,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// One-line help text.
    pub help: &'static str,
    /// Current value.
    pub value: u64,
}

impl Metric {
    /// A label-free counter sample.
    pub fn counter(name: &'static str, help: &'static str, value: u64) -> Metric {
        Metric {
            name,
            labels: Vec::new(),
            kind: MetricKind::Counter,
            help,
            value,
        }
    }

    /// A label-free gauge sample.
    pub fn gauge(name: &'static str, help: &'static str, value: u64) -> Metric {
        Metric {
            name,
            labels: Vec::new(),
            kind: MetricKind::Gauge,
            help,
            value,
        }
    }
}

/// Render metrics in the Prometheus text exposition format: one
/// `# HELP` / `# TYPE` header per family (first occurrence wins),
/// then one sample line per metric.
pub fn render_prometheus(metrics: &[Metric]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&'static str> = None;
    for m in metrics {
        if last_family != Some(m.name) {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                m.name,
                match m.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                }
            );
            last_family = Some(m.name);
        }
        if m.labels.is_empty() {
            let _ = writeln!(out, "{} {}", m.name, m.value);
        } else {
            let labels: Vec<String> = m
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            let _ = writeln!(out, "{}{{{}}} {}", m.name, labels.join(","), m.value);
        }
    }
    out
}

/// Format a nanosecond duration with an adaptive unit (`ns`, `µs`,
/// `ms`, `s`), one decimal place above nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.1}s", ns as f64 / 1_000_000_000.0)
    }
}
