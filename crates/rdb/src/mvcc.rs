//! Multi-version concurrency control: epoch-stamped snapshot visibility.
//!
//! The paper's experiments run one JDBC client against DB2; the ROADMAP
//! north-star serves many. This module gives the engine the read side of
//! that story: every committed transaction advances a global *epoch*, and
//! mutations record per-slot before-images stamped with the epoch they
//! will commit under (see [`crate::table`]). A reader that pins a
//! snapshot epoch `S` then reconstructs, at any later time, exactly the
//! state that was committed when `S` was current — uncommitted or
//! later-committed writes are invisible because their before-images
//! (stamped `> S`) are layered back over the heap.
//!
//! The scheme is undo-based rather than copy-on-write: the live heap is
//! always the newest version, readers pay a reconstruction cost only on
//! tables that actually changed since their snapshot, and version
//! retention is bounded by the oldest registered snapshot (entries older
//! than every active snapshot are dropped at commit — the version GC).
//!
//! Writers are unaffected: they serialize through the existing
//! transaction/WAL path and always see the newest state. This is
//! snapshot isolation for readers, single-writer serialization for
//! updates — the concurrency model DESIGN.md §11 documents.

use crate::cells::{Counter, FlagCell};
use crate::engine::Database;
use crate::obs::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// MVCC bookkeeping owned by the [`Database`].
#[derive(Debug, Default)]
pub(crate) struct MvccState {
    /// Whether mutations retain version history. Off by default: a
    /// single-threaded database pays nothing for the subsystem.
    enabled: FlagCell,
    /// Epoch of the most recently committed transaction. Mutations are
    /// stamped `committed + 1`; commit publishes by advancing this.
    committed: AtomicU64,
    /// Active snapshot epochs → reference count. Keyed in a `BTreeMap`
    /// so the GC horizon (the oldest active snapshot) is the first key.
    snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Queries answered against a pinned snapshot (`snapshot_reads`).
    pub(crate) snapshot_reads: Counter,
    /// Sessions currently open against this database (gauge).
    pub(crate) active_sessions: Counter,
    /// Waits for the writer-admission token, in microseconds.
    pub(crate) write_lock_wait_us: Mutex<Histogram>,
}

impl MvccState {
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// The epoch in-flight mutations are stamped with.
    pub fn write_epoch(&self) -> u64 {
        self.committed() + 1
    }

    /// Publish a commit: everything stamped `committed + 1` becomes
    /// visible to snapshots taken from now on.
    pub fn publish_commit(&self) {
        self.committed.fetch_add(1, Ordering::AcqRel);
    }

    /// Oldest epoch any active snapshot still needs; `committed` when no
    /// snapshot is registered (then only open-transaction entries,
    /// stamped `committed + 1`, survive GC).
    pub fn gc_horizon(&self) -> u64 {
        let snaps = self.snapshots.lock().unwrap();
        snaps
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.committed())
            .min(self.committed())
    }
}

impl Database {
    /// Enable (or disable) multi-version snapshot reads. With MVCC on,
    /// every mutation records a before-image stamped with its commit
    /// epoch, [`Database::begin_snapshot`] pins a consistent read point,
    /// and [`Database::query_at`] reads against it from `&self`. Off by
    /// default — single-session databases pay nothing.
    ///
    /// Disabling drops all retained versions.
    pub fn enable_mvcc(&mut self, on: bool) {
        self.mvcc.set_enabled(on);
        if !on {
            for t in self.tables.values_mut() {
                t.gc_versions(u64::MAX);
            }
        }
    }

    /// Whether MVCC version retention is enabled.
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc.enabled()
    }

    /// Epoch of the most recently committed transaction.
    pub fn committed_epoch(&self) -> u64 {
        self.mvcc.committed()
    }

    /// Register a snapshot at the current committed epoch and return it.
    /// The version GC will not discard any before-image the snapshot
    /// could still need until [`Database::end_snapshot`] releases it.
    /// Snapshots are reference-counted: concurrent sessions at the same
    /// epoch share one registry slot.
    pub fn begin_snapshot(&self) -> u64 {
        let epoch = self.mvcc.committed();
        *self
            .mvcc
            .snapshots
            .lock()
            .unwrap()
            .entry(epoch)
            .or_insert(0) += 1;
        epoch
    }

    /// Release a snapshot taken with [`Database::begin_snapshot`].
    pub fn end_snapshot(&self, snapshot: u64) {
        let mut snaps = self.mvcc.snapshots.lock().unwrap();
        if let Some(n) = snaps.get_mut(&snapshot) {
            *n -= 1;
            if *n == 0 {
                snaps.remove(&snapshot);
            }
        }
    }

    /// Number of snapshots currently registered (distinct epochs may
    /// be shared; this counts registrations).
    pub fn active_snapshots(&self) -> usize {
        self.mvcc.snapshots.lock().unwrap().values().sum()
    }

    /// Total MVCC version entries retained across all tables
    /// (`snapshot_versions_retained`).
    pub fn snapshot_versions_retained(&self) -> u64 {
        self.tables
            .values()
            .map(|t| t.versions_retained() as u64)
            .sum()
    }

    /// Publish the just-committed transaction's versions and garbage-
    /// collect entries no active snapshot can reach. Called by the
    /// commit paths after the WAL flush succeeds; no-op with MVCC off.
    pub(crate) fn mvcc_commit(&mut self) {
        if !self.mvcc.enabled() {
            return;
        }
        self.mvcc.publish_commit();
        let horizon = self.mvcc.gc_horizon();
        for t in self.tables.values_mut() {
            t.gc_versions(horizon);
        }
    }

    /// Record a write-lock wait (microseconds) in the
    /// `write_lock_wait_us` histogram. Used by the session layer's
    /// writer-admission token.
    pub fn record_write_lock_wait(&self, micros: u64) {
        // The histogram buckets are nanosecond-based powers of two; the
        // session layer reports microseconds, so scale on the way in and
        // back out in the metrics rendering.
        self.mvcc
            .write_lock_wait_us
            .lock()
            .unwrap()
            .record(micros.saturating_mul(1000));
    }

    /// Bump/drop the `active_sessions` gauge (session layer lifecycle).
    pub(crate) fn session_opened(&self) {
        self.mvcc.active_sessions.add(1);
    }

    pub(crate) fn session_closed(&self) {
        let n = self.mvcc.active_sessions.get();
        self.mvcc.active_sessions.set(n.saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use crate::Database;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn database_is_send_sync() {
        assert_send_sync::<Database>();
        assert_send_sync::<crate::PreparedStmt>();
    }

    #[test]
    fn snapshot_registry_refcounts() {
        let mut db = Database::new();
        db.enable_mvcc(true);
        let s1 = db.begin_snapshot();
        let s2 = db.begin_snapshot();
        assert_eq!(s1, s2);
        assert_eq!(db.active_snapshots(), 2);
        db.end_snapshot(s1);
        assert_eq!(db.active_snapshots(), 1);
        db.end_snapshot(s2);
        assert_eq!(db.active_snapshots(), 0);
    }
}
