//! Transaction support: undo log, savepoints, and deterministic fault
//! injection.
//!
//! The paper (Sections 3 and 6) assumes every translated `UPDATE { … }`
//! block executes as one transaction against DB2 — a mid-update error
//! must leave the shredded relations exactly as they were. This module
//! supplies the engine-side machinery: a logical undo log of
//! before-images ([`UndoRecord`]), transaction/savepoint bookkeeping
//! ([`TxnState`]), and a fault injector ([`FaultState`]) that lets tests
//! and the workload driver kill execution at a chosen statement or table
//! write.
//!
//! Undo is *exact*: applying the log in reverse restores the database
//! byte-identically — slot vectors, index bucket ordering, the trigger
//! list, and the id counter all return to their pre-transaction state.
//! That invariant is what makes the property tests in
//! `tests/txn_props.rs` meaningful and is relied on by the fault
//! injection acceptance test at the workspace root.

use crate::cells::Counter;
use crate::engine::Trigger;
use crate::error::{DbError, Result};
use crate::table::Table;
use crate::value::{Row, Value};
use crate::wal::WalRecord;
use std::sync::Mutex;

/// One reversible effect recorded by the engine. Records are appended in
/// execution order and applied in reverse on rollback.
#[derive(Debug, Clone)]
pub enum UndoRecord {
    /// A row was appended to `table` at slot `pos`.
    InsertedRow {
        /// Lower-cased table key.
        table: String,
        /// Slot position the row occupies.
        pos: usize,
    },
    /// A row was deleted: restore it at `pos` and splice its slot back
    /// into each index bucket at the recorded offset so bucket ordering
    /// is preserved.
    DeletedRow {
        /// Lower-cased table key.
        table: String,
        /// Slot position the row occupied.
        pos: usize,
        /// The deleted row's values.
        row: Row,
        /// `(column, offset)` of the slot in each index bucket it was
        /// removed from.
        index_offsets: Vec<(usize, usize)>,
    },
    /// A cell was overwritten: restore `old` and, if the column is
    /// indexed, re-insert the slot at `old_offset` in the old value's
    /// bucket.
    UpdatedCell {
        /// Lower-cased table key.
        table: String,
        /// Slot position of the updated row.
        pos: usize,
        /// Column index of the updated cell.
        column: usize,
        /// The cell's previous value.
        old: Value,
        /// Offset of the slot in the old value's index bucket, if the
        /// column was indexed.
        old_offset: Option<usize>,
    },
    /// `CREATE TABLE` ran: drop the table again.
    CreatedTable {
        /// Lower-cased table key.
        name: String,
    },
    /// `DROP TABLE` ran: restore the full table snapshot and the
    /// triggers that watched it (at their original positions in the
    /// trigger list).
    DroppedTable {
        /// Lower-cased table key.
        name: String,
        /// Snapshot of the dropped table.
        table: Box<Table>,
        /// `(position, trigger)` pairs removed with the table, ascending.
        triggers: Vec<(usize, Trigger)>,
    },
    /// `CREATE INDEX` built a new index: drop it.
    CreatedIndex {
        /// Lower-cased table key.
        table: String,
        /// Indexed column.
        column: usize,
        /// Whether the created index was ordered (`USING ORDERED`).
        ordered: bool,
    },
    /// `ANALYZE` rebuilt a table's statistics: restore the previous ones
    /// (possibly none).
    Analyzed {
        /// Lower-cased table key.
        table: String,
        /// Statistics before the analyze.
        prior: Option<Box<crate::stats::TableStatistics>>,
    },
    /// `CREATE TRIGGER` ran: remove the trigger again.
    CreatedTrigger {
        /// Trigger name.
        name: String,
    },
    /// `DROP TRIGGER` ran: restore the trigger at its original position.
    DroppedTrigger {
        /// Position in the trigger list.
        position: usize,
        /// The removed trigger.
        trigger: Box<Trigger>,
    },
}

impl UndoRecord {
    /// Whether undoing this record changes the catalog (tables, indexes,
    /// triggers) — if so, the plan cache must be invalidated on
    /// rollback, mirroring the forward DDL path.
    pub fn is_ddl(&self) -> bool {
        matches!(
            self,
            UndoRecord::CreatedTable { .. }
                | UndoRecord::DroppedTable { .. }
                | UndoRecord::CreatedIndex { .. }
                | UndoRecord::Analyzed { .. }
                | UndoRecord::CreatedTrigger { .. }
                | UndoRecord::DroppedTrigger { .. }
        )
    }
}

/// A named savepoint: a mark into the undo log plus the id-counter value
/// at creation time.
#[derive(Debug, Clone)]
pub(crate) struct Savepoint {
    pub name: String,
    pub mark: usize,
    pub next_id: i64,
    /// Redo-buffer length at creation time: `ROLLBACK TO` truncates the
    /// buffered WAL records along with the undo log, so discarded work
    /// is never flushed.
    pub redo_mark: usize,
}

/// Transaction bookkeeping owned by the `Database`.
///
/// The undo log is populated even outside `BEGIN` — autocommit needs it
/// for statement-level atomicity (a failing statement, including any
/// trigger bodies it fired, rolls back as a unit). On success the log is
/// simply discarded.
#[derive(Debug, Default)]
pub(crate) struct TxnState {
    /// Reversible effects, in execution order.
    pub log: Vec<UndoRecord>,
    /// Buffered WAL redo records mirroring `log` (populated only on a
    /// durable database). Flushed as one `TxnBegin … TxnCommit` frame at
    /// commit; truncated in lockstep with the undo log on rollback, so
    /// an aborted transaction never reaches the disk at all. Lives in a
    /// `Mutex` because `&self` paths (id allocation) also emit records.
    pub redo: Mutex<Vec<WalRecord>>,
    /// Inside an explicit `BEGIN … COMMIT/ROLLBACK` block.
    pub explicit: bool,
    /// Active savepoints, oldest first.
    pub savepoints: Vec<Savepoint>,
    /// Id-counter value when the explicit transaction began.
    pub start_next_id: i64,
}

impl TxnState {
    /// Current undo-log length, used as a statement-level mark.
    pub fn mark(&self) -> usize {
        self.log.len()
    }

    /// Current redo-buffer length, the WAL-side statement mark.
    pub fn redo_mark(&self) -> usize {
        self.redo.lock().unwrap().len()
    }

    /// Forget everything (after COMMIT or a completed rollback).
    pub fn reset(&mut self) {
        self.log.clear();
        self.redo.lock().unwrap().clear();
        self.savepoints.clear();
        self.explicit = false;
    }
}

/// Deterministic fault injection armed on the `Database`.
///
/// Counters live in atomic cells so the hot DML loops can consult them
/// while a mutable borrow of the table map is live (disjoint field
/// borrows) and the shared-database facade stays `Sync`.
/// Faults are one-shot: once fired they disarm themselves.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Fail the Nth client statement from now (0 = disarmed; 1 = next).
    stmt_countdown: Counter,
    /// Fail the Nth row write to this table (lower-cased key).
    write_table: Option<String>,
    /// Row-write countdown for `write_table` (0 = disarmed).
    write_countdown: Counter,
}

impl FaultState {
    /// Arm the statement fault: the `n`th client statement from now
    /// fails with [`DbError::FaultInjected`] before executing.
    pub fn arm_statement(&mut self, n: u64) {
        self.stmt_countdown.set(n);
    }

    /// Arm the table-write fault: the `n`th row written to `table`
    /// (insert, delete, or cell update) fails mid-statement.
    pub fn arm_table_write(&mut self, table: &str, n: u64) {
        self.write_table = Some(table.to_ascii_lowercase());
        self.write_countdown.set(n);
    }

    /// Disarm all faults.
    pub fn clear(&mut self) {
        self.stmt_countdown.set(0);
        self.write_table = None;
        self.write_countdown.set(0);
    }

    /// Whether any fault is currently armed.
    pub fn armed(&self) -> bool {
        self.stmt_countdown.get() > 0 || self.write_countdown.get() > 0
    }

    /// Tick the statement countdown; fires once when it reaches zero.
    pub fn check_statement(&self) -> Result<()> {
        let left = self.stmt_countdown.get();
        if left == 0 {
            return Ok(());
        }
        self.stmt_countdown.set(left - 1);
        if left == 1 {
            return Err(DbError::FaultInjected(
                "statement fault reached zero".into(),
            ));
        }
        Ok(())
    }

    /// Tick the table-write countdown for a write to `key`; fires once
    /// when it reaches zero.
    pub fn check_table_write(&self, key: &str) -> Result<()> {
        if self.write_table.as_deref() != Some(key) {
            return Ok(());
        }
        let left = self.write_countdown.get();
        if left == 0 {
            return Ok(());
        }
        self.write_countdown.set(left - 1);
        if left == 1 {
            return Err(DbError::FaultInjected(format!(
                "write fault on table `{key}` reached zero"
            )));
        }
        Ok(())
    }
}
