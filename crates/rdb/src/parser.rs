//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::error::{DbError, Result};
use crate::lexer::{lex, Tok};
use crate::value::{DataType, Value};

/// Parse a script of one or more `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Stmt>> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_tok(&Tok::Semi) {}
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.stmt()?);
    }
}

/// Parse a script like [`parse_script`], additionally returning each
/// statement's SQL text (re-rendered from its tokens) so callers can
/// attribute an execution error to the statement that raised it.
pub fn parse_script_with_text(sql: &str) -> Result<Vec<(Stmt, String)>> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_tok(&Tok::Semi) {}
        if p.at_end() {
            return Ok(out);
        }
        let start = p.pos;
        let stmt = p.stmt()?;
        let text = render_tokens(&p.toks[start..p.pos]);
        out.push((stmt, text));
    }
}

/// Join tokens back into readable SQL: single spaces between tokens,
/// except none before `,`/`)`/`;`, none after `(`, and none around `.`.
fn render_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut prev: Option<&Tok> = None;
    for t in toks {
        let glue = !matches!(
            (prev, t),
            (None, _)
                | (_, Tok::Comma | Tok::RParen | Tok::Semi | Tok::Dot)
                | (Some(Tok::LParen | Tok::Dot), _)
        );
        if glue {
            out.push(' ');
        }
        use std::fmt::Write as _;
        let _ = write!(out, "{t}");
        prev = Some(t);
    }
    out
}

/// Parse exactly one statement (trailing `;` allowed).
pub fn parse_stmt(sql: &str) -> Result<Stmt> {
    Ok(parse_stmt_with_params(sql)?.0)
}

/// Parse exactly one statement and report how many parameter slots it
/// binds: `?` placeholders are numbered left to right, `$n` placeholders
/// name their 1-based slot explicitly, and the count is the highest slot
/// referenced.
pub fn parse_stmt_with_params(sql: &str) -> Result<(Stmt, usize)> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    while p.eat_tok(&Tok::Semi) {}
    let stmt = p.stmt()?;
    while p.eat_tok(&Tok::Semi) {}
    if !p.at_end() {
        return Err(DbError::SqlParse(
            "expected one statement, found more".into(),
        ));
    }
    Ok((stmt, p.params))
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Number of parameter slots seen so far (highest `$n`, or the count
    /// of `?` placeholders numbered left to right).
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next_tok(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::SqlParse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_tok(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok) -> Result<()> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            Err(DbError::SqlParse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek2_kw(&self, kw: &str) -> bool {
        self.peek2().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::SqlParse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next_tok()? {
            Tok::Ident(s) => Ok(s),
            other => Err(DbError::SqlParse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // --------------------------------------------------------------
    // statements
    // --------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt> {
        if self.peek_kw("CREATE") {
            self.create()
        } else if self.peek_kw("DROP") {
            self.drop_stmt()
        } else if self.peek_kw("INSERT") {
            self.insert()
        } else if self.peek_kw("DELETE") {
            self.delete()
        } else if self.peek_kw("UPDATE") {
            self.update()
        } else if self.peek_kw("SELECT")
            || self.peek_kw("WITH")
            || self.peek() == Some(&Tok::LParen)
        {
            Ok(Stmt::Select(Box::new(self.select_stmt()?)))
        } else if self.eat_kw("BEGIN") {
            // `BEGIN [TRANSACTION | WORK]`. A trigger definition's body
            // delimiter is consumed inside `create()`, so a `BEGIN` seen
            // here is unambiguously transaction control.
            let _ = self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            Ok(Stmt::Begin)
        } else if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            Ok(Stmt::Commit)
        } else if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("TRANSACTION") || self.eat_kw("WORK");
            let to_savepoint = if self.eat_kw("TO") {
                let _ = self.eat_kw("SAVEPOINT");
                Some(self.ident()?)
            } else {
                None
            };
            Ok(Stmt::Rollback { to_savepoint })
        } else if self.eat_kw("SAVEPOINT") {
            Ok(Stmt::Savepoint {
                name: self.ident()?,
            })
        } else if self.eat_kw("CHECKPOINT") {
            Ok(Stmt::Checkpoint)
        } else if self.eat_kw("ANALYZE") {
            // `ANALYZE [table]` — a bare identifier next is the table;
            // statements are `;`-separated, so anything else ends it.
            let table = match self.peek() {
                Some(Tok::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            Ok(Stmt::Analyze { table })
        } else if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            Ok(Stmt::Explain {
                analyze,
                stmt: Box::new(self.stmt()?),
            })
        } else {
            Err(DbError::SqlParse(format!(
                "unexpected statement start: {:?}",
                self.peek()
            )))
        }
    }

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let if_not_exists = if self.eat_kw("IF") {
                self.expect_kw("NOT")?;
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            self.expect_tok(&Tok::LParen)?;
            let mut columns = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = self.data_type()?;
                columns.push(ColumnDef { name: cname, ty });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            Ok(Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            })
        } else if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_tok(&Tok::LParen)?;
            let column = self.ident()?;
            self.expect_tok(&Tok::RParen)?;
            let ordered = if self.eat_kw("USING") {
                if self.eat_kw("ORDERED") {
                    true
                } else if self.eat_kw("HASH") {
                    false
                } else {
                    return Err(DbError::SqlParse(
                        "expected ORDERED or HASH after USING".into(),
                    ));
                }
            } else {
                false
            };
            Ok(Stmt::CreateIndex {
                name,
                table,
                column,
                ordered,
            })
        } else if self.eat_kw("TRIGGER") {
            let name = self.ident()?;
            self.expect_kw("AFTER")?;
            let event = if self.eat_kw("DELETE") {
                TriggerEvent::Delete
            } else if self.eat_kw("INSERT") {
                TriggerEvent::Insert
            } else {
                return Err(DbError::SqlParse(
                    "expected DELETE or INSERT after AFTER".into(),
                ));
            };
            self.expect_kw("ON")?;
            let table = self.ident()?;
            let granularity = if self.eat_kw("FOR") {
                self.expect_kw("EACH")?;
                if self.eat_kw("ROW") {
                    TriggerGranularity::Row
                } else {
                    self.expect_kw("STATEMENT")?;
                    TriggerGranularity::Statement
                }
            } else {
                TriggerGranularity::Statement
            };
            self.expect_kw("BEGIN")?;
            let mut body = Vec::new();
            loop {
                while self.eat_tok(&Tok::Semi) {}
                if self.eat_kw("END") {
                    break;
                }
                body.push(self.stmt()?);
            }
            Ok(Stmt::CreateTrigger {
                name,
                event,
                table,
                granularity,
                body,
            })
        } else {
            Err(DbError::SqlParse(
                "expected TABLE, INDEX, or TRIGGER after CREATE".into(),
            ))
        }
    }

    fn drop_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            Ok(Stmt::DropTable {
                name: self.ident()?,
                if_exists,
            })
        } else if self.eat_kw("TRIGGER") {
            Ok(Stmt::DropTrigger {
                name: self.ident()?,
            })
        } else {
            Err(DbError::SqlParse(
                "expected TABLE or TRIGGER after DROP".into(),
            ))
        }
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => DataType::Integer,
            "TEXT" | "STRING" | "CLOB" => DataType::Text,
            "VARCHAR" | "CHAR" | "CHARACTER" => {
                // Optional length, parsed and ignored.
                if self.eat_tok(&Tok::LParen) {
                    match self.next_tok()? {
                        Tok::Int(_) => {}
                        other => {
                            return Err(DbError::SqlParse(format!(
                                "expected length, found {other:?}"
                            )))
                        }
                    }
                    self.expect_tok(&Tok::RParen)?;
                }
                DataType::Text
            }
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            other => return Err(DbError::SqlParse(format!("unknown type `{other}`"))),
        };
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        // Optional column list: `(` followed by an identifier that is then
        // followed by `,` or `)` — otherwise it is a parenthesized SELECT.
        let mut columns = None;
        if self.peek() == Some(&Tok::LParen) && !self.peek2_kw("SELECT") && !self.peek2_kw("WITH") {
            self.expect_tok(&Tok::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            columns = Some(cols);
        }
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_tok(&Tok::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen)?;
                rows.push(row);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Select(Box::new(self.select_stmt()?))
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, filter })
    }

    fn update(&mut self) -> Result<Stmt> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Tok::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    // --------------------------------------------------------------
    // queries
    // --------------------------------------------------------------

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.ident()?;
                let columns = if self.eat_tok(&Tok::LParen) {
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.ident()?);
                        if !self.eat_tok(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect_tok(&Tok::RParen)?;
                    Some(cols)
                } else {
                    None
                };
                self.expect_kw("AS")?;
                self.expect_tok(&Tok::LParen)?;
                let body = self.union_body()?;
                self.expect_tok(&Tok::RParen)?;
                ctes.push(Cte {
                    name,
                    columns,
                    body,
                });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let body = self.union_body()?;
        let mut order_by = Vec::new();
        if self.peek_kw("ORDER") && self.peek2_kw("BY") {
            self.expect_kw("ORDER")?;
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next_tok()? {
                Tok::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(DbError::SqlParse(format!("bad LIMIT: {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    /// `core (UNION ALL core)*` where each core may be parenthesized.
    fn union_body(&mut self) -> Result<Vec<SelectCore>> {
        let mut cores = vec![self.core_maybe_paren()?];
        while self.peek_kw("UNION") {
            self.expect_kw("UNION")?;
            self.expect_kw("ALL")?;
            cores.push(self.core_maybe_paren()?);
        }
        Ok(cores)
    }

    fn core_maybe_paren(&mut self) -> Result<SelectCore> {
        if self.eat_tok(&Tok::LParen) {
            let core = self.select_core()?;
            self.expect_tok(&Tok::RParen)?;
            Ok(core)
        } else {
            self.select_core()
        }
    }

    fn select_core(&mut self) -> Result<SelectCore> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = Vec::new();
        loop {
            if self.eat_tok(&Tok::Star) {
                projections.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Some(Tok::Ident(_)))
                && self.peek2() == Some(&Tok::Dot)
                && self.toks.get(self.pos + 2) == Some(&Tok::Star)
            {
                let t = self.ident()?;
                self.expect_tok(&Tok::Dot)?;
                self.expect_tok(&Tok::Star)?;
                projections.push(SelectItem::QualifiedWildcard(t));
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") || self.projection_alias_ahead() {
                    Some(self.ident()?)
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                let name = self.ident()?;
                let alias = if self.eat_kw("AS") || self.table_alias_ahead() {
                    Some(self.ident()?)
                } else {
                    None
                };
                from.push(TableRef { name, alias });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectCore {
            distinct,
            projections,
            from,
            filter,
        })
    }

    /// Is the next token a bare projection alias (an identifier that does
    /// not start the next clause)?
    fn projection_alias_ahead(&self) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let up = s.to_ascii_uppercase();
                if up == "ORDER" {
                    return !self.peek2_kw("BY");
                }
                !matches!(
                    up.as_str(),
                    "FROM" | "WHERE" | "UNION" | "LIMIT" | "AS" | "END"
                )
            }
            _ => false,
        }
    }

    /// Is the next token a bare table alias?
    fn table_alias_ahead(&self) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let up = s.to_ascii_uppercase();
                if up == "ORDER" {
                    return !self.peek2_kw("BY");
                }
                !matches!(
                    up.as_str(),
                    "WHERE" | "UNION" | "LIMIT" | "END" | "ON" | "SET"
                )
            }
            _ => false,
        }
    }

    // --------------------------------------------------------------
    // expressions
    // --------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek_kw("NOT") && !self.peek2_kw("EXISTS") {
            self.expect_kw("NOT")?;
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        // EXISTS / NOT EXISTS.
        if self.peek_kw("EXISTS") || (self.peek_kw("NOT") && self.peek2_kw("EXISTS")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("EXISTS")?;
            self.expect_tok(&Tok::LParen)?;
            let q = self.select_stmt()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated,
            });
        }
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN lo AND hi — desugared at parse time into the
        // conjunction `left >= lo AND left <= hi` so the planner's
        // conjunct machinery (pushdown, range-seek extraction) sees
        // plain comparisons. Bounds parse at `additive` level so the
        // connecting AND is not swallowed.
        if self.peek_kw("BETWEEN") || (self.peek_kw("NOT") && self.peek2_kw("BETWEEN")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("BETWEEN")?;
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            let ge = Expr::Binary {
                left: Box::new(left.clone()),
                op: BinOp::Ge,
                right: Box::new(lo),
            };
            let le = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Le,
                right: Box::new(hi),
            };
            let both = Expr::Binary {
                left: Box::new(ge),
                op: BinOp::And,
                right: Box::new(le),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(both),
                }
            } else {
                both
            });
        }
        // [NOT] LIKE 'pattern' — the pattern must be a string literal so
        // its non-wildcard prefix is known at plan time.
        if self.peek_kw("LIKE") || (self.peek_kw("NOT") && self.peek2_kw("LIKE")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("LIKE")?;
            let pattern = match self.next_tok()? {
                Tok::Str(s) => s,
                other => {
                    return Err(DbError::SqlParse(format!(
                        "LIKE pattern must be a string literal, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        // [NOT] IN
        if self.peek_kw("IN") || (self.peek_kw("NOT") && self.peek2_kw("IN")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("IN")?;
            self.expect_tok(&Tok::LParen)?;
            if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                let q = self.select_stmt()?;
                self.expect_tok(&Tok::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_tok(&Tok::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Tok::Question) => {
                self.pos += 1;
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Tok::Dollar(n)) => {
                self.pos += 1;
                if n == 0 {
                    return Err(DbError::SqlParse(
                        "parameter indexes are 1-based: $0".into(),
                    ));
                }
                self.params = self.params.max(n);
                Ok(Expr::Param(n - 1))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                    let q = self.select_stmt()?;
                    self.expect_tok(&Tok::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(word)) => {
                let up = word.to_ascii_uppercase();
                match up.as_str() {
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "COUNT" | "MIN" | "MAX" | "SUM" if self.peek2() == Some(&Tok::LParen) => {
                        self.pos += 2;
                        let func = match up.as_str() {
                            "COUNT" => AggFunc::Count,
                            "MIN" => AggFunc::Min,
                            "MAX" => AggFunc::Max,
                            _ => AggFunc::Sum,
                        };
                        let arg = if self.eat_tok(&Tok::Star) {
                            if func != AggFunc::Count {
                                return Err(DbError::SqlParse(
                                    "`*` argument is only valid for COUNT".into(),
                                ));
                            }
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_tok(&Tok::RParen)?;
                        Ok(Expr::Aggregate { func, arg })
                    }
                    _ => {
                        self.pos += 1;
                        if self.eat_tok(&Tok::Dot) {
                            let col = self.ident()?;
                            Ok(Expr::Column {
                                table: Some(word),
                                name: col,
                            })
                        } else {
                            Ok(Expr::Column {
                                table: None,
                                name: word,
                            })
                        }
                    }
                }
            }
            other => Err(DbError::SqlParse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_types() {
        let s = parse_stmt("CREATE TABLE Customer (id INTEGER, Name VARCHAR(50), active BOOLEAN)")
            .unwrap();
        match s {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "Customer");
                assert!(!if_not_exists);
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].ty, DataType::Text);
                assert_eq!(columns[2].ty, DataType::Boolean);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_values_and_select() {
        let s = parse_stmt("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match s {
            Stmt::Insert {
                columns: Some(c),
                source: InsertSource::Values(rows),
                ..
            } => {
                assert_eq!(c, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let s = parse_stmt("INSERT INTO t SELECT a, b FROM u WHERE a > 3").unwrap();
        assert!(matches!(
            s,
            Stmt::Insert {
                source: InsertSource::Select(_),
                columns: None,
                ..
            }
        ));
    }

    #[test]
    fn order_as_table_name() {
        // The paper's schema calls a table `Order`; `ORDER BY` must still work.
        let s = parse_stmt("SELECT id FROM Order O WHERE O.parentId = 4 ORDER BY id DESC").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.body[0].from[0].name, "Order");
                assert_eq!(sel.body[0].from[0].alias.as_deref(), Some("O"));
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].desc);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_in_subquery() {
        let s = parse_stmt("DELETE FROM Order WHERE parentId NOT IN (SELECT id FROM Customer)")
            .unwrap();
        match s {
            Stmt::Delete {
                table,
                filter: Some(Expr::InSubquery { negated, .. }),
            } => {
                assert_eq!(table, "Order");
                assert!(negated);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_union_all_order_by() {
        let sql = "
            WITH Q1(C1, C2) AS (SELECT id, Name FROM Customer WHERE Name = 'John'),
                 Q2(C1, C2) AS (SELECT C1, NULL FROM Q1)
            (SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2)
            ORDER BY C1, C2";
        let s = parse_stmt(sql).unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.ctes.len(), 2);
                assert_eq!(sel.ctes[0].columns.as_ref().unwrap().len(), 2);
                assert_eq!(sel.body.len(), 2);
                assert_eq!(sel.order_by.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trigger_with_body() {
        let sql = "CREATE TRIGGER del_cust AFTER DELETE ON Customer FOR EACH ROW BEGIN
            DELETE FROM Order WHERE parentId = OLD.id;
        END";
        let s = parse_stmt(sql).unwrap();
        match s {
            Stmt::CreateTrigger {
                name,
                event,
                table,
                granularity,
                body,
            } => {
                assert_eq!(name, "del_cust");
                assert_eq!(event, TriggerEvent::Delete);
                assert_eq!(table, "Customer");
                assert_eq!(granularity, TriggerGranularity::Row);
                assert_eq!(body.len(), 1);
                assert!(matches!(&body[0], Stmt::Delete { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn per_statement_trigger() {
        let sql = "CREATE TRIGGER t AFTER DELETE ON A FOR EACH STATEMENT BEGIN
            DELETE FROM B WHERE parentId NOT IN (SELECT id FROM A);
        END";
        match parse_stmt(sql).unwrap() {
            Stmt::CreateTrigger { granularity, .. } => {
                assert_eq!(granularity, TriggerGranularity::Statement)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let s = parse_stmt("SELECT COUNT(*), MIN(id), MAX(id) FROM t").unwrap();
        match s {
            Stmt::Select(sel) => assert_eq!(sel.body[0].projections.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_stmt("SELECT 1 + 2 * 3 - 4").unwrap();
        match s {
            Stmt::Select(sel) => match &sel.body[0].projections[0] {
                SelectItem::Expr { expr, .. } => {
                    // ((1 + (2*3)) - 4)
                    match expr {
                        Expr::Binary {
                            op: BinOp::Sub,
                            left,
                            ..
                        } => match left.as_ref() {
                            Expr::Binary { op: BinOp::Add, .. } => {}
                            other => panic!("{other:?}"),
                        },
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_or_precedence() {
        let s = parse_stmt("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s {
            Stmt::Select(sel) => match sel.body[0].filter.as_ref().unwrap() {
                Expr::Binary { op: BinOp::Or, .. } => {}
                other => panic!("expected OR at top: {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_with_multiple_sets() {
        let s = parse_stmt("UPDATE t SET a = 1, b = NULL WHERE id = 5").unwrap();
        match s {
            Stmt::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_statement_script() {
        let stmts = parse_script("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn positional_parameters_number_left_to_right() {
        let (s, n) = parse_stmt_with_params("INSERT INTO t VALUES (?, ?, ?)").unwrap();
        assert_eq!(n, 3);
        match s {
            Stmt::Insert {
                source: InsertSource::Values(rows),
                ..
            } => {
                assert_eq!(
                    rows[0],
                    vec![Expr::Param(0), Expr::Param(1), Expr::Param(2)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dollar_parameters_reuse_slots() {
        let (s, n) =
            parse_stmt_with_params("SELECT * FROM t WHERE a = $1 OR b = $1 OR c = $2").unwrap();
        assert_eq!(n, 2);
        assert!(matches!(s, Stmt::Select(_)));
        assert!(parse_stmt_with_params("SELECT $0").is_err());
    }

    #[test]
    fn parameters_allowed_in_where_and_sets() {
        let (_, n) = parse_stmt_with_params("UPDATE t SET a = ?, b = ? WHERE id = ?").unwrap();
        assert_eq!(n, 3);
        let (_, n) = parse_stmt_with_params("DELETE FROM t WHERE id = ?").unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn figure5_outer_union_parses() {
        let sql = "
        WITH Q1(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
            SELECT id, Name, Address_City, Address_State,
                   NULL, NULL, NULL, NULL, NULL
            FROM Customer
            WHERE Name = 'John'
        ), Q2(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
            SELECT C1, NULL, NULL, NULL, id, Status, NULL, NULL, NULL
            FROM Q1, Order O
            WHERE O.parentId = Q1.C1
        ), Q3(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
            SELECT C1, NULL, NULL, NULL, C5, NULL, id, ItemName, Qty
            FROM Q2, OrderLine OL
            WHERE OL.parentId = Q2.C5
        ) (
            SELECT * FROM Q1
        ) UNION ALL (
            SELECT * FROM Q2
        ) UNION ALL (
            SELECT * FROM Q3
        )
        ORDER BY C1, C5, C7";
        let s = parse_stmt(sql).unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.ctes.len(), 3);
                assert_eq!(sel.body.len(), 3);
                assert_eq!(sel.order_by.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_and_ordered_index() {
        assert_eq!(
            parse_stmt("ANALYZE").unwrap(),
            Stmt::Analyze { table: None }
        );
        assert_eq!(
            parse_stmt("ANALYZE asr").unwrap(),
            Stmt::Analyze {
                table: Some("asr".into())
            }
        );
        match parse_stmt("CREATE INDEX i ON t (num) USING ORDERED").unwrap() {
            Stmt::CreateIndex { ordered, .. } => assert!(ordered),
            other => panic!("{other:?}"),
        }
        match parse_stmt("CREATE INDEX i ON t (num) USING HASH").unwrap() {
            Stmt::CreateIndex { ordered, .. } => assert!(!ordered),
            other => panic!("{other:?}"),
        }
        match parse_stmt("CREATE INDEX i ON t (num)").unwrap() {
            Stmt::CreateIndex { ordered, .. } => assert!(!ordered, "hash is the default"),
            other => panic!("{other:?}"),
        }
        assert!(parse_stmt("CREATE INDEX i ON t (num) USING BTREE").is_err());
    }

    #[test]
    fn between_desugars_to_comparisons() {
        let s = parse_stmt("SELECT * FROM t WHERE num BETWEEN 3 AND 7").unwrap();
        let expected = parse_stmt("SELECT * FROM t WHERE num >= 3 AND num <= 7").unwrap();
        assert_eq!(s, expected);
        let s = parse_stmt("SELECT * FROM t WHERE num NOT BETWEEN 3 AND 7").unwrap();
        let expected = parse_stmt("SELECT * FROM t WHERE NOT (num >= 3 AND num <= 7)").unwrap();
        assert_eq!(s, expected);
    }

    #[test]
    fn like_requires_literal_pattern() {
        match parse_stmt("SELECT * FROM t WHERE name LIKE 'Jo%'").unwrap() {
            Stmt::Select(sel) => match sel.body[0].filter.as_ref().unwrap() {
                Expr::Like {
                    pattern, negated, ..
                } => {
                    assert_eq!(pattern, "Jo%");
                    assert!(!negated);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match parse_stmt("SELECT * FROM t WHERE name NOT LIKE '%x_'").unwrap() {
            Stmt::Select(sel) => {
                assert!(matches!(
                    sel.body[0].filter,
                    Some(Expr::Like { negated: true, .. })
                ));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_stmt("SELECT * FROM t WHERE name LIKE other").is_err());
    }

    #[test]
    fn exists_and_scalar_subquery() {
        let s =
            parse_stmt("SELECT (SELECT MAX(id) FROM t) FROM u WHERE NOT EXISTS (SELECT * FROM v)")
                .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert!(matches!(
                    sel.body[0].projections[0],
                    SelectItem::Expr {
                        expr: Expr::ScalarSubquery(_),
                        ..
                    }
                ));
                assert!(matches!(
                    sel.body[0].filter,
                    Some(Expr::Exists { negated: true, .. })
                ));
            }
            other => panic!("{other:?}"),
        }
    }
}
