//! System introspection views (`rdb_*`): read-only virtual tables that
//! expose the engine's internal state — catalog, statistics, metrics,
//! live sessions, per-statement execution statistics, and durability
//! telemetry — through the ordinary SQL pipeline.
//!
//! A system view is resolved by the planner like a table (after CTEs and
//! user tables, so a user table of the same name shadows the view),
//! materialized at cursor-open time into an in-memory row set, and then
//! flows through the same scan/join/sort/limit operators as any other
//! FROM source. That means `WHERE`, joins against user tables,
//! `ORDER BY`, `LIMIT`, aggregates, and CTEs all compose with system
//! views for free.
//!
//! The module also owns the two instrumentation substrates the views
//! read from:
//!
//! * [`StatementStore`] — a pg_stat_statements-style aggregate keyed by
//!   a literal-normalized statement fingerprint, LRU-bounded, feeding
//!   `rdb_statements`.
//! * [`SessionRegistry`] — live per-session state (state machine,
//!   snapshot epoch, current statement, cumulative writer-lock wait),
//!   feeding `rdb_sessions`.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::cells::FlagCell;
use crate::engine::Database;
use crate::error::{DbError, Result};
use crate::lexer::{lex, Tok};
use crate::obs::Histogram;
use crate::value::{Row, Value};

// ---------------------------------------------------------------------------
// view catalog
// ---------------------------------------------------------------------------

/// Names of all system views, sorted. `rdb_tables` lists user tables
/// only; the views themselves are virtual and live outside the catalog.
pub const SYSTEM_VIEWS: &[&str] = &[
    "rdb_checkpoints",
    "rdb_columns",
    "rdb_indexes",
    "rdb_metrics",
    "rdb_sessions",
    "rdb_statements",
    "rdb_tables",
    "rdb_wal",
];

/// Column names of the system view `name` (lower-cased), or `None` if
/// `name` is not a system view.
pub fn view_columns(name: &str) -> Option<&'static [&'static str]> {
    Some(match name {
        "rdb_tables" => &["name", "rows", "pages", "indexes", "backend", "analyzed"],
        "rdb_columns" => &[
            "table_name",
            "column_name",
            "ordinal",
            "distinct_values",
            "nulls",
            "min_value",
            "max_value",
            "buckets",
        ],
        "rdb_indexes" => &["table_name", "column_name", "kind", "entries"],
        "rdb_metrics" => &["name", "kind", "labels", "value"],
        "rdb_sessions" => &[
            "id",
            "state",
            "snapshot_epoch",
            "statement",
            "wait_us",
            "statements",
        ],
        "rdb_statements" => &[
            "fingerprint",
            "sql",
            "calls",
            "rows",
            "total_us",
            "mean_us",
            "p95_us",
            "plan_cache_hits",
            "wal_bytes",
        ],
        "rdb_wal" => &["name", "value"],
        "rdb_checkpoints" => &["name", "value"],
        _ => return None,
    })
}

/// Whether `name` (already lower-cased) names a system view.
pub fn is_system_view(name: &str) -> bool {
    view_columns(name).is_some()
}

// ---------------------------------------------------------------------------
// statement fingerprinting
// ---------------------------------------------------------------------------

/// A literal-normalized statement identity: the FNV-1a 64 hash of the
/// normalized text plus the text itself (for display in
/// `rdb_statements`).
#[derive(Debug, Clone)]
pub struct Fingerprint {
    /// FNV-1a 64 hash of [`Fingerprint::normalized`].
    pub hash: u64,
    /// The statement with literals and placeholders replaced by `?`,
    /// IN-lists and multi-row `VALUES` collapsed to one element.
    pub normalized: String,
}

/// Compute the fingerprint of one SQL statement.
///
/// Normalization re-lexes the text, replaces every literal
/// (`Int`/`Str`) and placeholder (`?`/`$n`) token with `?`, drops a
/// trailing `;`, joins tokens with single spaces, and then collapses
/// repeated parameter groups so `IN (1, 2, 3)` and `IN (?)` share a
/// fingerprint, as do multi-row and single-row `VALUES` lists. Text
/// that fails to lex (never the case for statements that executed)
/// falls back to the trimmed raw text. The hash is computed over the
/// case-folded text — the parser matches keywords case-insensitively,
/// so `select` and `SELECT` variants are the same statement — while
/// `normalized` keeps the original casing for display.
pub fn fingerprint(sql: &str) -> Fingerprint {
    let normalized = normalize(sql);
    Fingerprint {
        hash: fnv1a(normalized.to_ascii_lowercase().as_bytes()),
        normalized,
    }
}

fn normalize(sql: &str) -> String {
    let Ok(toks) = lex(sql) else {
        return sql.trim().to_string();
    };
    let mut words: Vec<String> = Vec::with_capacity(toks.len());
    for t in &toks {
        match t {
            Tok::Int(_) | Tok::Str(_) | Tok::Question | Tok::Dollar(_) => {
                words.push("?".to_string())
            }
            other => words.push(other.to_string()),
        }
    }
    while words.last().is_some_and(|w| w == ";") {
        words.pop();
    }
    let mut text = words.join(" ");
    // Collapse parameter lists to one element: first `? , ?` → `?`
    // (IN-lists, one row of a VALUES list), then `( ? ) , ( ? )` →
    // `( ? )` (multi-row VALUES). Each runs to a fixpoint.
    loop {
        let next = text.replace("? , ?", "?");
        if next == text {
            break;
        }
        text = next;
    }
    loop {
        let next = text.replace("( ? ) , ( ? )", "( ? )");
        if next == text {
            break;
        }
        text = next;
    }
    text
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// per-statement statistics store
// ---------------------------------------------------------------------------

/// Maximum distinct fingerprints retained by the statement store; the
/// least-recently-updated entry is evicted beyond this.
pub const STATEMENT_STORE_CAPACITY: usize = 256;

/// Aggregated execution statistics for one statement fingerprint, as
/// surfaced by `rdb_statements` and [`Database::statement_statistics`].
#[derive(Debug, Clone)]
pub struct StatementStats {
    /// Fingerprint hash (join key with the slow-query log).
    pub fingerprint: u64,
    /// Literal-normalized statement text.
    pub sql: String,
    /// Successful executions recorded.
    pub calls: u64,
    /// Rows returned (queries) or affected (DML), summed over calls.
    pub rows: u64,
    /// Total execution time, nanoseconds.
    pub total_ns: u64,
    /// Mean execution time, nanoseconds.
    pub mean_ns: u64,
    /// 95th-percentile execution time (histogram upper bound),
    /// nanoseconds.
    pub p95_ns: u64,
    /// Executions that reused a cached or prepared plan.
    pub plan_cache_hits: u64,
    /// WAL bytes appended while these statements ran.
    pub wal_bytes: u64,
}

#[derive(Debug)]
struct StatementEntry {
    sql: String,
    calls: u64,
    rows: u64,
    total_ns: u64,
    latency: Histogram,
    plan_cache_hits: u64,
    wal_bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: HashMap<u64, StatementEntry>,
    tick: u64,
    evictions: u64,
}

/// pg_stat_statements-style store: per-fingerprint execution aggregates,
/// bounded by [`STATEMENT_STORE_CAPACITY`] with least-recently-updated
/// eviction. Disabled by default; when disabled the execution funnel
/// pays a single atomic flag read per statement.
#[derive(Debug, Default)]
pub(crate) struct StatementStore {
    enabled: FlagCell,
    inner: Mutex<StoreInner>,
}

impl StatementStore {
    /// Whether recording is enabled.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Enable or disable recording. Disabling keeps existing aggregates.
    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Record one successful execution under `fp`.
    pub(crate) fn record(&self, fp: &Fingerprint, rows: u64, ns: u64, plan_hit: bool, wal: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&fp.hash) && inner.entries.len() >= STATEMENT_STORE_CAPACITY
        {
            // Evict the least-recently-updated fingerprint (same O(n)
            // sweep the plan cache uses; n is bounded by the capacity).
            if let Some(&victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&victim);
                inner.evictions += 1;
            }
        }
        let entry = inner
            .entries
            .entry(fp.hash)
            .or_insert_with(|| StatementEntry {
                sql: fp.normalized.clone(),
                calls: 0,
                rows: 0,
                total_ns: 0,
                latency: Histogram::new(),
                plan_cache_hits: 0,
                wal_bytes: 0,
                last_used: 0,
            });
        entry.calls += 1;
        entry.rows += rows;
        entry.total_ns += ns;
        entry.latency.record(ns);
        entry.plan_cache_hits += plan_hit as u64;
        entry.wal_bytes += wal;
        entry.last_used = tick;
    }

    /// The `RESET` hook: drop all aggregates (keeps the enabled flag).
    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.evictions = 0;
    }

    /// Number of fingerprints currently tracked.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Entries evicted by the capacity bound since the last reset.
    pub(crate) fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Snapshot all aggregates, heaviest (by total time) first; ties
    /// break on the fingerprint for deterministic output.
    pub(crate) fn snapshot(&self) -> Vec<StatementStats> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<StatementStats> = inner
            .entries
            .iter()
            .map(|(&hash, e)| StatementStats {
                fingerprint: hash,
                sql: e.sql.clone(),
                calls: e.calls,
                rows: e.rows,
                total_ns: e.total_ns,
                mean_ns: e.total_ns / e.calls.max(1),
                p95_ns: e.latency.p95_ns(),
                plan_cache_hits: e.plan_cache_hits,
                wal_bytes: e.wal_bytes,
            })
            .collect();
        out.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }
}

// ---------------------------------------------------------------------------
// session registry
// ---------------------------------------------------------------------------

/// What a session is doing right now (the `rdb_sessions.state` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, between statements.
    Idle,
    /// Classifying/parsing the statement text.
    Parsing,
    /// Running a statement through the engine.
    Executing,
    /// Blocked on the writer-admission token.
    WaitingWriteLock,
    /// Committing an explicit transaction.
    Committing,
}

impl SessionState {
    /// Lower-snake rendering used by the view and the wire protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Idle => "idle",
            SessionState::Parsing => "parsing",
            SessionState::Executing => "executing",
            SessionState::WaitingWriteLock => "waiting_write_lock",
            SessionState::Committing => "committing",
        }
    }
}

/// One live session's instantaneous state, as surfaced by
/// `rdb_sessions`.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Registry-assigned session id (1-based; 0 means "no session").
    pub id: u64,
    /// Current state-machine state.
    pub state: SessionState,
    /// Pinned MVCC snapshot epoch, if the session holds one.
    pub snapshot_epoch: Option<u64>,
    /// Statement currently executing, if any.
    pub statement: Option<String>,
    /// Cumulative time spent waiting for the writer token, nanoseconds.
    pub wait_ns: u64,
    /// Statements executed by this session.
    pub statements: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    sessions: std::collections::BTreeMap<u64, SessionInfo>,
}

/// Registry of live sessions backing `rdb_sessions`. Shared (via `Arc`)
/// between the [`Database`] — which materializes the view — and the
/// session layer, which drives the per-session state machine. The
/// registry's lock is never held while engine locks are taken, so it
/// cannot participate in a lock cycle.
#[derive(Debug, Default)]
pub(crate) struct SessionRegistry {
    inner: Mutex<RegistryInner>,
}

impl SessionRegistry {
    /// Register a new session and return its id.
    pub(crate) fn register(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.sessions.insert(
            id,
            SessionInfo {
                id,
                state: SessionState::Idle,
                snapshot_epoch: None,
                statement: None,
                wait_ns: 0,
                statements: 0,
            },
        );
        id
    }

    /// Remove a closed session.
    pub(crate) fn unregister(&self, id: u64) {
        self.inner.lock().unwrap().sessions.remove(&id);
    }

    fn with<R>(&self, id: u64, f: impl FnOnce(&mut SessionInfo) -> R) -> Option<R> {
        self.inner.lock().unwrap().sessions.get_mut(&id).map(f)
    }

    /// Transition the session's state machine.
    pub(crate) fn set_state(&self, id: u64, state: SessionState) {
        self.with(id, |s| s.state = state);
    }

    /// Mark a statement as starting: state moves to `parsing`, the text
    /// is published, and the session's statement counter bumps.
    pub(crate) fn statement_begin(&self, id: u64, sql: &str) {
        self.with(id, |s| {
            s.state = SessionState::Parsing;
            s.statement = Some(sql.to_string());
            s.statements += 1;
        });
    }

    /// Mark the statement as finished: back to `idle`, text cleared.
    pub(crate) fn statement_end(&self, id: u64) {
        self.with(id, |s| {
            s.state = SessionState::Idle;
            s.statement = None;
        });
    }

    /// Attribute writer-token wait time to the session.
    pub(crate) fn add_wait(&self, id: u64, ns: u64) {
        self.with(id, |s| s.wait_ns += ns);
    }

    /// Publish (or clear) the session's pinned snapshot epoch.
    pub(crate) fn set_snapshot(&self, id: u64, epoch: Option<u64>) {
        self.with(id, |s| s.snapshot_epoch = epoch);
    }

    /// Snapshot all live sessions in id order.
    pub(crate) fn snapshot(&self) -> Vec<SessionInfo> {
        self.inner
            .lock()
            .unwrap()
            .sessions
            .values()
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// current-session thread local
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_SESSION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// RAII guard marking the current thread as executing on behalf of a
/// session, so engine-level records (the slow-query log) can attribute
/// work to it. Nested scopes restore the previous id on drop.
pub(crate) struct SessionScope {
    prev: u64,
}

impl SessionScope {
    /// Enter the scope of session `id` on this thread.
    pub(crate) fn enter(id: u64) -> SessionScope {
        let prev = CURRENT_SESSION.with(|c| c.replace(id));
        SessionScope { prev }
    }
}

impl Drop for SessionScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_SESSION.with(|c| c.set(prev));
    }
}

/// The session id the current thread is executing for (0 outside any
/// session scope).
pub(crate) fn current_session() -> u64 {
    CURRENT_SESSION.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// row materialization
// ---------------------------------------------------------------------------

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn opt_int(v: Option<u64>) -> Value {
    v.map_or(Value::Null, int)
}

impl Database {
    /// Enable or disable per-statement statistics collection
    /// (`rdb_statements`). Off by default; when off the execution funnel
    /// pays one atomic flag read per statement. Existing aggregates are
    /// kept across disable/enable — use
    /// [`Database::reset_statement_statistics`] to drop them.
    pub fn set_statement_tracking(&self, on: bool) {
        self.statements.set_enabled(on);
    }

    /// Whether per-statement statistics collection is enabled.
    pub fn statement_tracking(&self) -> bool {
        self.statements.enabled()
    }

    /// The `RESET` hook: drop all per-statement aggregates.
    pub fn reset_statement_statistics(&self) {
        self.statements.reset();
    }

    /// Snapshot the per-statement statistics store, heaviest (by total
    /// execution time) first.
    pub fn statement_statistics(&self) -> Vec<StatementStats> {
        self.statements.snapshot()
    }

    /// The per-statement statistics as a JSON array (the payload of the
    /// HTTP `/statements` endpoint).
    pub fn statements_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let items: Vec<String> = self
            .statement_statistics()
            .iter()
            .map(|st| {
                format!(
                    "{{\"fingerprint\":\"{:016x}\",\"sql\":\"{}\",\"calls\":{},\"rows\":{},\
                     \"total_us\":{},\"mean_us\":{},\"p95_us\":{},\"plan_cache_hits\":{},\
                     \"wal_bytes\":{}}}",
                    st.fingerprint,
                    esc(&st.sql),
                    st.calls,
                    st.rows,
                    st.total_ns / 1_000,
                    st.mean_ns / 1_000,
                    st.p95_ns / 1_000,
                    st.plan_cache_hits,
                    st.wal_bytes
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }

    /// Materialize the rows of the system view `name`. Called by the
    /// executor when a scan's source resolved to a system view at plan
    /// time.
    pub(crate) fn sysview_rows(&self, name: &str) -> Result<Vec<Row>> {
        match name {
            "rdb_tables" => Ok(self.rows_tables()),
            "rdb_columns" => Ok(self.rows_columns()),
            "rdb_indexes" => Ok(self.rows_indexes()),
            "rdb_metrics" => Ok(self.rows_metrics()),
            "rdb_sessions" => Ok(self.rows_sessions()),
            "rdb_statements" => Ok(self.rows_statements()),
            "rdb_wal" => Ok(self.rows_wal()),
            "rdb_checkpoints" => Ok(self.rows_checkpoints()),
            other => Err(DbError::NoSuchTable(other.to_string())),
        }
    }

    fn rows_tables(&self) -> Vec<Row> {
        let backend = self.backend_kind().to_string();
        self.table_names()
            .into_iter()
            .map(|name| {
                let t = &self.tables[&name];
                let cols = t.schema.column_names();
                let indexes: Vec<String> = (0..cols.len())
                    .filter(|&ci| t.has_index(ci) || t.has_ordered_index(ci))
                    .map(|ci| {
                        let kind = if t.has_ordered_index(ci) {
                            "ordered"
                        } else {
                            "hash"
                        };
                        format!("{}({kind})", cols[ci])
                    })
                    .collect();
                vec![
                    s(name.clone()),
                    int(t.len() as u64),
                    opt_int(self.table_pages_hint(&name)),
                    s(indexes.join(", ")),
                    s(backend.clone()),
                    Value::Bool(t.statistics().is_some()),
                ]
            })
            .collect()
    }

    fn rows_columns(&self) -> Vec<Row> {
        let mut rows = Vec::new();
        for name in self.table_names() {
            let t = &self.tables[&name];
            let stats = t.statistics();
            for (ci, col) in t.schema.column_names().into_iter().enumerate() {
                let cs = stats.map(|ts| &ts.columns[ci]);
                rows.push(vec![
                    s(name.clone()),
                    s(col),
                    int(ci as u64),
                    opt_int(cs.map(|c| c.distinct)),
                    opt_int(cs.map(|c| c.null_count)),
                    cs.and_then(|c| c.min.clone()).unwrap_or(Value::Null),
                    cs.and_then(|c| c.max.clone()).unwrap_or(Value::Null),
                    int(cs.map_or(0, |c| c.buckets.len() as u64)),
                ]);
            }
        }
        rows
    }

    fn rows_indexes(&self) -> Vec<Row> {
        let mut rows = Vec::new();
        for name in self.table_names() {
            let t = &self.tables[&name];
            for (ci, col) in t.schema.column_names().into_iter().enumerate() {
                if !t.has_index(ci) && !t.has_ordered_index(ci) {
                    continue;
                }
                let kind = if t.has_ordered_index(ci) {
                    "ordered"
                } else {
                    "hash"
                };
                rows.push(vec![
                    s(name.clone()),
                    s(col),
                    s(kind),
                    int(t.index_distinct(ci) as u64),
                ]);
            }
        }
        rows
    }

    fn rows_metrics(&self) -> Vec<Row> {
        self.metrics()
            .into_iter()
            .map(|m| {
                let labels: Vec<String> =
                    m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                vec![
                    s(m.name),
                    s(match m.kind {
                        crate::obs::MetricKind::Counter => "counter",
                        crate::obs::MetricKind::Gauge => "gauge",
                    }),
                    s(labels.join(",")),
                    int(m.value),
                ]
            })
            .collect()
    }

    fn rows_sessions(&self) -> Vec<Row> {
        self.sessions
            .snapshot()
            .into_iter()
            .map(|info| {
                vec![
                    int(info.id),
                    s(info.state.as_str()),
                    opt_int(info.snapshot_epoch),
                    info.statement.map_or(Value::Null, Value::Str),
                    int(info.wait_ns / 1_000),
                    int(info.statements),
                ]
            })
            .collect()
    }

    fn rows_statements(&self) -> Vec<Row> {
        self.statements
            .snapshot()
            .into_iter()
            .map(|st| {
                vec![
                    s(format!("{:016x}", st.fingerprint)),
                    s(st.sql),
                    int(st.calls),
                    int(st.rows),
                    int(st.total_ns / 1_000),
                    int(st.mean_ns / 1_000),
                    int(st.p95_ns / 1_000),
                    int(st.plan_cache_hits),
                    int(st.wal_bytes),
                ]
            })
            .collect()
    }

    fn rows_wal(&self) -> Vec<Row> {
        self.wal_view_rows()
            .into_iter()
            .map(|(name, value)| vec![s(name), int(value)])
            .collect()
    }

    fn rows_checkpoints(&self) -> Vec<Row> {
        self.checkpoint_view_rows()
            .into_iter()
            .map(|(name, value)| vec![s(name), int(value)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_placeholders_normalize_alike() {
        let a = fingerprint("SELECT name FROM t WHERE id = 42");
        let b = fingerprint("SELECT name FROM t WHERE id = ?");
        let c = fingerprint("SELECT name FROM t WHERE id = $1");
        let d = fingerprint("select name from t where id = 'x';");
        assert_eq!(a.hash, b.hash);
        assert_eq!(b.hash, c.hash);
        assert_eq!(c.hash, d.hash);
        assert_eq!(a.normalized, "SELECT name FROM t WHERE id = ?");
    }

    #[test]
    fn in_lists_collapse() {
        let a = fingerprint("SELECT * FROM t WHERE id IN (1, 2, 3)");
        let b = fingerprint("SELECT * FROM t WHERE id IN (7)");
        assert_eq!(a.hash, b.hash);
        assert!(a.normalized.contains("IN ( ? )"));
    }

    #[test]
    fn values_rows_collapse() {
        let a = fingerprint("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
        let b = fingerprint("INSERT INTO t VALUES (9, 'z')");
        assert_eq!(a.hash, b.hash);
        assert!(a.normalized.ends_with("VALUES ( ? )"));
    }

    #[test]
    fn distinct_statements_differ() {
        let a = fingerprint("SELECT a FROM t");
        let b = fingerprint("SELECT b FROM t");
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn store_caps_and_evicts_least_recently_updated() {
        let store = StatementStore::default();
        store.set_enabled(true);
        for i in 0..STATEMENT_STORE_CAPACITY + 10 {
            let fp = fingerprint(&format!("SELECT c{i} FROM t"));
            store.record(&fp, 1, 1_000, false, 0);
        }
        assert_eq!(store.len(), STATEMENT_STORE_CAPACITY);
        assert_eq!(store.evictions(), 10);
        // The earliest fingerprints were evicted; the latest survive.
        let survivors: Vec<String> = store.snapshot().into_iter().map(|s| s.sql).collect();
        assert!(!survivors.iter().any(|s| s.contains("c0 ")));
        store.reset();
        assert_eq!(store.len(), 0);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn registry_tracks_lifecycle() {
        let reg = SessionRegistry::default();
        let a = reg.register();
        let b = reg.register();
        assert_ne!(a, b);
        reg.statement_begin(a, "SELECT 1");
        reg.set_state(a, SessionState::Executing);
        reg.add_wait(a, 5_000);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        let sa = snap.iter().find(|s| s.id == a).unwrap();
        assert_eq!(sa.state, SessionState::Executing);
        assert_eq!(sa.statement.as_deref(), Some("SELECT 1"));
        assert_eq!(sa.wait_ns, 5_000);
        assert_eq!(sa.statements, 1);
        reg.statement_end(a);
        reg.unregister(b);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, SessionState::Idle);
        assert!(snap[0].statement.is_none());
    }

    #[test]
    fn session_scope_nests_and_restores() {
        assert_eq!(current_session(), 0);
        {
            let _outer = SessionScope::enter(3);
            assert_eq!(current_session(), 3);
            {
                let _inner = SessionScope::enter(7);
                assert_eq!(current_session(), 7);
            }
            assert_eq!(current_session(), 3);
        }
        assert_eq!(current_session(), 0);
    }
}
