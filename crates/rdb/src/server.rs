//! Line-protocol TCP front-end over a [`SharedDatabase`].
//!
//! One session per connection, one statement per line. Responses:
//!
//! - `ROWS <n>` followed by `n` tab-separated rows, for a result set
//! - `OK <n>` for DML (`n` rows affected)
//! - `OK` for DDL and transaction control
//! - `ERR <message>` on failure (the connection stays usable)
//!
//! `BEGIN`/`COMMIT`/`ROLLBACK` scope a per-connection transaction via
//! [`Session`]; a connection that drops mid-transaction is rolled back
//! by the session's `Drop`. `QUIT` (or EOF) closes the connection.
//! Lines starting with `.stat` are control commands handled by the
//! server itself: `statements`/`sessions`/`tables` run a `SELECT` over
//! the matching system view, `on`/`off` toggle statement tracking, and
//! `reset` clears the statement store.
//!
//! Shutdown is graceful: the accept loop stops admitting connections,
//! handler threads finish their in-flight statement and close, and the
//! final drain forces the pending group-commit window to disk
//! ([`Database::wal_sync`](crate::Database::wal_sync)) so every
//! acknowledged commit is durable before [`ServerHandle::shutdown`]
//! returns.

use crate::session::{Session, SqlOutcome};
use crate::SharedDatabase;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// TCP server builder: binds and spawns the accept loop.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `shared` until
    /// [`ServerHandle::shutdown`]. Each connection gets its own session
    /// and handler thread.
    pub fn start(shared: SharedDatabase, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = accept_shared.clone();
                        let stop = accept_stop.clone();
                        handlers.push(std::thread::spawn(move || {
                            let _ = serve_connection(stream, &shared, &stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(ServerHandle {
            shared,
            addr: local,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }
}

/// Handle to a running server: its bound address and the shutdown knob.
pub struct ServerHandle {
    shared: SharedDatabase,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The address the server actually bound (port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, let in-flight statements finish, join every
    /// handler, then drain the group-commit window to disk. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.lock().unwrap().take() {
            let _ = h.join();
        }
        // Drain: any commits still waiting on the group-commit sync
        // ticket are fsynced and acknowledged before shutdown returns.
        self.shared.with_write(|db| {
            let _ = db.wal_sync();
        });
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection: read statements line by line, write responses.
fn serve_connection(
    stream: TcpStream,
    shared: &SharedDatabase,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // Short read timeouts let the handler notice shutdown between
    // statements without a dedicated control channel.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut session = shared.session();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") {
            break;
        }
        if let Some(cmd) = sql.strip_prefix(".stat") {
            stat_command(&mut writer, shared, &mut session, cmd.trim())?;
            continue;
        }
        respond(&mut writer, &mut session, sql)?;
        // In-flight work finished; shut down between statements only.
        if stop.load(Ordering::Acquire) && !session.in_transaction() {
            break;
        }
    }
    Ok(())
}

/// Handle a `.stat` control command: introspection without leaving the
/// line protocol. Sub-commands either run a `SELECT *` over the matching
/// system view (replying `ROWS` like any query) or flip the
/// statement-tracking switches:
///
/// - `.stat statements` / `.stat sessions` / `.stat tables`
/// - `.stat on` / `.stat off` — enable or disable per-statement tracking
/// - `.stat reset` — clear the statement store
fn stat_command(
    out: &mut TcpStream,
    shared: &SharedDatabase,
    session: &mut Session,
    cmd: &str,
) -> std::io::Result<()> {
    match cmd.to_ascii_lowercase().as_str() {
        "statements" => respond(out, session, "SELECT * FROM rdb_statements"),
        "sessions" => respond(out, session, "SELECT * FROM rdb_sessions"),
        "tables" => respond(out, session, "SELECT * FROM rdb_tables"),
        // The tracking switches take `&Database` (interior mutability),
        // so a read guard suffices and writers are never blocked.
        "on" => {
            shared.with_read(|db| db.set_statement_tracking(true));
            out.write_all(b"OK\n")
        }
        "off" => {
            shared.with_read(|db| db.set_statement_tracking(false));
            out.write_all(b"OK\n")
        }
        "reset" => {
            shared.with_read(|db| db.reset_statement_statistics());
            out.write_all(b"OK\n")
        }
        _ => {
            out.write_all(b"ERR unknown .stat command (statements|sessions|tables|on|off|reset)\n")
        }
    }
}

fn respond(out: &mut TcpStream, session: &mut Session, sql: &str) -> std::io::Result<()> {
    match session.execute(sql) {
        Ok(SqlOutcome::Rows(rs)) => {
            let mut buf = format!("ROWS {}\n", rs.rows.len());
            for row in &rs.rows {
                let mut first = true;
                for v in row {
                    if !first {
                        buf.push('\t');
                    }
                    first = false;
                    buf.push_str(&v.to_string());
                }
                buf.push('\n');
            }
            out.write_all(buf.as_bytes())
        }
        Ok(SqlOutcome::Affected(n)) => out.write_all(format!("OK {n}\n").as_bytes()),
        Ok(SqlOutcome::Done) => out.write_all(b"OK\n"),
        Err(e) => {
            let msg = e.to_string().replace('\n', " ");
            out.write_all(format!("ERR {msg}\n").as_bytes())
        }
    }
}
