//! Volcano-style pull executor for compiled physical plans.
//!
//! Each operator is a cursor exposing `next()`, which yields one output
//! row at a time. Rows are materialized lazily: base-table scans iterate
//! the table's slot array by reference and only clone rows that survive
//! the predicates pushed down into the scan, instead of cloning whole
//! tables up front the way the old AST interpreter did.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

use crate::ast::{AggFunc, BinOp, Expr, SelectStmt, UnOp};
use crate::engine::{Database, ResultSet, StatsCells};
use crate::error::{DbError, Result};
use crate::plan::{Access, CorePlan, JoinKind, PlanSlot, ProjStep, ScanPlan, SelectPlan};
use crate::table::Table;
use crate::value::{Row, Value};

/// Resolve a possibly-qualified column name against a binding layout.
/// Returns the offset into the joined row, `Ok(None)` when the name is
/// absent (so OLD/NEW pseudo-rows can be tried next), or an error for
/// ambiguous or half-resolved references.
pub(crate) fn layout_resolve(
    layout: &[(String, Vec<String>, usize)],
    table: Option<&str>,
    name: &str,
) -> Result<Option<usize>> {
    match table {
        Some(t) => {
            for (binding, cols, off) in layout {
                if binding.eq_ignore_ascii_case(t) {
                    if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                        return Ok(Some(off + ci));
                    }
                    return Err(DbError::NoSuchColumn(format!("{t}.{name}")));
                }
            }
            Ok(None)
        }
        None => {
            let mut found = None;
            for (binding, cols, off) in layout {
                if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                    if found.is_some() {
                        return Err(DbError::NoSuchColumn(format!(
                            "ambiguous column `{name}` (also in `{binding}`)"
                        )));
                    }
                    found = Some(off + ci);
                }
            }
            Ok(found)
        }
    }
}

/// SQL `LIKE` wildcard match: `%` matches any run of characters
/// (including empty), `_` matches exactly one. Case-sensitive, no escape
/// syntax. Iterative two-pointer matcher with greedy `%` backtracking.
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    // Resume points for the most recent `%`: pattern index after it and
    // the subject index it currently absorbs up to.
    let (mut star_pi, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_pi = pi;
            star_si = si;
            pi += 1;
        } else if star_pi != usize::MAX {
            // Mismatch past a `%`: widen what it absorbs by one char.
            star_si += 1;
            si = star_si;
            pi = star_pi + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// A row environment expressions can be evaluated against: resolves
/// column names to offsets and hands out values by offset.
pub(crate) trait Scope {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<Option<usize>>;
    fn value(&self, off: usize) -> &Value;
}

/// Borrowed view over a binding layout plus a flat value slice — the
/// executor's zero-copy scope. An empty value slice is legal for
/// resolution-only probes (validation, row-independent key evaluation).
pub(crate) struct SliceEnv<'a> {
    pub layout: &'a [(String, Vec<String>, usize)],
    pub values: &'a [Value],
}

impl Scope for SliceEnv<'_> {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<Option<usize>> {
        layout_resolve(self.layout, table, name)
    }
    fn value(&self, off: usize) -> &Value {
        &self.values[off]
    }
}

/// Row environment during expression evaluation: bindings with their
/// column names, laid out contiguously in `values`. Owned variant used
/// by the DML paths (INSERT/UPDATE/DELETE), which bind one table's row.
#[derive(Debug, Default, Clone)]
pub(crate) struct RowEnv {
    /// (binding name, column names, offset into `values`).
    pub layout: Vec<(String, Vec<String>, usize)>,
    pub values: Vec<Value>,
}

impl RowEnv {
    pub fn single(binding: &str, columns: &[String], row: &[Value]) -> Self {
        RowEnv {
            layout: vec![(binding.to_string(), columns.to_vec(), 0)],
            values: row.to_vec(),
        }
    }

    /// Rebind the environment to a new row without rebuilding the layout.
    /// Hot per-row loops construct the layout once per statement and call
    /// this per tuple.
    pub fn set_values(&mut self, row: &[Value]) {
        self.values.clear();
        self.values.extend_from_slice(row);
    }

    /// Resolve a possibly-qualified column to an offset.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<Option<usize>> {
        layout_resolve(&self.layout, table, name)
    }
}

impl Scope for RowEnv {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<Option<usize>> {
        RowEnv::resolve(self, table, name)
    }
    fn value(&self, off: usize) -> &Value {
        &self.values[off]
    }
}

/// A materialized relation (CTE body executed once per statement).
/// Column names live in the scan plans that read it, so only the rows
/// are kept here.
#[derive(Debug, Clone)]
pub(crate) struct Materialized {
    pub rows: Rc<Vec<Row>>,
}

pub(crate) type CteEnv = HashMap<String, Materialized>;

pub(crate) struct CachedSub {
    pub rows: Vec<Row>,
    /// First-column value set for IN probes (nulls excluded, tracked apart).
    pub set: HashSet<Value>,
    pub has_null: bool,
}

/// Probe set for a row-independent `IN (v1, v2, …)` list, built once per
/// statement instead of re-evaluating the list for every outer row.
pub(crate) struct CachedList {
    pub set: HashSet<Value>,
    pub has_null: bool,
}

/// Per-statement evaluation context: the `OLD`/`NEW` trigger row, if any,
/// bound parameter values, and a cache for uncorrelated subquery results.
pub(crate) struct EvalCtx<'a> {
    /// Pseudo-table name (`OLD` or `NEW`) and its column/value bindings.
    pub pseudo_row: Option<(&'a str, &'a [(String, Value)])>,
    /// Values bound to `?`/`$n` placeholders, indexed by slot.
    pub params: &'a [Value],
    pub sub_cache: RefCell<HashMap<usize, Rc<CachedSub>>>,
    /// Probe sets for row-independent IN-lists, keyed by the list's
    /// address inside the (kept-alive) statement or plan.
    pub list_cache: RefCell<HashMap<usize, Rc<CachedList>>>,
    /// Plans executed during this statement. The subquery cache keys on
    /// `&SelectStmt` addresses inside plan expressions, so every plan that
    /// ran must outlive the statement even if the shared plan slot is
    /// replaced mid-statement.
    pub keepalive: RefCell<Vec<std::sync::Arc<SelectPlan>>>,
    /// Shared plan slot for the top-level statement, set by
    /// `execute`/`execute_prepared` after construction. Only the outer
    /// SELECT consults it; nested selects (subqueries, triggers) always
    /// plan fresh, so the slot can never serve the wrong statement.
    pub plan_slot: Option<std::sync::Arc<PlanSlot>>,
    /// MVCC snapshot epoch the statement reads at, set by the `&self`
    /// read path (`Database::query_at`). `None` reads the live committed
    /// state. Scans over tables that changed since the snapshot fall
    /// back to reconstructing the epoch's row image (see
    /// [`ScanCur::start`]).
    pub snapshot: Option<u64>,
    /// Whether this statement's plan came from the plan cache (or a
    /// prepared statement, which reuses its compiled plan by
    /// construction). Feeds the `plan_cache_hits` column of
    /// `rdb_statements`.
    pub plan_cache_hit: bool,
}

impl<'a> EvalCtx<'a> {
    pub fn new() -> Self {
        EvalCtx {
            pseudo_row: None,
            params: &[],
            sub_cache: RefCell::new(HashMap::new()),
            list_cache: RefCell::new(HashMap::new()),
            keepalive: RefCell::new(Vec::new()),
            plan_slot: None,
            snapshot: None,
            plan_cache_hit: false,
        }
    }

    pub fn with_pseudo(name: &'a str, row: &'a [(String, Value)]) -> Self {
        EvalCtx {
            pseudo_row: Some((name, row)),
            params: &[],
            sub_cache: RefCell::new(HashMap::new()),
            list_cache: RefCell::new(HashMap::new()),
            keepalive: RefCell::new(Vec::new()),
            plan_slot: None,
            snapshot: None,
            plan_cache_hit: false,
        }
    }

    pub fn with_params(params: &'a [Value]) -> Self {
        EvalCtx {
            pseudo_row: None,
            params,
            sub_cache: RefCell::new(HashMap::new()),
            list_cache: RefCell::new(HashMap::new()),
            keepalive: RefCell::new(Vec::new()),
            plan_slot: None,
            snapshot: None,
            plan_cache_hit: false,
        }
    }
}

/// Everything a cursor needs besides its own state.
pub(crate) struct ExecCtx<'a, 'c> {
    pub db: &'a Database,
    pub ctx: &'a EvalCtx<'c>,
    pub ctes: &'a CteEnv,
}

/// Per-operator actuals accumulated during an `EXPLAIN ANALYZE` run.
/// Plain execution never allocates these, so the un-analyzed path pays
/// nothing for the instrumentation.
#[derive(Debug, Default)]
pub(crate) struct OpProf {
    /// Rows the operator emitted.
    pub rows: Cell<u64>,
    /// Times the operator was (re)started; for index scans, the number
    /// of index probes issued.
    pub loops: Cell<u64>,
    /// Nanoseconds spent inside the operator's `next()` calls
    /// (children included — the tree is read top-down like `EXPLAIN
    /// ANALYZE` output in other engines).
    pub ns: Cell<u64>,
}

impl OpProf {
    fn add(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }
}

/// Profiling mirror of one [`CorePlan`]: an [`OpProf`] per operator the
/// renderer will print, keyed by position so the rendered tree and the
/// actuals stay aligned by construction.
#[derive(Debug, Default)]
pub(crate) struct CoreProf {
    /// The Project or Aggregate at the top of the core.
    pub output: OpProf,
    /// The Distinct wrapper, when present.
    pub distinct: OpProf,
    /// The residual Filter, when present.
    pub filter: OpProf,
    /// `joins[i]` profiles the join that brings in `scans[i + 1]`.
    pub joins: Vec<OpProf>,
    /// One per scan, in FROM order.
    pub scans: Vec<OpProf>,
}

impl CoreProf {
    fn for_core(core: &CorePlan) -> CoreProf {
        CoreProf {
            joins: (1..core.scans.len()).map(|_| OpProf::default()).collect(),
            scans: (0..core.scans.len()).map(|_| OpProf::default()).collect(),
            ..CoreProf::default()
        }
    }
}

/// Profiling mirror of a full [`SelectPlan`], allocated per `EXPLAIN
/// ANALYZE` execution (never stored on the shared/cached plan).
#[derive(Debug, Default)]
pub(crate) struct PlanProf {
    /// One `Vec<CoreProf>` per CTE, in definition order.
    pub ctes: Vec<Vec<CoreProf>>,
    /// One per body core.
    pub cores: Vec<CoreProf>,
}

impl PlanProf {
    /// Build the profiling mirror for `plan`.
    pub fn for_plan(plan: &SelectPlan) -> PlanProf {
        PlanProf {
            ctes: plan
                .ctes
                .iter()
                .map(|c| c.body.iter().map(CoreProf::for_core).collect())
                .collect(),
            cores: plan.body.iter().map(CoreProf::for_core).collect(),
        }
    }
}

/// Rows pulled per [`Cursor::next_batch`] call by the vectorized
/// execution path.
pub(crate) const EXEC_BATCH: usize = 1024;

/// A batch of rows plus an optional selection vector. With `sel` set,
/// only the indexed rows are logically present: Filter emits selection
/// vectors instead of compacting survivors, and batch consumers iterate
/// the selected indices. `sel` indices are strictly increasing.
pub(crate) struct RowBatch {
    pub rows: Vec<Row>,
    pub sel: Option<Vec<u32>>,
}

impl RowBatch {
    fn len(&self) -> usize {
        self.sel.as_ref().map_or(self.rows.len(), |s| s.len())
    }
}

/// A Volcano operator: yields one row per `next()` call, `None` at end.
///
/// `next_batch` is the vectorized pull: up to `max.min(EXEC_BATCH)`
/// rows per call (`max` carries the remaining LIMIT budget so limit
/// pushdown keeps stopping scans early). The default accumulates
/// through `next()`, so stateful operators (joins, DISTINCT,
/// aggregation) fall back to per-row pull automatically; Scan, Filter,
/// and Project override it with native batch paths. A given cursor
/// instance is driven through exactly one of the two entry points,
/// never both.
trait Cursor {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>>;

    fn next_batch(&mut self, ex: &ExecCtx<'_, '_>, max: usize) -> Result<Option<RowBatch>> {
        let cap = max.min(EXEC_BATCH);
        let mut rows = Vec::new();
        while rows.len() < cap {
            match self.next(ex)? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch { rows, sel: None }))
        }
    }
}

type BoxCursor<'a> = Box<dyn Cursor + 'a>;

/// Timing/row-count wrapper installed around non-scan operators during
/// `EXPLAIN ANALYZE`. Scans instrument themselves (they know their
/// probe counts); everything else is uniform.
struct ProfCur<'a> {
    inner: BoxCursor<'a>,
    prof: &'a OpProf,
    started: bool,
}

impl Cursor for ProfCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            OpProf::add(&self.prof.loops, 1);
        }
        let t0 = Instant::now();
        let r = self.inner.next(ex);
        OpProf::add(&self.prof.ns, t0.elapsed().as_nanos() as u64);
        if matches!(r, Ok(Some(_))) {
            OpProf::add(&self.prof.rows, 1);
        }
        r
    }
}

/// Degenerate FROM-less source: exactly one empty row.
struct OneRow {
    done: bool,
}

impl Cursor for OneRow {
    fn next(&mut self, _ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Vec::new()))
        }
    }
}

enum ScanSrc<'a> {
    Table(&'a Table),
    Mat(Rc<Vec<Row>>),
}

enum ScanState<'a> {
    Start,
    SeqTable {
        pos: usize,
    },
    SeqMat {
        i: usize,
    },
    Bucket {
        rows: Vec<Row>,
        i: usize,
    },
    /// Range seek in slot order: materialized positions, rows fetched
    /// (and filtered) lazily. `backed` fetches through the page store.
    PosList {
        ps: Vec<usize>,
        i: usize,
        backed: bool,
    },
    /// Ordered-index walk in key order: positions stream lazily out of
    /// the B-tree range, so `LIMIT k` touches only ~k entries.
    PosIter {
        iter: Box<dyn Iterator<Item = usize> + 'a>,
        backed: bool,
    },
    Done,
}

/// Leaf scan: sequential over a table's slot array, an index probe, or a
/// materialized CTE. Pushed-down predicates filter before rows clone.
pub(crate) struct ScanCur<'a> {
    plan: &'a ScanPlan,
    src: ScanSrc<'a>,
    layout: Vec<(String, Vec<String>, usize)>,
    state: ScanState<'a>,
    /// `EXPLAIN ANALYZE` actuals; `None` on the plain execution path.
    prof: Option<&'a OpProf>,
}

impl<'a> ScanCur<'a> {
    fn new(plan: &'a ScanPlan, src: ScanSrc<'a>, prof: Option<&'a OpProf>) -> Self {
        let layout = vec![(plan.binding.clone(), plan.columns.clone(), 0)];
        ScanCur {
            plan,
            src,
            layout,
            state: ScanState::Start,
            prof,
        }
    }

    fn prof_loop(&self, by: u64) {
        if let Some(p) = self.prof {
            OpProf::add(&p.loops, by);
        }
    }

    /// Do all pushed-down conjuncts accept this row?
    fn passes(&self, row: &[Value], ex: &ExecCtx<'_, '_>) -> Result<bool> {
        if self.plan.pushed.is_empty() {
            return Ok(true);
        }
        let env = SliceEnv {
            layout: &self.layout,
            values: row,
        };
        for p in &self.plan.pushed {
            if ex.db.eval_bool(p, &env, ex.ctx, ex.ctes)? != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn start(&self, ex: &ExecCtx<'_, '_>) -> Result<ScanState<'a>> {
        if let (Some(s), ScanSrc::Table(t)) = (ex.ctx.snapshot, &self.src) {
            if t.changed_since(s) {
                // The live heap (and its indexes) moved past this
                // statement's snapshot: reconstruct the epoch's row image
                // and scan that instead.
                return self.start_snapshot(ex, t, s);
            }
        }
        // Range seeks serve both the live heap and the read-through
        // backend from one lazy path (positions come from the in-memory
        // ordered index either way).
        if let (
            Access::Range {
                ci,
                lower,
                upper,
                ordered,
                desc,
            },
            ScanSrc::Table(t),
        ) = (&self.plan.access, &self.src)
        {
            return self.start_range(ex, t, *ci, lower, upper, *ordered, *desc);
        }
        if let ScanSrc::Table(t) = &self.src {
            if t.backed_read_through() {
                // Paged backend in read-through mode: rows materialize
                // from the page store's buffer pool. The in-memory hash
                // indexes stay the position authority; only the row
                // bytes come from the pages. (A stale MVCC snapshot took
                // the reconstruction path above; reaching here means the
                // store matches what this statement should see.)
                return self.start_backed(ex, t);
            }
        }
        match (&self.plan.access, &self.src) {
            (_, ScanSrc::Mat(_)) => {
                self.prof_loop(1);
                Ok(ScanState::SeqMat { i: 0 })
            }
            (Access::Seq, ScanSrc::Table(_)) => {
                StatsCells::bump(&ex.db.stats.seq_scans, 1);
                self.prof_loop(1);
                Ok(ScanState::SeqTable { pos: 0 })
            }
            (Access::IndexEq { ci, key }, ScanSrc::Table(t)) => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                self.prof_loop(1);
                let empty = SliceEnv {
                    layout: &[],
                    values: &[],
                };
                let keyv = ex.db.eval_expr(key, &empty, ex.ctx, ex.ctes)?;
                let mut rows = Vec::new();
                if !keyv.is_null() {
                    if let Some(ps) = t.index_lookup(*ci, &keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = t.row(p).expect("index points at live row");
                            if self.passes(row, ex)? {
                                rows.push(row.clone());
                            }
                        }
                    }
                }
                Ok(ScanState::Bucket { rows, i: 0 })
            }
            (Access::IndexIn { ci, query }, ScanSrc::Table(t)) => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                let sub = ex.db.cached_subquery(query, ex.ctx)?;
                let mut rows = Vec::new();
                for keyv in &sub.set {
                    self.prof_loop(1);
                    if let Some(ps) = t.index_lookup(*ci, keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = t.row(p).expect("index points at live row");
                            if self.passes(row, ex)? {
                                rows.push(row.clone());
                            }
                        }
                    }
                }
                Ok(ScanState::Bucket { rows, i: 0 })
            }
            (Access::IndexInList { ci, list }, ScanSrc::Table(t)) => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                let probe = ex
                    .db
                    .cached_in_list(list, ex.ctx, ex.ctes)?
                    .expect("planner only picks row-independent lists");
                let mut rows = Vec::new();
                for keyv in &probe.set {
                    self.prof_loop(1);
                    if let Some(ps) = t.index_lookup(*ci, keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = t.row(p).expect("index points at live row");
                            if self.passes(row, ex)? {
                                rows.push(row.clone());
                            }
                        }
                    }
                }
                Ok(ScanState::Bucket { rows, i: 0 })
            }
            (Access::Range { .. }, ScanSrc::Table(_)) => {
                unreachable!("range scans are intercepted by start_range")
            }
        }
    }

    /// Range / ordered-index seek. Bounds are evaluated once (they are
    /// row-independent by construction); the seek narrows candidates
    /// under `Value::sort_cmp`'s total order and `passes()` re-checks the
    /// originating conjuncts per row, so SQL comparison semantics are
    /// preserved. Works for both the live heap and the read-through
    /// backend — positions always come from the in-memory ordered index.
    #[allow(clippy::too_many_arguments)]
    fn start_range(
        &self,
        ex: &ExecCtx<'_, '_>,
        t: &'a Table,
        ci: usize,
        lower: &Option<(Expr, bool)>,
        upper: &Option<(Expr, bool)>,
        ordered: bool,
        desc: bool,
    ) -> Result<ScanState<'a>> {
        let empty = SliceEnv {
            layout: &[],
            values: &[],
        };
        let eval_bound = |b: &Option<(Expr, bool)>| -> Result<Option<(Value, bool)>> {
            Ok(match b {
                Some((e, incl)) => Some((ex.db.eval_expr(e, &empty, ex.ctx, ex.ctes)?, *incl)),
                None => None,
            })
        };
        let lo = eval_bound(lower)?;
        let hi = eval_bound(upper)?;
        StatsCells::bump(&ex.db.stats.index_scans, 1);
        if lo.is_some() || hi.is_some() {
            StatsCells::bump(&ex.db.stats.range_seeks, 1);
        }
        self.prof_loop(1);
        let backed = t.backed_read_through();
        let lo_ref = lo.as_ref().map(|(v, i)| (v, *i));
        let hi_ref = hi.as_ref().map(|(v, i)| (v, *i));
        if ordered {
            StatsCells::bump(&ex.db.stats.ordered_index_scans, 1);
            match t.ordered_seek(ci, desc, lo_ref, hi_ref) {
                Some(iter) => Ok(ScanState::PosIter { iter, backed }),
                None => Err(DbError::Execution(format!(
                    "ordered index on column {ci} of `{}` vanished between plan and execution",
                    t.schema.name
                ))),
            }
        } else {
            match t.range_positions(ci, lo_ref, hi_ref) {
                Some(ps) => Ok(ScanState::PosList { ps, i: 0, backed }),
                None => {
                    // Index dropped under a cached plan: degrade to a
                    // sequential scan — the bounds are still in `pushed`.
                    StatsCells::bump(&ex.db.stats.seq_scans, 1);
                    if backed {
                        self.start_backed_seq(ex, t)
                    } else {
                        Ok(ScanState::SeqTable { pos: 0 })
                    }
                }
            }
        }
    }

    /// Sequential read-through scan body, shared by `start_backed` and
    /// the range fallback.
    fn start_backed_seq(&self, ex: &ExecCtx<'_, '_>, t: &Table) -> Result<ScanState<'a>> {
        let mut rows = Vec::new();
        for (_, row) in t.backed_scan()? {
            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
            if self.passes(&row, ex)? {
                rows.push(row);
            }
        }
        Ok(ScanState::Bucket { rows, i: 0 })
    }

    /// Read-through scan: the same four access paths as the live-heap
    /// arm, but every row is fetched from the storage backend (through
    /// its buffer pool) instead of the slot vector. Index probes still
    /// resolve positions in the in-memory hash indexes and then fault
    /// the individual rows in; sequential scans pull the whole table in
    /// slot order.
    fn start_backed(&self, ex: &ExecCtx<'_, '_>, t: &Table) -> Result<ScanState<'a>> {
        let fetch = |p: usize| -> Result<Row> {
            t.backed_row(p)?.ok_or_else(|| {
                DbError::Storage(format!(
                    "page store lost row at slot {p} of `{}`",
                    t.schema.name
                ))
            })
        };
        let mut rows = Vec::new();
        match &self.plan.access {
            Access::Seq => {
                StatsCells::bump(&ex.db.stats.seq_scans, 1);
                self.prof_loop(1);
                return self.start_backed_seq(ex, t);
            }
            Access::IndexEq { ci, key } => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                self.prof_loop(1);
                let empty = SliceEnv {
                    layout: &[],
                    values: &[],
                };
                let keyv = ex.db.eval_expr(key, &empty, ex.ctx, ex.ctes)?;
                if !keyv.is_null() {
                    if let Some(ps) = t.index_lookup(*ci, &keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = fetch(p)?;
                            if self.passes(&row, ex)? {
                                rows.push(row);
                            }
                        }
                    }
                }
            }
            Access::IndexIn { ci, query } => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                let sub = ex.db.cached_subquery(query, ex.ctx)?;
                for keyv in &sub.set {
                    self.prof_loop(1);
                    if let Some(ps) = t.index_lookup(*ci, keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = fetch(p)?;
                            if self.passes(&row, ex)? {
                                rows.push(row);
                            }
                        }
                    }
                }
            }
            Access::IndexInList { ci, list } => {
                StatsCells::bump(&ex.db.stats.index_scans, 1);
                let probe = ex
                    .db
                    .cached_in_list(list, ex.ctx, ex.ctes)?
                    .expect("planner only picks row-independent lists");
                for keyv in &probe.set {
                    self.prof_loop(1);
                    if let Some(ps) = t.index_lookup(*ci, keyv) {
                        StatsCells::bump(&ex.db.stats.index_lookups, 1);
                        for &p in ps {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            let row = fetch(p)?;
                            if self.passes(&row, ex)? {
                                rows.push(row);
                            }
                        }
                    }
                }
            }
            Access::Range { .. } => {
                unreachable!("range scans are intercepted by start_range")
            }
        }
        Ok(ScanState::Bucket { rows, i: 0 })
    }

    /// Stale-snapshot fallback: materialize the table as it stood at
    /// epoch `s` and scan that image. The live indexes describe the
    /// *current* heap, so index access paths degrade to a filtered pass
    /// over the reconstructed rows — the planner removed the probe
    /// conjunct from `pushed` when it chose index access, so the probe is
    /// re-applied here by hand. Correctness over speed: a table only
    /// takes this path while a writer has committed past the reader's
    /// snapshot, and version GC retires the detour as snapshots close.
    fn start_snapshot(&self, ex: &ExecCtx<'_, '_>, t: &Table, s: u64) -> Result<ScanState<'a>> {
        StatsCells::bump(&ex.db.stats.seq_scans, 1);
        self.prof_loop(1);
        let visible = t.rows_visible_at(s);
        let mut rows = Vec::new();
        match &self.plan.access {
            Access::Seq => {
                for row in visible {
                    StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                    if self.passes(&row, ex)? {
                        rows.push(row);
                    }
                }
            }
            Access::IndexEq { ci, key } => {
                let empty = SliceEnv {
                    layout: &[],
                    values: &[],
                };
                let keyv = ex.db.eval_expr(key, &empty, ex.ctx, ex.ctes)?;
                if !keyv.is_null() {
                    for row in visible {
                        StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                        if row[*ci] == keyv && self.passes(&row, ex)? {
                            rows.push(row);
                        }
                    }
                }
            }
            Access::IndexIn { ci, query } => {
                let sub = ex.db.cached_subquery(query, ex.ctx)?;
                for row in visible {
                    StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                    if sub.set.contains(&row[*ci]) && self.passes(&row, ex)? {
                        rows.push(row);
                    }
                }
            }
            Access::IndexInList { ci, list } => {
                let probe = ex
                    .db
                    .cached_in_list(list, ex.ctx, ex.ctes)?
                    .expect("planner only picks row-independent lists");
                for row in visible {
                    StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                    if probe.set.contains(&row[*ci]) && self.passes(&row, ex)? {
                        rows.push(row);
                    }
                }
            }
            Access::Range {
                ci,
                lower,
                upper,
                ordered,
                desc,
            } => {
                // The live ordered index describes the current heap, not
                // the snapshot image: filter the reconstructed rows by the
                // bounds, then sort (stably, so equal keys keep position
                // order, matching the ordered walk) when key order was
                // promised.
                use std::cmp::Ordering;
                let empty = SliceEnv {
                    layout: &[],
                    values: &[],
                };
                let eval_bound = |b: &Option<(Expr, bool)>| -> Result<Option<(Value, bool)>> {
                    Ok(match b {
                        Some((e, incl)) => {
                            Some((ex.db.eval_expr(e, &empty, ex.ctx, ex.ctes)?, *incl))
                        }
                        None => None,
                    })
                };
                let lo = eval_bound(lower)?;
                let hi = eval_bound(upper)?;
                for row in visible {
                    StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                    let k = &row[*ci];
                    let lo_ok = lo.as_ref().is_none_or(|(v, incl)| match k.sort_cmp(v) {
                        Ordering::Greater => true,
                        Ordering::Equal => *incl,
                        Ordering::Less => false,
                    });
                    let hi_ok = hi.as_ref().is_none_or(|(v, incl)| match k.sort_cmp(v) {
                        Ordering::Less => true,
                        Ordering::Equal => *incl,
                        Ordering::Greater => false,
                    });
                    if lo_ok && hi_ok && self.passes(&row, ex)? {
                        rows.push(row);
                    }
                }
                if *ordered {
                    if *desc {
                        rows.sort_by(|a, b| b[*ci].sort_cmp(&a[*ci]));
                    } else {
                        rows.sort_by(|a, b| a[*ci].sort_cmp(&b[*ci]));
                    }
                }
            }
        }
        Ok(ScanState::Bucket { rows, i: 0 })
    }
}

impl ScanCur<'_> {
    fn next_inner(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        loop {
            match std::mem::replace(&mut self.state, ScanState::Done) {
                ScanState::Start => {
                    self.state = self.start(ex)?;
                }
                ScanState::SeqTable { mut pos } => {
                    let ScanSrc::Table(t) = &self.src else {
                        unreachable!("SeqTable state implies a table source")
                    };
                    let slots = t.slots_raw();
                    while pos < slots.len() {
                        if let Some(row) = &slots[pos] {
                            StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                            if self.passes(row, ex)? {
                                let out = row.clone();
                                self.state = ScanState::SeqTable { pos: pos + 1 };
                                return Ok(Some(out));
                            }
                        }
                        pos += 1;
                    }
                    return Ok(None);
                }
                ScanState::SeqMat { mut i } => {
                    let ScanSrc::Mat(rows) = &self.src else {
                        unreachable!("SeqMat state implies a materialized source")
                    };
                    while i < rows.len() {
                        StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                        if self.passes(&rows[i], ex)? {
                            let out = rows[i].clone();
                            self.state = ScanState::SeqMat { i: i + 1 };
                            return Ok(Some(out));
                        }
                        i += 1;
                    }
                    return Ok(None);
                }
                ScanState::Bucket { rows, i } => {
                    if i < rows.len() {
                        let out = rows[i].clone();
                        self.state = ScanState::Bucket { rows, i: i + 1 };
                        return Ok(Some(out));
                    }
                    return Ok(None);
                }
                ScanState::PosList { ps, mut i, backed } => {
                    let ScanSrc::Table(t) = &self.src else {
                        unreachable!("PosList state implies a table source")
                    };
                    while i < ps.len() {
                        let p = ps[i];
                        i += 1;
                        StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                        let row = if backed {
                            Some(t.backed_row(p)?.ok_or_else(|| {
                                DbError::Storage(format!(
                                    "page store lost row at slot {p} of `{}`",
                                    t.schema.name
                                ))
                            })?)
                        } else {
                            None
                        };
                        let row_ref: &Row = match &row {
                            Some(r) => r,
                            None => t.row(p).expect("ordered index points at live row"),
                        };
                        if self.passes(row_ref, ex)? {
                            let out = row_ref.clone();
                            self.state = ScanState::PosList { ps, i, backed };
                            return Ok(Some(out));
                        }
                    }
                    return Ok(None);
                }
                ScanState::PosIter { mut iter, backed } => {
                    let ScanSrc::Table(t) = &self.src else {
                        unreachable!("PosIter state implies a table source")
                    };
                    for p in iter.by_ref() {
                        StatsCells::bump(&ex.db.stats.rows_scanned, 1);
                        let row = if backed {
                            Some(t.backed_row(p)?.ok_or_else(|| {
                                DbError::Storage(format!(
                                    "page store lost row at slot {p} of `{}`",
                                    t.schema.name
                                ))
                            })?)
                        } else {
                            None
                        };
                        let row_ref: &Row = match &row {
                            Some(r) => r,
                            None => t.row(p).expect("ordered index points at live row"),
                        };
                        if self.passes(row_ref, ex)? {
                            let out = row_ref.clone();
                            self.state = ScanState::PosIter { iter, backed };
                            return Ok(Some(out));
                        }
                    }
                    return Ok(None);
                }
                ScanState::Done => return Ok(None),
            }
        }
    }
}

impl Cursor for ScanCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        match self.prof {
            None => self.next_inner(ex),
            Some(p) => {
                let t0 = Instant::now();
                let r = self.next_inner(ex);
                OpProf::add(&p.ns, t0.elapsed().as_nanos() as u64);
                if matches!(r, Ok(Some(_))) {
                    OpProf::add(&p.rows, 1);
                }
                r
            }
        }
    }

    /// Native scan batch: fill straight from the scan state machine,
    /// skipping the per-row virtual `next()` round trip.
    fn next_batch(&mut self, ex: &ExecCtx<'_, '_>, max: usize) -> Result<Option<RowBatch>> {
        let cap = max.min(EXEC_BATCH);
        let mut rows = Vec::new();
        while rows.len() < cap {
            match self.next_inner(ex)? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if let Some(p) = self.prof {
            OpProf::add(&p.rows, rows.len() as u64);
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch { rows, sel: None }))
        }
    }
}

/// Materialized right side of a hash join: the kept rows plus a map
/// from join-key value to indices into them.
type BuildSide = (Vec<Row>, HashMap<Value, Vec<usize>>);

/// Hash join: builds a hash table over the right scan on the first left
/// row (an empty left side never pays for the build), then probes with
/// the left key evaluated against the prefix layout.
struct HashJoinCur<'a> {
    left: BoxCursor<'a>,
    right: Option<ScanCur<'a>>,
    right_ci: usize,
    left_key: &'a Expr,
    /// Pre-resolved offset of `left_key` in the prefix layout when the
    /// key is a plain column — probes index the left row directly
    /// instead of re-resolving the name per row.
    left_off: Option<usize>,
    /// Layout covering only the bindings to the LEFT of this join — the
    /// key must resolve exactly as it did at plan time, before the right
    /// binding (and later ones) were in scope.
    left_layout: &'a [(String, Vec<String>, usize)],
    build: Option<BuildSide>,
    pending: Option<(Row, Vec<usize>, usize)>,
}

impl Cursor for HashJoinCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        loop {
            if let Some((lrow, hits, i)) = &mut self.pending {
                if *i < hits.len() {
                    let build = self.build.as_ref().expect("pending implies built");
                    let mut out = lrow.clone();
                    out.extend(build.0[hits[*i]].iter().cloned());
                    *i += 1;
                    return Ok(Some(out));
                }
                self.pending = None;
            }
            let Some(lrow) = self.left.next(ex)? else {
                return Ok(None);
            };
            if self.build.is_none() {
                let mut scan = self.right.take().expect("first build takes the scan");
                let mut rows: Vec<Row> = Vec::new();
                let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
                while let Some(rrow) = scan.next(ex)? {
                    let key = &rrow[self.right_ci];
                    if !key.is_null() {
                        map.entry(key.clone()).or_default().push(rows.len());
                    }
                    rows.push(rrow);
                }
                StatsCells::bump(&ex.db.stats.hash_join_builds, 1);
                self.build = Some((rows, map));
            }
            let build = self.build.as_ref().expect("built above");
            let hits = match self.left_off {
                Some(off) => {
                    if lrow[off].is_null() {
                        continue;
                    }
                    build.1.get(&lrow[off])
                }
                None => {
                    let env = SliceEnv {
                        layout: self.left_layout,
                        values: &lrow,
                    };
                    let keyv = ex.db.eval_expr(self.left_key, &env, ex.ctx, ex.ctes)?;
                    if keyv.is_null() {
                        continue;
                    }
                    build.1.get(&keyv)
                }
            };
            if let Some(hits) = hits {
                let hits = hits.clone();
                self.pending = Some((lrow, hits, 0));
            }
        }
    }
}

/// Cartesian nested-loop join; the right side is materialized once, on
/// the first left row.
struct LoopJoinCur<'a> {
    left: BoxCursor<'a>,
    right: Option<ScanCur<'a>>,
    right_rows: Option<Vec<Row>>,
    pending: Option<(Row, usize)>,
}

impl Cursor for LoopJoinCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        loop {
            if let Some((lrow, i)) = &mut self.pending {
                let rows = self.right_rows.as_ref().expect("pending implies rows");
                if *i < rows.len() {
                    let mut out = lrow.clone();
                    out.extend(rows[*i].iter().cloned());
                    *i += 1;
                    return Ok(Some(out));
                }
                self.pending = None;
            }
            let Some(lrow) = self.left.next(ex)? else {
                return Ok(None);
            };
            if self.right_rows.is_none() {
                let mut scan = self.right.take().expect("first loop takes the scan");
                let mut rows = Vec::new();
                while let Some(r) = scan.next(ex)? {
                    rows.push(r);
                }
                self.right_rows = Some(rows);
            }
            self.pending = Some((lrow, 0));
        }
    }
}

/// Residual predicate filter over the full joined layout.
struct FilterCur<'a> {
    input: BoxCursor<'a>,
    residual: &'a [Expr],
    layout: &'a [(String, Vec<String>, usize)],
}

impl Cursor for FilterCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        'rows: while let Some(row) = self.input.next(ex)? {
            let env = SliceEnv {
                layout: self.layout,
                values: &row,
            };
            for p in self.residual {
                if ex.db.eval_bool(p, &env, ex.ctx, ex.ctes)? != Some(true) {
                    continue 'rows;
                }
            }
            return Ok(Some(row));
        }
        Ok(None)
    }

    /// Vectorized filter: evaluates the residual over a whole input
    /// batch and emits a selection vector over it — survivors are never
    /// copied or compacted here.
    fn next_batch(&mut self, ex: &ExecCtx<'_, '_>, max: usize) -> Result<Option<RowBatch>> {
        while let Some(batch) = self.input.next_batch(ex, max)? {
            let mut sel: Vec<u32> = Vec::with_capacity(batch.len());
            let candidates: Box<dyn Iterator<Item = u32>> = match &batch.sel {
                Some(s) => Box::new(s.iter().copied()),
                None => Box::new(0..batch.rows.len() as u32),
            };
            'rows: for i in candidates {
                let env = SliceEnv {
                    layout: self.layout,
                    values: &batch.rows[i as usize],
                };
                for p in self.residual {
                    if ex.db.eval_bool(p, &env, ex.ctx, ex.ctes)? != Some(true) {
                        continue 'rows;
                    }
                }
                sel.push(i);
            }
            if !sel.is_empty() {
                return Ok(Some(RowBatch {
                    rows: batch.rows,
                    sel: Some(sel),
                }));
            }
            // Entire batch rejected: pull the next one.
        }
        Ok(None)
    }
}

/// Projection: wildcards copy ranges, expressions are evaluated.
struct ProjectCur<'a> {
    input: BoxCursor<'a>,
    steps: &'a [ProjStep],
    layout: &'a [(String, Vec<String>, usize)],
}

impl<'a> ProjectCur<'a> {
    fn project_one(&self, row: &[Value], ex: &ExecCtx<'_, '_>) -> Result<Row> {
        let env = SliceEnv {
            layout: self.layout,
            values: row,
        };
        let mut out = Vec::with_capacity(self.steps.len());
        for step in self.steps {
            match step {
                ProjStep::All => out.extend(row.iter().cloned()),
                ProjStep::Range { off, len } => {
                    out.extend(row[*off..off + len].iter().cloned());
                }
                ProjStep::Col(off) => out.push(row[*off].clone()),
                ProjStep::Expr(e) => out.push(ex.db.eval_expr(e, &env, ex.ctx, ex.ctes)?),
            }
        }
        Ok(out)
    }
}

impl Cursor for ProjectCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        let Some(row) = self.input.next(ex)? else {
            return Ok(None);
        };
        Ok(Some(self.project_one(&row, ex)?))
    }

    /// Vectorized projection: consumes the input's selection vector and
    /// emits a compact batch of projected rows.
    fn next_batch(&mut self, ex: &ExecCtx<'_, '_>, max: usize) -> Result<Option<RowBatch>> {
        let Some(batch) = self.input.next_batch(ex, max)? else {
            return Ok(None);
        };
        let mut rows = Vec::with_capacity(batch.len());
        match &batch.sel {
            None => {
                for row in &batch.rows {
                    rows.push(self.project_one(row, ex)?);
                }
            }
            Some(sel) => {
                for &i in sel {
                    rows.push(self.project_one(&batch.rows[i as usize], ex)?);
                }
            }
        }
        Ok(Some(RowBatch { rows, sel: None }))
    }
}

/// DISTINCT: first occurrence of each row wins; order preserved.
struct DistinctCur<'a> {
    input: BoxCursor<'a>,
    seen: HashSet<Row>,
}

impl Cursor for DistinctCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ex)? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Aggregation: drains the input entirely, then emits a single row of
/// aggregate expression results.
struct AggCur<'a> {
    input: BoxCursor<'a>,
    exprs: &'a [Expr],
    layout: &'a [(String, Vec<String>, usize)],
    done: bool,
}

impl Cursor for AggCur<'_> {
    fn next(&mut self, ex: &ExecCtx<'_, '_>) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut rows = Vec::new();
        while let Some(row) = self.input.next(ex)? {
            rows.push(row);
        }
        let mut out = Vec::with_capacity(self.exprs.len());
        for e in self.exprs {
            out.push(
                ex.db
                    .eval_aggregate_expr(e, self.layout, &rows, ex.ctx, ex.ctes)?,
            );
        }
        Ok(Some(out))
    }
}

impl Database {
    /// Open the leaf cursor for one scan plan.
    fn open_scan<'a>(
        &'a self,
        plan: &'a ScanPlan,
        ctes: &CteEnv,
        prof: Option<&'a OpProf>,
    ) -> Result<ScanCur<'a>> {
        let src = if plan.is_cte {
            let m = ctes
                .get(&plan.key)
                .ok_or_else(|| DbError::NoSuchTable(plan.name.clone()))?;
            ScanSrc::Mat(m.rows.clone())
        } else if plan.is_sys {
            // System views materialize from live engine state at cursor
            // open; downstream operators treat the rows like a CTE body.
            ScanSrc::Mat(Rc::new(self.sysview_rows(&plan.key)?))
        } else {
            let t = self
                .tables
                .get(&plan.key)
                .ok_or_else(|| DbError::NoSuchTable(plan.name.clone()))?;
            ScanSrc::Table(t)
        };
        Ok(ScanCur::new(plan, src, prof))
    }

    /// Assemble the cursor tree for one SELECT core. With `prof` set
    /// (`EXPLAIN ANALYZE`), every operator is wrapped or self-instruments
    /// so rows/loops/time land in the matching [`CoreProf`] slot.
    fn open_core<'a>(
        &'a self,
        core: &'a CorePlan,
        ctes: &CteEnv,
        prof: Option<&'a CoreProf>,
    ) -> Result<BoxCursor<'a>> {
        let wrap = |cur: BoxCursor<'a>, p: Option<&'a OpProf>| -> BoxCursor<'a> {
            match p {
                Some(prof) => Box::new(ProfCur {
                    inner: cur,
                    prof,
                    started: false,
                }),
                None => cur,
            }
        };
        let mut cur: BoxCursor<'a> = if core.scans.is_empty() {
            Box::new(OneRow { done: false })
        } else {
            Box::new(self.open_scan(&core.scans[0].0, ctes, prof.map(|p| &p.scans[0]))?)
        };
        for (i, (scan_plan, kind)) in core.scans.iter().enumerate().skip(1) {
            let right = self.open_scan(scan_plan, ctes, prof.map(|p| &p.scans[i]))?;
            cur = match kind {
                JoinKind::Hash { right_ci, left_key } => {
                    let left_layout = &core.layout[..i];
                    let left_off = match left_key {
                        Expr::Column { table, name } => {
                            layout_resolve(left_layout, table.as_deref(), name)
                                .ok()
                                .flatten()
                        }
                        _ => None,
                    };
                    Box::new(HashJoinCur {
                        left: cur,
                        right: Some(right),
                        right_ci: *right_ci,
                        left_key,
                        left_off,
                        left_layout,
                        build: None,
                        pending: None,
                    })
                }
                JoinKind::Loop => Box::new(LoopJoinCur {
                    left: cur,
                    right: Some(right),
                    right_rows: None,
                    pending: None,
                }),
            };
            cur = wrap(cur, prof.map(|p| &p.joins[i - 1]));
        }
        if !core.residual.is_empty() {
            cur = Box::new(FilterCur {
                input: cur,
                residual: &core.residual,
                layout: &core.layout,
            });
            cur = wrap(cur, prof.map(|p| &p.filter));
        }
        if let Some(agg_exprs) = &core.aggregate {
            cur = Box::new(AggCur {
                input: cur,
                exprs: agg_exprs,
                layout: &core.layout,
                done: false,
            });
            cur = wrap(cur, prof.map(|p| &p.output));
        } else {
            cur = Box::new(ProjectCur {
                input: cur,
                steps: &core.projections,
                layout: &core.layout,
            });
            cur = wrap(cur, prof.map(|p| &p.output));
            if core.distinct {
                cur = Box::new(DistinctCur {
                    input: cur,
                    seen: HashSet::new(),
                });
                cur = wrap(cur, prof.map(|p| &p.distinct));
            }
        }
        Ok(cur)
    }

    /// Run every core of a (possibly UNION ALL) body. With `pull_limit`
    /// the pipeline stops as soon as that many rows surfaced — the
    /// limit-pushdown path for `LIMIT` without `ORDER BY`.
    fn run_cores(
        &self,
        cores: &[CorePlan],
        pull_limit: Option<u64>,
        ctx: &EvalCtx<'_>,
        ctes: &CteEnv,
        prof: Option<&[CoreProf]>,
    ) -> Result<Vec<Row>> {
        if pull_limit == Some(0) {
            return Ok(Vec::new());
        }
        let ex = ExecCtx {
            db: self,
            ctx,
            ctes,
        };
        let mut out = Vec::new();
        // `EXPLAIN ANALYZE` instruments per-row, so profiled runs stay
        // on the row-at-a-time pull; everything else pulls batches.
        let batched = prof.is_none();
        'cores: for (ci, core) in cores.iter().enumerate() {
            let mut cur = self.open_core(core, ctes, prof.map(|ps| &ps[ci]))?;
            if batched {
                loop {
                    let budget = match pull_limit {
                        Some(n) => (n as usize).saturating_sub(out.len()).max(1),
                        None => EXEC_BATCH,
                    };
                    let Some(mut batch) = cur.next_batch(&ex, budget)? else {
                        break;
                    };
                    StatsCells::bump(&self.stats.exec_batches, 1);
                    match batch.sel.take() {
                        None => out.append(&mut batch.rows),
                        Some(sel) => {
                            for &i in &sel {
                                out.push(std::mem::take(&mut batch.rows[i as usize]));
                            }
                        }
                    }
                    if let Some(n) = pull_limit {
                        if out.len() as u64 >= n {
                            out.truncate(n as usize);
                            break 'cores;
                        }
                    }
                }
            } else {
                while let Some(row) = cur.next(&ex)? {
                    out.push(row);
                    if let Some(n) = pull_limit {
                        if out.len() as u64 >= n {
                            break 'cores;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Execute a compiled SELECT plan: materialize CTEs, run the body,
    /// then apply ORDER BY / LIMIT.
    pub(crate) fn exec_select_plan(
        &self,
        plan: &SelectPlan,
        ctx: &EvalCtx<'_>,
    ) -> Result<ResultSet> {
        self.exec_select_plan_prof(plan, ctx, None)
    }

    /// [`exec_select_plan`] with an optional per-operator profile sink.
    /// The profile is per-execution state owned by the caller — never
    /// stored on the (possibly cached and shared) plan itself.
    pub(crate) fn exec_select_plan_prof(
        &self,
        plan: &SelectPlan,
        ctx: &EvalCtx<'_>,
        prof: Option<&PlanProf>,
    ) -> Result<ResultSet> {
        let mut ctes: CteEnv = HashMap::new();
        for (i, cte) in plan.ctes.iter().enumerate() {
            let rows = self.run_cores(&cte.body, None, ctx, &ctes, prof.map(|p| &p.ctes[i][..]))?;
            ctes.insert(
                cte.key.clone(),
                Materialized {
                    rows: Rc::new(rows),
                },
            );
        }
        let body_prof = prof.map(|p| &p.cores[..]);
        if plan.keys.is_empty() {
            if plan.elided_sort {
                StatsCells::bump(&self.stats.sorts_elided, 1);
            }
            let rows = self.run_cores(&plan.body, plan.limit, ctx, &ctes, body_prof)?;
            return Ok(ResultSet {
                columns: plan.columns.clone(),
                rows,
            });
        }
        let mut rows = self.run_cores(&plan.body, None, ctx, &ctes, body_prof)?;
        if !plan.hidden_on_output.is_empty() {
            let out_layout: Vec<(String, Vec<String>, usize)> =
                vec![(String::new(), plan.columns.clone(), 0)];
            for row in &mut rows {
                let extras = {
                    let env = SliceEnv {
                        layout: &out_layout,
                        values: row,
                    };
                    let mut extras = Vec::with_capacity(plan.hidden_on_output.len());
                    for e in &plan.hidden_on_output {
                        extras.push(self.eval_expr(e, &env, ctx, &ctes)?);
                    }
                    extras
                };
                row.extend(extras);
            }
        }
        let key_cmp = |a: &Row, b: &Row| {
            for &(i, desc) in &plan.keys {
                let ord = a[i].sort_cmp(&b[i]);
                if ord != std::cmp::Ordering::Equal {
                    return if desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        };
        match plan.limit {
            // Top-k: selecting the k smallest under a total order (sort
            // keys, then input position — the stable-sort tiebreak made
            // explicit) is O(n + k log k) instead of O(n log n) and
            // yields exactly the stable-sort prefix.
            Some(k) if (k as usize) < rows.len() => {
                let k = k as usize;
                if k == 0 {
                    rows.clear();
                } else {
                    let mut tagged: Vec<(usize, Row)> = rows.drain(..).enumerate().collect();
                    let cmp = |a: &(usize, Row), b: &(usize, Row)| {
                        key_cmp(&a.1, &b.1).then(a.0.cmp(&b.0))
                    };
                    tagged.select_nth_unstable_by(k - 1, cmp);
                    tagged.truncate(k);
                    tagged.sort_unstable_by(cmp);
                    rows.extend(tagged.into_iter().map(|(_, r)| r));
                }
            }
            _ => rows.sort_by(key_cmp),
        }
        if rows.first().is_some_and(|r| r.len() > plan.visible) {
            for row in &mut rows {
                row.truncate(plan.visible);
            }
        }
        if let Some(n) = plan.limit {
            rows.truncate(n as usize);
        }
        Ok(ResultSet {
            columns: plan.columns.clone(),
            rows,
        })
    }

    /// Plan and execute an ad-hoc SELECT (subqueries, trigger bodies,
    /// `INSERT ... SELECT`, script statements). The plan is pinned for
    /// the rest of the statement so subquery-cache keys — addresses of
    /// expressions inside it — stay valid.
    pub(crate) fn eval_select(&self, q: &SelectStmt, ctx: &EvalCtx<'_>) -> Result<ResultSet> {
        let plan = std::sync::Arc::new(self.build_select_plan(q, ctx)?);
        ctx.keepalive.borrow_mut().push(plan.clone());
        self.exec_select_plan(&plan, ctx)
    }

    /// Whether an ORDER BY key expression can be evaluated against an
    /// already-materialized result set: every column it references is an
    /// unqualified name of an output column. Qualified references and
    /// aggregates need the source rows.
    pub(crate) fn computable_on_output(e: &Expr, columns: &[String]) -> bool {
        match e {
            Expr::Literal(_) | Expr::Param(_) => true,
            Expr::Column { table: None, name } => {
                columns.iter().any(|c| c.eq_ignore_ascii_case(name))
            }
            Expr::Column { table: Some(_), .. } => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
                Self::computable_on_output(expr, columns)
            }
            Expr::Binary { left, right, .. } => {
                Self::computable_on_output(left, columns)
                    && Self::computable_on_output(right, columns)
            }
            Expr::InList { expr, list, .. } => {
                Self::computable_on_output(expr, columns)
                    && list.iter().all(|l| Self::computable_on_output(l, columns))
            }
            Expr::InSubquery { expr, .. } => Self::computable_on_output(expr, columns),
            Expr::Like { expr, .. } => Self::computable_on_output(expr, columns),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Aggregate { .. } => false,
        }
    }

    /// Whether an expression can be evaluated without a row environment
    /// (literals, OLD/NEW references, uncorrelated subqueries).
    pub(crate) fn row_independent(e: &Expr) -> bool {
        match e {
            Expr::Literal(_) | Expr::Param(_) => true,
            Expr::Column { table: Some(t), .. } => {
                t.eq_ignore_ascii_case("OLD") || t.eq_ignore_ascii_case("NEW")
            }
            Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => Self::row_independent(expr),
            Expr::Binary { left, right, .. } => {
                Self::row_independent(left) && Self::row_independent(right)
            }
            Expr::IsNull { expr, .. } => Self::row_independent(expr),
            Expr::InList { expr, list, .. } => {
                Self::row_independent(expr) && list.iter().all(Self::row_independent)
            }
            Expr::InSubquery { expr, .. } => Self::row_independent(expr),
            Expr::Like { expr, .. } => Self::row_independent(expr),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Aggregate { .. } => false,
        }
    }

    /// Verify that every column reference in `e` resolves against `env`
    /// (or the OLD/NEW pseudo-row). Subquery bodies are skipped — they are
    /// validated in their own scope when evaluated.
    pub(crate) fn check_columns(&self, e: &Expr, env: &dyn Scope, ctx: &EvalCtx<'_>) -> Result<()> {
        match e {
            Expr::Literal(_) | Expr::Param(_) => Ok(()),
            Expr::Column { table, name } => {
                if env.resolve(table.as_deref(), name)?.is_some()
                    || self.pseudo_lookup(ctx, table.as_deref(), name).is_some()
                {
                    Ok(())
                } else {
                    Err(DbError::NoSuchColumn(match table {
                        Some(t) => format!("{t}.{name}"),
                        None => name.clone(),
                    }))
                }
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
                self.check_columns(expr, env, ctx)
            }
            Expr::Binary { left, right, .. } => {
                self.check_columns(left, env, ctx)?;
                self.check_columns(right, env, ctx)
            }
            Expr::InList { expr, list, .. } => {
                self.check_columns(expr, env, ctx)?;
                list.iter()
                    .try_for_each(|l| self.check_columns(l, env, ctx))
            }
            Expr::InSubquery { expr, .. } => self.check_columns(expr, env, ctx),
            Expr::Like { expr, .. } => self.check_columns(expr, env, ctx),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => Ok(()),
            Expr::Aggregate { arg, .. } => match arg {
                Some(a) => self.check_columns(a, env, ctx),
                None => Ok(()),
            },
        }
    }

    /// Can `e` be evaluated given only the bindings in `env` (plus OLD/NEW
    /// and subqueries)? Used to pick hash-join keys.
    pub(crate) fn expr_resolvable(&self, e: &Expr, env: &dyn Scope, ctx: &EvalCtx<'_>) -> bool {
        match e {
            Expr::Literal(_) | Expr::Param(_) => true,
            Expr::Column { table, name } => match env.resolve(table.as_deref(), name) {
                Ok(Some(_)) => true,
                _ => self.pseudo_lookup(ctx, table.as_deref(), name).is_some(),
            },
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
                self.expr_resolvable(expr, env, ctx)
            }
            Expr::Binary { left, right, .. } => {
                self.expr_resolvable(left, env, ctx) && self.expr_resolvable(right, env, ctx)
            }
            Expr::InList { expr, list, .. } => {
                self.expr_resolvable(expr, env, ctx)
                    && list.iter().all(|l| self.expr_resolvable(l, env, ctx))
            }
            Expr::InSubquery { expr, .. } => self.expr_resolvable(expr, env, ctx),
            Expr::Like { expr, .. } => self.expr_resolvable(expr, env, ctx),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Aggregate { .. } => false,
        }
    }

    pub(crate) fn pseudo_lookup(
        &self,
        ctx: &EvalCtx<'_>,
        table: Option<&str>,
        name: &str,
    ) -> Option<Value> {
        let (pname, bindings) = ctx.pseudo_row?;
        match table {
            Some(t) if !t.eq_ignore_ascii_case(pname) => None,
            Some(_) => bindings
                .iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone()),
            // Unqualified names do not silently fall through to OLD/NEW.
            None => None,
        }
    }

    // ------------------------------------------------------------------
    // expression evaluation
    // ------------------------------------------------------------------

    // `ctes` is threaded through for future correlated-subquery support;
    // today subqueries open their own CTE scope.
    #[allow(clippy::only_used_in_recursion)]
    pub(crate) fn eval_expr(
        &self,
        e: &Expr,
        env: &dyn Scope,
        ctx: &EvalCtx<'_>,
        ctes: &CteEnv,
    ) -> Result<Value> {
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => ctx
                .params
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Execution(format!("unbound parameter ${}", i + 1))),
            Expr::Column { table, name } => {
                if let Some(off) = env.resolve(table.as_deref(), name)? {
                    return Ok(env.value(off).clone());
                }
                if let Some(v) = self.pseudo_lookup(ctx, table.as_deref(), name) {
                    return Ok(v);
                }
                Err(DbError::NoSuchColumn(match table {
                    Some(t) => format!("{t}.{name}"),
                    None => name.clone(),
                }))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env, ctx, ctes)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        other => Err(DbError::Type(format!("cannot negate {other}"))),
                    },
                    UnOp::Not => match self.truth(&v)? {
                        None => Ok(Value::Null),
                        Some(b) => Ok(Value::Bool(!b)),
                    },
                }
            }
            Expr::Binary { left, op, right } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = self.eval_expr(left, env, ctx, ctes)?;
                    let lt = self.truth(&l)?;
                    // Short-circuit per 3VL.
                    match (op, lt) {
                        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
                        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                    let r = self.eval_expr(right, env, ctx, ctes)?;
                    let rt = self.truth(&r)?;
                    return Ok(match (op, lt, rt) {
                        (BinOp::And, Some(true), Some(true)) => Value::Bool(true),
                        (BinOp::And, _, Some(false)) => Value::Bool(false),
                        (BinOp::And, _, _) => Value::Null,
                        (BinOp::Or, _, Some(true)) => Value::Bool(true),
                        (BinOp::Or, Some(false), Some(false)) => Value::Bool(false),
                        (BinOp::Or, _, _) => Value::Null,
                        _ => unreachable!(),
                    });
                }
                let l = self.eval_expr(left, env, ctx, ctes)?;
                let r = self.eval_expr(right, env, ctx, ctes)?;
                if op.is_comparison() {
                    return Ok(match l.sql_cmp(&r) {
                        None => {
                            if l.is_null() || r.is_null() {
                                Value::Null
                            } else {
                                // Incomparable types: unequal.
                                match op {
                                    BinOp::Ne => Value::Bool(true),
                                    _ => Value::Bool(false),
                                }
                            }
                        }
                        Some(ord) => Value::Bool(match op {
                            BinOp::Eq => ord.is_eq(),
                            BinOp::Ne => !ord.is_eq(),
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        }),
                    });
                }
                // Arithmetic.
                match (l, r) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Int(a), Value::Int(b)) => match op {
                        BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                        BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                        BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                        BinOp::Div => {
                            if b == 0 {
                                Err(DbError::Execution("division by zero".into()))
                            } else {
                                // wrapping: i64::MIN / -1 must not abort.
                                Ok(Value::Int(a.wrapping_div(b)))
                            }
                        }
                        BinOp::Mod => {
                            if b == 0 {
                                Err(DbError::Execution("modulo by zero".into()))
                            } else {
                                Ok(Value::Int(a.wrapping_rem(b)))
                            }
                        }
                        _ => unreachable!(),
                    },
                    (a, b) => Err(DbError::Type(format!("arithmetic on {a} and {b}"))),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval_expr(expr, env, ctx, ctes)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval_expr(expr, env, ctx, ctes)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                // Row-independent lists (the common shape, e.g. batched
                // `id IN (…)` deletes) build their probe set once per
                // statement; only correlated lists re-evaluate per row.
                if let Some(cl) = self.cached_in_list(list, ctx, ctes)? {
                    return Ok(if cl.set.contains(&v) {
                        Value::Bool(!negated)
                    } else if cl.has_null {
                        Value::Null
                    } else {
                        Value::Bool(*negated)
                    });
                }
                let mut saw_null = false;
                for item in list {
                    let iv = self.eval_expr(item, env, ctx, ctes)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv == v {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval_expr(expr, env, ctx, ctes)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                    other => Err(DbError::Type(format!("LIKE on non-string value {other}"))),
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let v = self.eval_expr(expr, env, ctx, ctes)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let sub = self.cached_subquery(query, ctx)?;
                if sub.set.contains(&v) {
                    Ok(Value::Bool(!negated))
                } else if sub.has_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Exists { query, negated } => {
                let sub = self.cached_subquery(query, ctx)?;
                Ok(Value::Bool(sub.rows.is_empty() == *negated))
            }
            Expr::ScalarSubquery(query) => {
                let sub = self.cached_subquery(query, ctx)?;
                match sub.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(sub.rows[0]
                        .first()
                        .cloned()
                        .ok_or_else(|| DbError::Execution("zero-column subquery".into()))?),
                    n => Err(DbError::Execution(format!(
                        "scalar subquery returned {n} rows"
                    ))),
                }
            }
            Expr::Aggregate { .. } => Err(DbError::Execution(
                "aggregate used outside an aggregate query".into(),
            )),
        }
    }

    pub(crate) fn cached_subquery(
        &self,
        q: &SelectStmt,
        ctx: &EvalCtx<'_>,
    ) -> Result<Rc<CachedSub>> {
        let key = q as *const SelectStmt as usize;
        if let Some(hit) = ctx.sub_cache.borrow().get(&key) {
            return Ok(hit.clone());
        }
        let rs = self.eval_select(q, ctx)?;
        let mut set = HashSet::with_capacity(rs.rows.len());
        let mut has_null = false;
        for r in &rs.rows {
            match r.first() {
                Some(Value::Null) | None => has_null = true,
                Some(v) => {
                    set.insert(v.clone());
                }
            }
        }
        let cached = Rc::new(CachedSub {
            rows: rs.rows,
            set,
            has_null,
        });
        ctx.sub_cache.borrow_mut().insert(key, cached.clone());
        Ok(cached)
    }

    /// Probe set for a row-independent IN-list, materialized once per
    /// statement and cached by the list's address (the statement or plan
    /// holding it outlives the execution — see `EvalCtx::keepalive`).
    /// Returns `None` for correlated lists, which must be re-evaluated
    /// against each outer row.
    pub(crate) fn cached_in_list(
        &self,
        list: &[Expr],
        ctx: &EvalCtx<'_>,
        ctes: &CteEnv,
    ) -> Result<Option<Rc<CachedList>>> {
        let key = list.as_ptr() as usize;
        if let Some(hit) = ctx.list_cache.borrow().get(&key) {
            return Ok(Some(hit.clone()));
        }
        if !list.iter().all(Self::row_independent) {
            return Ok(None);
        }
        StatsCells::bump(&self.stats.in_list_builds, 1);
        let empty = SliceEnv {
            layout: &[],
            values: &[],
        };
        let mut set = HashSet::with_capacity(list.len());
        let mut has_null = false;
        for item in list {
            let v = self.eval_expr(item, &empty, ctx, ctes)?;
            if v.is_null() {
                has_null = true;
            } else {
                set.insert(v);
            }
        }
        let cached = Rc::new(CachedList { set, has_null });
        ctx.list_cache.borrow_mut().insert(key, cached.clone());
        Ok(Some(cached))
    }

    pub(crate) fn truth(&self, v: &Value) -> Result<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(DbError::Type(format!("expected boolean, got {other}"))),
        }
    }

    pub(crate) fn eval_bool(
        &self,
        e: &Expr,
        env: &dyn Scope,
        ctx: &EvalCtx<'_>,
        ctes: &CteEnv,
    ) -> Result<Option<bool>> {
        let v = self.eval_expr(e, env, ctx, ctes)?;
        self.truth(&v)
    }

    pub(crate) fn eval_aggregate_expr(
        &self,
        e: &Expr,
        layout: &[(String, Vec<String>, usize)],
        rows: &[Row],
        ctx: &EvalCtx<'_>,
        ctes: &CteEnv,
    ) -> Result<Value> {
        match e {
            Expr::Aggregate { func, arg } => match func {
                AggFunc::Count => match arg {
                    None => Ok(Value::Int(rows.len() as i64)),
                    Some(a) => {
                        let mut n = 0i64;
                        for row in rows {
                            let env = SliceEnv {
                                layout,
                                values: row,
                            };
                            if !self.eval_expr(a, &env, ctx, ctes)?.is_null() {
                                n += 1;
                            }
                        }
                        Ok(Value::Int(n))
                    }
                },
                AggFunc::Min | AggFunc::Max => {
                    let a = arg
                        .as_ref()
                        .ok_or_else(|| DbError::Execution("MIN/MAX need an argument".into()))?;
                    let mut best: Option<Value> = None;
                    for row in rows {
                        let env = SliceEnv {
                            layout,
                            values: row,
                        };
                        let v = self.eval_expr(a, &env, ctx, ctes)?;
                        if v.is_null() {
                            continue;
                        }
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let take_new = match v.sort_cmp(&b) {
                                    std::cmp::Ordering::Less => *func == AggFunc::Min,
                                    std::cmp::Ordering::Greater => *func == AggFunc::Max,
                                    std::cmp::Ordering::Equal => false,
                                };
                                if take_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
                AggFunc::Sum => {
                    let a = arg
                        .as_ref()
                        .ok_or_else(|| DbError::Execution("SUM needs an argument".into()))?;
                    let mut sum: Option<i64> = None;
                    for row in rows {
                        let env = SliceEnv {
                            layout,
                            values: row,
                        };
                        match self.eval_expr(a, &env, ctx, ctes)? {
                            Value::Null => {}
                            Value::Int(i) => sum = Some(sum.unwrap_or(0).wrapping_add(i)),
                            other => return Err(DbError::Type(format!("SUM over {other}"))),
                        }
                    }
                    Ok(sum.map(Value::Int).unwrap_or(Value::Null))
                }
            },
            Expr::Binary { left, op, right } => {
                let l = self.eval_aggregate_expr(left, layout, rows, ctx, ctes)?;
                let r = self.eval_aggregate_expr(right, layout, rows, ctx, ctes)?;
                let combined = Expr::Binary {
                    left: Box::new(Expr::Literal(l)),
                    op: *op,
                    right: Box::new(Expr::Literal(r)),
                };
                self.eval_expr(&combined, &RowEnv::default(), ctx, ctes)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_aggregate_expr(expr, layout, rows, ctx, ctes)?;
                let combined = Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(v)),
                };
                self.eval_expr(&combined, &RowEnv::default(), ctx, ctes)
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => ctx
                .params
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Execution(format!("unbound parameter ${}", i + 1))),
            other => Err(DbError::Execution(format!(
                "non-aggregate expression in aggregate query: {other:?}"
            ))),
        }
    }
}
