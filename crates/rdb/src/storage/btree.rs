//! Copy-on-write B-tree keyed on row id (slot position), one per table.
//!
//! Leaf cells map a `u64` key to a row payload (the WAL row codec's
//! bytes); payloads above [`MAX_INLINE`] spill into a chain of overflow
//! pages. Interior cells are `(separator, child)` pairs where `child`
//! covers keys `<= separator`; the page header's `next` pointer is the
//! rightmost child. Leaves carry no sibling pointers — scans descend the
//! tree — so shadow paging never has to chase and rewrite a sibling
//! chain when a page relocates.
//!
//! Every mutating descent goes through [`PageHeap::writable`]: pages
//! belonging to the last durable checkpoint are relocated on first touch
//! and parents along the path are re-pointed, so the previous
//! checkpoint's tree stays intact on disk until the meta rename commits
//! the new one (see `storage::pool`).

use super::pager::{Page, PageKind, PAGE_HDR, PAGE_SIZE, SLOT_ENTRY};
use super::pool::PageHeap;
use crate::error::{DbError, Result};

/// Largest payload stored inline in a leaf cell; anything bigger goes to
/// an overflow chain. Sized so a leaf always holds at least three cells.
pub const MAX_INLINE: usize = 1000;

/// Payload bytes per overflow page (one cell filling the page).
const OVERFLOW_CHUNK: usize = PAGE_SIZE - PAGE_HDR - SLOT_ENTRY;

const TAG_INLINE: u8 = 0;
const TAG_OVERFLOW: u8 = 1;

fn corrupt(what: &str) -> DbError {
    DbError::Storage(format!("b-tree corrupt: {what}"))
}

fn cell_key(cell: &[u8]) -> u64 {
    u64::from_le_bytes(cell[..8].try_into().expect("cell has a key"))
}

/// Build a leaf cell for `key`/`val`, spilling to overflow pages first
/// when the payload is too large to inline.
fn leaf_cell(h: &mut PageHeap, key: u64, val: &[u8]) -> Result<Vec<u8>> {
    let mut cell = Vec::with_capacity(17 + val.len().min(MAX_INLINE));
    cell.extend_from_slice(&key.to_le_bytes());
    if val.len() <= MAX_INLINE {
        cell.push(TAG_INLINE);
        cell.extend_from_slice(&(val.len() as u32).to_le_bytes());
        cell.extend_from_slice(val);
        return Ok(cell);
    }
    // Build the chain back to front so each page's `next` is known.
    let mut next = 0u64;
    for chunk in val.chunks(OVERFLOW_CHUNK).rev() {
        next = h.alloc_with(PageKind::Overflow, &[chunk.to_vec()], next)?;
    }
    cell.push(TAG_OVERFLOW);
    cell.extend_from_slice(&(val.len() as u32).to_le_bytes());
    cell.extend_from_slice(&next.to_le_bytes());
    Ok(cell)
}

/// Read the payload a leaf cell points at (inline or overflow chain).
fn read_value(h: &mut PageHeap, cell: &[u8]) -> Result<Vec<u8>> {
    let tag = *cell.get(8).ok_or_else(|| corrupt("short leaf cell"))?;
    let len = u32::from_le_bytes(
        cell.get(9..13)
            .ok_or_else(|| corrupt("short leaf cell"))?
            .try_into()
            .unwrap(),
    ) as usize;
    match tag {
        TAG_INLINE => {
            let bytes = cell
                .get(13..13 + len)
                .ok_or_else(|| corrupt("short inline"))?;
            Ok(bytes.to_vec())
        }
        TAG_OVERFLOW => {
            let mut at = u64::from_le_bytes(
                cell.get(13..21)
                    .ok_or_else(|| corrupt("short overflow ref"))?
                    .try_into()
                    .unwrap(),
            );
            let mut out = Vec::with_capacity(len);
            while at != 0 {
                let page = h.view(at)?;
                if page.kind() != PageKind::Overflow {
                    return Err(corrupt("overflow chain points at non-overflow page"));
                }
                out.extend_from_slice(page.cell(0));
                at = page.next();
            }
            if out.len() != len {
                return Err(corrupt("overflow chain length mismatch"));
            }
            Ok(out)
        }
        _ => Err(corrupt("bad leaf cell tag")),
    }
}

/// Free any overflow chain a leaf cell owns (before dropping the cell).
fn free_value(h: &mut PageHeap, cell: &[u8]) -> Result<()> {
    if cell.get(8) != Some(&TAG_OVERFLOW) {
        return Ok(());
    }
    let mut at = u64::from_le_bytes(
        cell.get(13..21)
            .ok_or_else(|| corrupt("short overflow ref"))?
            .try_into()
            .unwrap(),
    );
    while at != 0 {
        let next = h.view(at)?.next();
        h.free(at);
        at = next;
    }
    Ok(())
}

fn interior_cell(key: u64, child: u64) -> Vec<u8> {
    let mut cell = Vec::with_capacity(16);
    cell.extend_from_slice(&key.to_le_bytes());
    cell.extend_from_slice(&child.to_le_bytes());
    cell
}

fn interior_child(cell: &[u8]) -> u64 {
    u64::from_le_bytes(cell[8..16].try_into().expect("interior cell has a child"))
}

fn install_cells(
    h: &mut PageHeap,
    id: u64,
    kind: PageKind,
    cells: &[Vec<u8>],
    next: u64,
) -> Result<()> {
    let mut page = Page::new(kind);
    page.set_next(next);
    assert!(page.set_cells(cells), "cells exceed page capacity");
    h.install(id, page)
}

struct PutOut {
    /// The page's id after any copy-on-write relocation.
    id: u64,
    /// `(separator, right page)` when the page split.
    split: Option<(u64, u64)>,
}

/// Insert or replace `key → val`. Returns the (possibly new) root id.
pub fn bt_put(h: &mut PageHeap, root: u64, key: u64, val: &[u8]) -> Result<u64> {
    if root == 0 {
        let cell = leaf_cell(h, key, val)?;
        return h.alloc_with(PageKind::Leaf, &[cell], 0);
    }
    let out = put_rec(h, root, key, val)?;
    match out.split {
        None => Ok(out.id),
        Some((sep, right)) => {
            h.alloc_with(PageKind::Interior, &[interior_cell(sep, out.id)], right)
        }
    }
}

fn put_rec(h: &mut PageHeap, id: u64, key: u64, val: &[u8]) -> Result<PutOut> {
    let (id, page) = h.writable(id)?;
    match page.kind() {
        PageKind::Leaf => {
            let mut cells = page.cells();
            let cell = leaf_cell(h, key, val)?;
            match cells.binary_search_by_key(&key, |c| cell_key(c)) {
                Ok(i) => {
                    free_value(h, &cells[i])?;
                    cells[i] = cell;
                }
                Err(i) => cells.insert(i, cell),
            }
            if Page::used_by(&cells) <= PAGE_SIZE {
                install_cells(h, id, PageKind::Leaf, &cells, 0)?;
                return Ok(PutOut { id, split: None });
            }
            let right_cells = cells.split_off(cells.len() / 2);
            let sep = cell_key(cells.last().expect("left half non-empty"));
            install_cells(h, id, PageKind::Leaf, &cells, 0)?;
            let right = h.alloc_with(PageKind::Leaf, &right_cells, 0)?;
            Ok(PutOut {
                id,
                split: Some((sep, right)),
            })
        }
        PageKind::Interior => {
            let mut cells = page.cells();
            let mut next = page.next();
            let route = cells.iter().position(|c| cell_key(c) >= key);
            let child = match route {
                Some(i) => interior_child(&cells[i]),
                None => next,
            };
            let out = put_rec(h, child, key, val)?;
            match route {
                Some(i) => {
                    let k = cell_key(&cells[i]);
                    cells[i] = interior_cell(k, out.id);
                }
                None => next = out.id,
            }
            if let Some((sep, right)) = out.split {
                match route {
                    Some(i) => {
                        // The child covering keys <= k split: left half
                        // covers <= sep, right half the rest up to k.
                        let k = cell_key(&cells[i]);
                        cells[i] = interior_cell(sep, out.id);
                        cells.insert(i + 1, interior_cell(k, right));
                    }
                    None => {
                        cells.push(interior_cell(sep, out.id));
                        next = right;
                    }
                }
            }
            if Page::used_by(&cells) <= PAGE_SIZE {
                install_cells(h, id, PageKind::Interior, &cells, next)?;
                return Ok(PutOut { id, split: None });
            }
            let mut right_cells = cells.split_off(cells.len() / 2);
            // The promoted separator's child becomes the left page's
            // rightmost child.
            let promoted = right_cells.remove(0);
            let sep = cell_key(&promoted);
            let left_next = interior_child(&promoted);
            install_cells(h, id, PageKind::Interior, &cells, left_next)?;
            let right = h.alloc_with(PageKind::Interior, &right_cells, next)?;
            Ok(PutOut {
                id,
                split: Some((sep, right)),
            })
        }
        other => Err(corrupt(&format!("descent into {other:?} page"))),
    }
}

/// Look up `key`. Read-only: no copy-on-write, no page writes.
pub fn bt_get(h: &mut PageHeap, root: u64, key: u64) -> Result<Option<Vec<u8>>> {
    let mut at = root;
    while at != 0 {
        let page = h.view(at)?;
        match page.kind() {
            PageKind::Leaf => {
                let n = page.ncells();
                for i in 0..n {
                    let cell = page.cell(i);
                    if cell_key(cell) == key {
                        let cell = cell.to_vec();
                        return read_value(h, &cell).map(Some);
                    }
                }
                return Ok(None);
            }
            PageKind::Interior => {
                let n = page.ncells();
                let mut child = page.next();
                for i in 0..n {
                    let cell = page.cell(i);
                    if cell_key(cell) >= key {
                        child = interior_child(cell);
                        break;
                    }
                }
                at = child;
            }
            other => return Err(corrupt(&format!("descent into {other:?} page"))),
        }
    }
    Ok(None)
}

/// Remove `key` if present. Returns the (possibly new) root id; `0` when
/// the tree is now empty. Interior pages are not rebalanced — row-id
/// keys arrive mostly in append order, so sparse pages are rare and are
/// reclaimed wholesale when the table drops.
pub fn bt_delete(h: &mut PageHeap, root: u64, key: u64) -> Result<u64> {
    if root == 0 {
        return Ok(0);
    }
    let new_root = del_rec(h, root, key)?;
    // Collapse an emptied root leaf so a fully-cleared table returns to
    // the `root == 0` state.
    let page = h.view(new_root)?;
    if page.kind() == PageKind::Leaf && page.ncells() == 0 {
        h.free(new_root);
        return Ok(0);
    }
    Ok(new_root)
}

fn del_rec(h: &mut PageHeap, id: u64, key: u64) -> Result<u64> {
    let (id, page) = h.writable(id)?;
    match page.kind() {
        PageKind::Leaf => {
            let mut cells = page.cells();
            if let Ok(i) = cells.binary_search_by_key(&key, |c| cell_key(c)) {
                free_value(h, &cells[i])?;
                cells.remove(i);
            }
            install_cells(h, id, PageKind::Leaf, &cells, 0)?;
            Ok(id)
        }
        PageKind::Interior => {
            let mut cells = page.cells();
            let mut next = page.next();
            let route = cells.iter().position(|c| cell_key(c) >= key);
            let child = match route {
                Some(i) => interior_child(&cells[i]),
                None => next,
            };
            let new_child = del_rec(h, child, key)?;
            match route {
                Some(i) => {
                    let k = cell_key(&cells[i]);
                    cells[i] = interior_cell(k, new_child);
                }
                None => next = new_child,
            }
            install_cells(h, id, PageKind::Interior, &cells, next)?;
            Ok(id)
        }
        other => Err(corrupt(&format!("descent into {other:?} page"))),
    }
}

/// Collect every `key → payload` entry in ascending key order.
pub fn bt_scan(h: &mut PageHeap, root: u64) -> Result<Vec<(u64, Vec<u8>)>> {
    let mut out = Vec::new();
    if root != 0 {
        scan_rec(h, root, &mut out)?;
    }
    Ok(out)
}

fn scan_rec(h: &mut PageHeap, id: u64, out: &mut Vec<(u64, Vec<u8>)>) -> Result<()> {
    let page = h.view(id)?;
    match page.kind() {
        PageKind::Leaf => {
            let cells = page.cells();
            for cell in cells {
                let key = cell_key(&cell);
                let val = read_value(h, &cell)?;
                out.push((key, val));
            }
            Ok(())
        }
        PageKind::Interior => {
            let cells = page.cells();
            let next = page.next();
            for cell in cells {
                scan_rec(h, interior_child(&cell), out)?;
            }
            scan_rec(h, next, out)
        }
        other => Err(corrupt(&format!("scan into {other:?} page"))),
    }
}

/// Count the pages a tree occupies: every leaf and interior node plus
/// overflow-chain pages. Chain lengths are derived from the spilled
/// payload sizes recorded in the leaf cells, so the chains themselves
/// are never faulted into the buffer pool.
pub fn bt_page_count(h: &mut PageHeap, root: u64) -> Result<u64> {
    if root == 0 {
        return Ok(0);
    }
    count_rec(h, root)
}

fn count_rec(h: &mut PageHeap, id: u64) -> Result<u64> {
    let page = h.view(id)?;
    match page.kind() {
        PageKind::Leaf => {
            let mut n = 1u64;
            for cell in page.cells() {
                let tag = *cell.get(8).ok_or_else(|| corrupt("short leaf cell"))?;
                if tag == TAG_OVERFLOW {
                    let len = u32::from_le_bytes(
                        cell.get(9..13)
                            .ok_or_else(|| corrupt("short leaf cell"))?
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    n += len.div_ceil(OVERFLOW_CHUNK) as u64;
                }
            }
            Ok(n)
        }
        PageKind::Interior => {
            let mut n = 1u64;
            for cell in page.cells() {
                n += count_rec(h, interior_child(&cell))?;
            }
            n += count_rec(h, page.next())?;
            Ok(n)
        }
        other => Err(corrupt(&format!("page count into {other:?} page"))),
    }
}

/// Free an entire tree (overflow chains included) — `DROP TABLE`.
pub fn bt_free(h: &mut PageHeap, root: u64) -> Result<()> {
    if root == 0 {
        return Ok(());
    }
    let page = h.view(root)?;
    match page.kind() {
        PageKind::Leaf => {
            let cells = page.cells();
            for cell in cells {
                free_value(h, &cell)?;
            }
        }
        PageKind::Interior => {
            let cells = page.cells();
            let next = page.next();
            for cell in cells {
                bt_free(h, interior_child(&cell))?;
            }
            bt_free(h, next)?;
        }
        _ => {}
    }
    h.free(root);
    Ok(())
}
