//! Clock buffer pool and the copy-on-write page heap.
//!
//! The [`BufferPool`] caches page images under a configurable frame
//! budget with second-chance (clock) eviction: every access sets a
//! reference bit; the eviction hand clears bits until it finds a frame
//! whose bit is already clear, writes the frame back if dirty (no fsync
//! — durability is the checkpoint's job), and reuses it. Dirty tracking
//! is per frame, which is exactly what makes checkpoints incremental:
//! flushing the pool's dirty frames writes the pages this generation
//! touched, not the database.
//!
//! The [`PageHeap`] layers page allocation and shadow paging over the
//! pool. Pages reachable from the last durable checkpoint meta are never
//! written in place: the first mutation of such a page in a new
//! generation relocates it to a freshly allocated id (`writable`), the
//! old id joins the pending-free list, and the B-tree layer re-points
//! parents along the mutated path. A crash at any moment therefore
//! leaves the previous checkpoint's page tree fully intact on disk, and
//! the atomic meta rename is the only commit point.

use super::pager::{Page, PageKind, Pager, PAGE_SIZE};
use crate::error::Result;
use std::collections::{HashMap, HashSet};

/// Buffer-pool observability counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests answered from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the page file.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty frames written back at eviction time.
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    id: u64,
    page: Page,
    dirty: bool,
    refbit: bool,
}

/// A fixed-budget page cache with clock (second-chance) eviction and
/// per-frame dirty tracking.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    budget: usize,
    /// Cumulative hit/miss/eviction counters.
    pub stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `budget` frames (minimum 8 — the B-tree
    /// needs a handful of resident pages to descend without thrashing).
    pub fn new(budget: usize) -> BufferPool {
        BufferPool {
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            budget: budget.max(8),
            stats: PoolStats::default(),
        }
    }

    /// The configured frame budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Borrow page `id`, faulting it in from `pager` on a miss (evicting
    /// if the pool is at budget).
    pub fn get(&mut self, pager: &mut Pager, id: u64) -> Result<&Page> {
        if let Some(&fi) = self.map.get(&id) {
            self.stats.hits += 1;
            self.frames[fi].refbit = true;
            return Ok(&self.frames[fi].page);
        }
        self.stats.misses += 1;
        let page = pager.read_page(id)?;
        let fi = self.place(pager, id, page, false)?;
        Ok(&self.frames[fi].page)
    }

    /// Install `page` as the content of `id`, marking the frame dirty.
    /// Used for freshly allocated and rewritten pages; never reads disk.
    pub fn install(&mut self, pager: &mut Pager, id: u64, page: Page) -> Result<()> {
        if let Some(&fi) = self.map.get(&id) {
            let f = &mut self.frames[fi];
            f.page = page;
            f.dirty = true;
            f.refbit = true;
            return Ok(());
        }
        self.place(pager, id, page, true)?;
        Ok(())
    }

    /// Drop page `id`'s frame without write-back (the page was freed).
    pub fn discard(&mut self, id: u64) {
        if let Some(fi) = self.map.remove(&id) {
            let last = self.frames.len() - 1;
            self.frames.swap(fi, last);
            self.frames.pop();
            if fi < self.frames.len() {
                self.map.insert(self.frames[fi].id, fi);
            }
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
        }
    }

    /// Write every dirty frame back (no fsync) and clear its dirty bit.
    /// Returns `(pages, bytes)` written — the incremental checkpoint's
    /// work measure.
    pub fn flush_dirty(&mut self, pager: &mut Pager) -> Result<(u64, u64)> {
        let mut pages = 0u64;
        for f in self.frames.iter_mut() {
            if f.dirty {
                pager.write_page(f.id, &mut f.page)?;
                f.dirty = false;
                pages += 1;
            }
        }
        Ok((pages, pages * PAGE_SIZE as u64))
    }

    fn place(&mut self, pager: &mut Pager, id: u64, page: Page, dirty: bool) -> Result<usize> {
        if self.frames.len() < self.budget {
            let fi = self.frames.len();
            self.frames.push(Frame {
                id,
                page,
                dirty,
                refbit: true,
            });
            self.map.insert(id, fi);
            return Ok(fi);
        }
        // Clock sweep: give referenced frames a second chance, reclaim
        // the first frame whose bit is already clear.
        let fi = loop {
            let f = &mut self.frames[self.hand];
            if f.refbit {
                f.refbit = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                break self.hand;
            }
        };
        let victim = &mut self.frames[fi];
        if victim.dirty {
            pager.write_page(victim.id, &mut victim.page)?;
            self.stats.writebacks += 1;
        }
        self.stats.evictions += 1;
        self.map.remove(&victim.id);
        victim.id = id;
        victim.page = page;
        victim.dirty = dirty;
        victim.refbit = true;
        self.map.insert(id, fi);
        self.hand = (fi + 1) % self.frames.len();
        Ok(fi)
    }
}

/// Page allocation + shadow paging over a [`BufferPool`] and [`Pager`].
#[derive(Debug)]
pub struct PageHeap {
    pager: Pager,
    pool: BufferPool,
    /// Highest allocated page id (ids are 1-based; 0 is the nil pointer).
    pub page_count: u64,
    /// Pages free in the current durable meta — reusable immediately.
    free_now: Vec<u64>,
    /// Pages freed this generation but referenced by the last durable
    /// checkpoint; reusable only after the next checkpoint commits.
    pending_free: Vec<u64>,
    /// Pages allocated since the last checkpoint: mutable in place.
    fresh: HashSet<u64>,
    /// Monotonic store LSN, stamped into sealed pages.
    pub lsn: u64,
}

impl PageHeap {
    /// A heap over `pager` with a pool of `pool_frames` frames.
    pub fn new(pager: Pager, pool_frames: usize) -> PageHeap {
        PageHeap {
            pager,
            pool: BufferPool::new(pool_frames),
            page_count: 0,
            free_now: Vec::new(),
            pending_free: Vec::new(),
            fresh: HashSet::new(),
            lsn: 0,
        }
    }

    /// Adopt allocation state from a decoded checkpoint meta.
    pub fn load_state(&mut self, page_count: u64, free: Vec<u64>, lsn: u64) {
        self.page_count = page_count;
        self.free_now = free;
        self.pending_free.clear();
        self.fresh.clear();
        self.lsn = lsn;
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// The pool's frame budget.
    pub fn pool_budget(&self) -> usize {
        self.pool.budget()
    }

    /// Read page `id` through the pool, returning an owned image.
    pub fn view(&mut self, id: u64) -> Result<Page> {
        Ok(self.pool.get(&mut self.pager, id)?.clone())
    }

    /// Allocate a page id: reuse a free-now page or extend the file. The
    /// new page is fresh — mutable in place until the next checkpoint.
    pub fn alloc(&mut self) -> u64 {
        let id = self.free_now.pop().unwrap_or_else(|| {
            self.page_count += 1;
            self.page_count
        });
        self.fresh.insert(id);
        id
    }

    /// Free page `id`. Fresh pages return to the reusable list at once;
    /// pages belonging to the last durable checkpoint are only pending —
    /// the old tree must stay intact until the next meta rename commits.
    pub fn free(&mut self, id: u64) {
        self.pool.discard(id);
        if self.fresh.remove(&id) {
            self.free_now.push(id);
        } else {
            self.pending_free.push(id);
        }
    }

    /// Shadow-paging write intent: return the id this page must be
    /// written under plus a mutable image of its content. Fresh pages
    /// keep their id; a page from the last durable checkpoint is
    /// relocated (copy-on-write) to a new id and the old id goes to the
    /// pending-free list. The caller mutates the image, re-points the
    /// parent if the id changed, and [`PageHeap::install`]s it.
    pub fn writable(&mut self, id: u64) -> Result<(u64, Page)> {
        let page = self.view(id)?;
        if self.fresh.contains(&id) {
            return Ok((id, page));
        }
        let new_id = self.alloc();
        self.pool.discard(id);
        self.pending_free.push(id);
        Ok((new_id, page))
    }

    /// Install a (possibly new) page image under `id`, stamped with the
    /// next store LSN. The write lands in the pool; disk I/O happens at
    /// eviction or checkpoint flush.
    pub fn install(&mut self, id: u64, mut page: Page) -> Result<()> {
        self.lsn += 1;
        page.set_lsn(self.lsn);
        self.pool.install(&mut self.pager, id, page)
    }

    /// Allocate and install a page with the given cells in one step.
    pub fn alloc_with(&mut self, kind: PageKind, cells: &[Vec<u8>], next: u64) -> Result<u64> {
        let id = self.alloc();
        let mut page = Page::new(kind);
        page.set_next(next);
        assert!(page.set_cells(cells), "cells exceed page capacity");
        self.install(id, page)?;
        Ok(id)
    }

    /// Flush all dirty frames and fsync the page file. Returns
    /// `(pages, bytes)` written by the flush.
    pub fn flush(&mut self) -> Result<(u64, u64)> {
        let counts = self.pool.flush_dirty(&mut self.pager)?;
        self.pager.sync()?;
        Ok(counts)
    }

    /// The freelist a checkpoint meta should record: every page free now
    /// plus every page the committing checkpoint unreferences.
    pub fn checkpoint_free_list(&self) -> Vec<u64> {
        let mut free: Vec<u64> = self
            .free_now
            .iter()
            .chain(self.pending_free.iter())
            .copied()
            .collect();
        free.sort_unstable();
        free
    }

    /// The checkpoint meta is durable: pending frees become reusable and
    /// every page the new meta references is no longer fresh.
    pub fn checkpoint_committed(&mut self) {
        self.free_now.append(&mut self.pending_free);
        self.fresh.clear();
    }

    /// Reset to an empty store (fresh directory, no checkpoint meta).
    pub fn reset_file(&mut self) -> Result<()> {
        self.pager.reset()?;
        self.page_count = 0;
        self.free_now.clear();
        self.pending_free.clear();
        self.fresh.clear();
        Ok(())
    }
}
