//! The paged storage backend: per-table copy-on-write B-trees over a
//! slotted-page file, cached by a clock buffer pool, checkpointed
//! incrementally.
//!
//! All mutations land in pool frames (dirty, no I/O beyond eviction
//! write-back); a checkpoint flushes exactly the dirty frames, fsyncs
//! the page file, and commits by atomically renaming a small meta file
//! (generation, table roots, freelist) — the same tmp + rename +
//! dir-sync protocol the full snapshot uses. Shadow paging guarantees
//! the previous checkpoint's pages were never overwritten, so a crash at
//! any instant recovers from the old meta plus the WAL.
//!
//! Mirror writes arrive from [`crate::Table`] on every slot mutation
//! (forward DML, rollback undo, and WAL replay all funnel through the
//! same six mutation methods), so the page store tracks the in-memory
//! heap byte for byte between checkpoints. Mirror paths cannot return
//! errors to their callers, so an I/O failure *poisons* the store: the
//! error is stored and surfaced by the next checkpoint or read.

use super::btree::{bt_delete, bt_free, bt_get, bt_page_count, bt_put, bt_scan};
use super::pager::{
    encode_meta, Pager, StoreMeta, TableMeta, DATA_FILE, META_FILE, META_TMP, PAGE_SIZE,
};
use super::pool::{PageHeap, PoolStats};
use super::{BackendKind, CheckpointCatalog, CheckpointReport, StorageBackend, StorageMetrics};
use crate::error::{DbError, Result};
use crate::value::Row;
use crate::wal::{self, Reader};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    wal::put_row(&mut out, row);
    out
}

fn decode_row(bytes: &[u8]) -> Result<Row> {
    let mut r = Reader::new(bytes);
    let row = r
        .row()
        .ok_or_else(|| DbError::Storage("page row payload corrupt".into()))?;
    if !r.done() {
        return Err(DbError::Storage(
            "page row payload has trailing bytes".into(),
        ));
    }
    Ok(row)
}

#[derive(Debug)]
struct StoreInner {
    heap: PageHeap,
    /// B-tree root per lower-cased table key (0 = empty tree).
    roots: HashMap<String, u64>,
    /// First mirror-path I/O error; surfaces at the next checkpoint or
    /// read instead of being silently dropped.
    poisoned: Option<String>,
}

/// The paged storage backend. Interior-mutable behind one mutex so the
/// mirror hooks work from `&self` (queries run from `&Database`).
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    read_through: bool,
    inner: Mutex<StoreInner>,
}

impl PagedStore {
    /// Open (or create) the page store inside `dir` with a buffer pool
    /// of `pool_frames` frames. Returns the store plus the decoded
    /// checkpoint meta when one exists — the engine rebuilds its
    /// in-memory tables from it before WAL replay. Without a meta the
    /// page file is reset: the store's content is whatever the engine
    /// seeds it with (fresh schema or a migrated full snapshot).
    pub fn open(
        dir: &Path,
        pool_frames: usize,
        read_through: bool,
    ) -> Result<(PagedStore, Option<StoreMeta>)> {
        let pager = Pager::open(&dir.join(DATA_FILE))?;
        let mut heap = PageHeap::new(pager, pool_frames);
        let meta_path = dir.join(META_FILE);
        let mut roots = HashMap::new();
        let meta = if meta_path.exists() {
            let bytes = fs::read(&meta_path)
                .map_err(|e| DbError::Storage(format!("read page meta: {e}")))?;
            let meta = super::pager::decode_meta(&bytes)?;
            heap.load_state(meta.page_count, meta.free.clone(), meta.lsn);
            for t in &meta.tables {
                roots.insert(t.key.clone(), t.root);
            }
            Some(meta)
        } else {
            heap.reset_file()?;
            None
        };
        Ok((
            PagedStore {
                dir: dir.to_path_buf(),
                read_through,
                inner: Mutex::new(StoreInner {
                    heap,
                    roots,
                    poisoned: None,
                }),
            },
            meta,
        ))
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut StoreInner) -> Result<T>) -> Result<T> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(why) = &inner.poisoned {
            return Err(DbError::Storage(format!("page store poisoned: {why}")));
        }
        f(&mut inner)
    }

    /// Run a mirror-path mutation; an error poisons the store instead of
    /// propagating (the mutation callers cannot fail).
    fn mirror(&self, f: impl FnOnce(&mut StoreInner) -> Result<()>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.poisoned.is_some() {
            return;
        }
        if let Err(e) = f(&mut inner) {
            inner.poisoned = Some(e.to_string());
        }
    }

    /// Buffer-pool counters (hits, misses, evictions, write-backs).
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().unwrap().heap.pool_stats()
    }
}

fn root_of(inner: &StoreInner, table: &str) -> Result<u64> {
    inner
        .roots
        .get(table)
        .copied()
        .ok_or_else(|| DbError::Storage(format!("page store has no table `{table}`")))
}

impl StorageBackend for PagedStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Paged
    }

    fn is_persistent(&self) -> bool {
        true
    }

    fn read_through(&self) -> bool {
        self.read_through
    }

    fn create_table(&self, table: &str) {
        self.mirror(|inner| {
            inner.roots.insert(table.to_string(), 0);
            Ok(())
        });
    }

    fn drop_table(&self, table: &str) {
        self.mirror(|inner| {
            if let Some(root) = inner.roots.remove(table) {
                bt_free(&mut inner.heap, root)?;
            }
            Ok(())
        });
    }

    fn put_row(&self, table: &str, pos: u64, row: &Row) {
        let payload = encode_row(row);
        self.mirror(|inner| {
            let root = root_of(inner, table)?;
            let new_root = bt_put(&mut inner.heap, root, pos, &payload)?;
            inner.roots.insert(table.to_string(), new_root);
            Ok(())
        });
    }

    fn delete_row(&self, table: &str, pos: u64) {
        self.mirror(|inner| {
            let root = root_of(inner, table)?;
            let new_root = bt_delete(&mut inner.heap, root, pos)?;
            inner.roots.insert(table.to_string(), new_root);
            Ok(())
        });
    }

    fn get_row(&self, table: &str, pos: u64) -> Result<Option<Row>> {
        self.with_inner(|inner| {
            let root = root_of(inner, table)?;
            match bt_get(&mut inner.heap, root, pos)? {
                Some(bytes) => decode_row(&bytes).map(Some),
                None => Ok(None),
            }
        })
    }

    fn scan_table(&self, table: &str) -> Result<Vec<(u64, Row)>> {
        self.with_inner(|inner| {
            let root = root_of(inner, table)?;
            let mut rows = Vec::new();
            for (pos, bytes) in bt_scan(&mut inner.heap, root)? {
                rows.push((pos, decode_row(&bytes)?));
            }
            Ok(rows)
        })
    }

    fn table_pages(&self, table: &str) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap();
        let root = *inner.roots.get(table)?;
        bt_page_count(&mut inner.heap, root).ok()
    }

    fn checkpoint(&self, catalog: &CheckpointCatalog) -> Result<Option<CheckpointReport>> {
        self.with_inner(|inner| {
            // 1. Flush exactly the dirty pool frames and make them
            //    durable. Shadow paging means none of these writes can
            //    touch a page the previous checkpoint still references.
            let (pages, bytes) = inner.heap.flush()?;
            // 2. Build and atomically publish the meta: tmp + fsync +
            //    rename + dir-sync, the same protocol as the snapshot.
            let tables: Vec<TableMeta> = catalog
                .tables
                .iter()
                .map(|t| TableMeta {
                    key: t.key.clone(),
                    name: t.name.clone(),
                    columns: t.columns.clone(),
                    root: inner.roots.get(&t.key).copied().unwrap_or(0),
                    slots_len: t.slots_len,
                    indexed: t.indexed.clone(),
                    ordered: t.ordered.clone(),
                    stats: t.stats.clone(),
                })
                .collect();
            let meta = StoreMeta {
                generation: catalog.generation,
                next_id: catalog.next_id,
                page_count: inner.heap.page_count,
                lsn: inner.heap.lsn,
                free: inner.heap.checkpoint_free_list(),
                tables,
                triggers: catalog.triggers.clone(),
            };
            let encoded = encode_meta(&meta);
            let tmp = self.dir.join(META_TMP);
            let dest = self.dir.join(META_FILE);
            (|| -> std::io::Result<()> {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&encoded)?;
                f.sync_all()?;
                drop(f);
                fs::rename(&tmp, &dest)?;
                if let Ok(dirf) = fs::File::open(&self.dir) {
                    let _ = dirf.sync_all();
                }
                Ok(())
            })()
            .map_err(|e| DbError::Storage(format!("checkpoint page meta: {e}")))?;
            // 3. The rename is the commit point: pending frees become
            //    reusable and the new tree's pages stop being fresh.
            inner.heap.checkpoint_committed();
            Ok(Some(CheckpointReport {
                pages_written: pages + encoded.len().div_ceil(PAGE_SIZE) as u64,
                bytes_written: bytes + encoded.len() as u64,
            }))
        })
    }

    fn metrics(&self) -> StorageMetrics {
        let inner = self.inner.lock().unwrap();
        StorageMetrics {
            backend: BackendKind::Paged,
            pool: inner.heap.pool_stats(),
            pool_frames: inner.heap.pool_budget() as u64,
            pages_allocated: inner.heap.page_count,
            lsn: inner.heap.lsn,
        }
    }
}
