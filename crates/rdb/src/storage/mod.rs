//! Pluggable storage backends behind the relational engine.
//!
//! The engine's tables are in-memory slot vectors ([`crate::Table`]);
//! this module decides what, if anything, sits underneath them:
//!
//! * [`MemoryBackend`] — the default. Nothing underneath: tables are the
//!   only copy, durability is the WAL + full-snapshot checkpoint. Zero
//!   overhead; `Database::new` and `Database::open` behave exactly as
//!   before this subsystem existed.
//! * [`PagedStore`](paged::PagedStore) — a slotted-page file with one
//!   copy-on-write B-tree per table (keyed on row id / slot position)
//!   and a clock buffer pool. Every table mutation is mirrored into the
//!   pages; `SELECT` scans and index probes read rows back through the
//!   pool ([`StorageBackend::read_through`]); checkpoints flush only the
//!   dirty frames and commit via an atomic meta rename, so checkpoint
//!   cost is O(pages touched), not O(database).
//!
//! The split of responsibilities: the in-memory table remains the
//! authority for *positions* (undo splicing, hash-index maintenance,
//! MVCC before-images — all slot-addressed), while the backend is the
//! authority for *bytes on disk*. MVCC version chains stay above the
//! trait, so snapshot reads behave identically on every backend.

pub mod btree;
pub mod paged;
pub mod pager;
pub mod pool;

pub use paged::PagedStore;
pub use pool::PoolStats;

use crate::error::Result;
use crate::value::{DataType, Row};

/// Which storage backend a database runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory tables only; checkpoints write a full snapshot.
    #[default]
    Memory,
    /// Slotted-page B-tree store with buffer pool and incremental
    /// checkpoints.
    Paged,
}

impl BackendKind {
    /// Parse a CLI flag value (`memory` / `paged`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "memory" | "mem" => Some(BackendKind::Memory),
            "paged" | "pages" => Some(BackendKind::Paged),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Memory => write!(f, "memory"),
            BackendKind::Paged => write!(f, "paged"),
        }
    }
}

/// Storage configuration for [`Database::open_with`](crate::Database::open_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Backend selection (default: in-memory).
    pub backend: BackendKind,
    /// Buffer-pool frame budget for the paged backend (frames × 4 KiB).
    pub pool_frames: usize,
    /// Whether `SELECT` scans and index probes materialize rows through
    /// the paged backend's buffer pool instead of the in-memory heap.
    /// On by default for the paged backend; ignored by the memory one.
    pub read_through: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: BackendKind::Memory,
            pool_frames: 1024,
            read_through: true,
        }
    }
}

impl StorageConfig {
    /// Convenience: the paged backend with the default pool budget.
    pub fn paged() -> StorageConfig {
        StorageConfig {
            backend: BackendKind::Paged,
            ..StorageConfig::default()
        }
    }
}

/// Storage-layer observability counters, surfaced in
/// [`Database::metrics`](crate::Database::metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageMetrics {
    /// Which backend produced these numbers.
    pub backend: BackendKind,
    /// Buffer-pool hit/miss/eviction/write-back counters.
    pub pool: PoolStats,
    /// Configured pool frame budget.
    pub pool_frames: u64,
    /// Highest allocated page id.
    pub pages_allocated: u64,
    /// Current store LSN.
    pub lsn: u64,
}

/// One table's schema entry in a [`CheckpointCatalog`].
#[derive(Debug, Clone)]
pub struct CatalogTable {
    /// Lower-cased catalog key.
    pub key: String,
    /// Schema name as created.
    pub name: String,
    /// Column name/type pairs in order.
    pub columns: Vec<(String, DataType)>,
    /// Slot-vector length, trailing tombstones included.
    pub slots_len: u64,
    /// Column indices carrying a hash index.
    pub indexed: Vec<u32>,
    /// Column indices carrying an ordered index.
    pub ordered: Vec<u32>,
    /// Optimizer statistics, if the table has been `ANALYZE`d.
    pub stats: Option<crate::stats::TableStatistics>,
}

/// Everything a backend needs from the engine to commit a checkpoint:
/// the generation, the id counter, and the catalog to rebuild tables
/// from at the next open.
#[derive(Debug, Clone)]
pub struct CheckpointCatalog {
    /// Checkpoint generation being committed.
    pub generation: u64,
    /// The engine's id counter.
    pub next_id: i64,
    /// Table catalog, sorted by key.
    pub tables: Vec<CatalogTable>,
    /// Triggers in registration order, as `CREATE TRIGGER` SQL.
    pub triggers: Vec<String>,
}

/// Work an incremental checkpoint reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Pages written (dirty frames flushed + meta, in page units).
    pub pages_written: u64,
    /// Bytes written (dirty frames + meta file).
    pub bytes_written: u64,
}

/// A storage backend underneath the engine's in-memory tables.
///
/// Mutation hooks (`create_table` … `delete_row`) are infallible mirror
/// calls invoked from [`crate::Table`]'s slot mutations — forward DML,
/// rollback undo, and WAL replay all pass through them. A backend that
/// can fail (I/O) records the error internally and surfaces it from the
/// fallible methods (`get_row`, `scan_table`, `checkpoint`).
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Whether the backend keeps its own durable copy of table data
    /// (mirror hooks are only attached to tables when it does).
    fn is_persistent(&self) -> bool;

    /// Whether `SELECT` scans should materialize rows through the
    /// backend instead of the in-memory heap.
    fn read_through(&self) -> bool;

    /// A table was created under `table` (lower-cased key).
    fn create_table(&self, table: &str);

    /// A table was dropped; reclaim its pages.
    fn drop_table(&self, table: &str);

    /// Slot `pos` of `table` now holds `row` (insert or full-row update).
    fn put_row(&self, table: &str, pos: u64, row: &Row);

    /// Slot `pos` of `table` no longer holds a row.
    fn delete_row(&self, table: &str, pos: u64);

    /// Read back the row at slot `pos`, if live.
    fn get_row(&self, table: &str, pos: u64) -> Result<Option<Row>>;

    /// All live rows of `table` in slot order.
    fn scan_table(&self, table: &str) -> Result<Vec<(u64, Row)>>;

    /// Best-effort page count for one table's on-disk structure, or
    /// `None` when the backend has no page-level representation (the
    /// in-memory backend) or does not know the table. Feeds the
    /// `rdb_tables.pages` system-view column.
    fn table_pages(&self, _table: &str) -> Option<u64> {
        None
    }

    /// Commit a checkpoint. `Ok(Some(report))` means the backend wrote
    /// an incremental checkpoint (the engine skips the full snapshot and
    /// just truncates the WAL); `Ok(None)` means the backend has no
    /// checkpoint mechanism and the engine must write a full snapshot.
    fn checkpoint(&self, catalog: &CheckpointCatalog) -> Result<Option<CheckpointReport>>;

    /// Current storage-layer counters.
    fn metrics(&self) -> StorageMetrics;
}

/// The default backend: tables live only in memory, durability is the
/// WAL plus full-snapshot checkpoints. Every hook is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn is_persistent(&self) -> bool {
        false
    }

    fn read_through(&self) -> bool {
        false
    }

    fn create_table(&self, _table: &str) {}

    fn drop_table(&self, _table: &str) {}

    fn put_row(&self, _table: &str, _pos: u64, _row: &Row) {}

    fn delete_row(&self, _table: &str, _pos: u64) {}

    fn get_row(&self, _table: &str, _pos: u64) -> Result<Option<Row>> {
        Ok(None)
    }

    fn scan_table(&self, _table: &str) -> Result<Vec<(u64, Row)>> {
        Ok(Vec::new())
    }

    fn checkpoint(&self, _catalog: &CheckpointCatalog) -> Result<Option<CheckpointReport>> {
        Ok(None)
    }

    fn metrics(&self) -> StorageMetrics {
        StorageMetrics::default()
    }
}
