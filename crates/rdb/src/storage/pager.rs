//! Slotted-page pager: the fixed-size on-disk page format and the
//! CRC-checked page file underneath the paged storage backend.
//!
//! ## On-disk page format (4096 bytes)
//!
//! ```text
//! offset  size  field
//! 0       4     crc32 (IEEE, over bytes 4..4096)
//! 4       1     kind (0 free, 1 b-tree leaf, 2 b-tree interior, 3 overflow)
//! 5       1     flags (reserved, 0)
//! 6       2     ncells (u16 LE)
//! 8       8     lsn (u64 LE) — store LSN of the write that sealed the page
//! 16      8     next (u64 LE) — interior: rightmost child; overflow: next
//!               page in the chain; leaf: 0
//! 24      4*n   slot directory: per cell, offset u16 LE + length u16 LE
//! ...           free space
//! tail          cells, packed downward from byte 4096 in slot order
//! ```
//!
//! All integers are little-endian. Page id 0 is reserved as the nil
//! pointer; page `i` lives at file offset `i * 4096`. The CRC is computed
//! when a page is sealed for writing and verified on every read, so a
//! torn or bit-rotted page surfaces as a storage error instead of silent
//! corruption.
//!
//! The checkpoint *meta* file (`pages.meta`) is the commit point of the
//! copy-on-write page store: magic, then one `[len][crc][body]` frame
//! holding the generation, the page-allocation state (page count +
//! freelist), and the table catalog (name, columns, B-tree root, slot
//! count, indexed columns) plus trigger SQL. It is written via the same
//! atomic tmp + rename + dir-sync protocol as the full snapshot.

use crate::error::{DbError, Result};
use crate::value::DataType;
use crate::wal::{self, crc32, Reader};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Size of the fixed page header (crc, kind, flags, ncells, lsn, next).
pub const PAGE_HDR: usize = 24;
/// Size of one slot-directory entry (offset u16 + length u16).
pub const SLOT_ENTRY: usize = 4;
/// Magic prefix of the checkpoint meta file.
pub const META_MAGIC: &[u8; 8] = b"XUPPGME1";
/// Page-file name inside a durable database's directory.
pub const DATA_FILE: &str = "pages.bin";
/// Checkpoint meta-file name (the paged store's commit point).
pub const META_FILE: &str = "pages.meta";
/// Temporary meta name; atomically renamed over [`META_FILE`].
pub const META_TMP: &str = "pages.tmp";

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Unallocated / freed.
    Free,
    /// B-tree leaf: cells are `key → row payload` entries.
    Leaf,
    /// B-tree interior: cells are `separator key → child page` entries.
    Interior,
    /// Overflow chunk of a payload too large to inline in a leaf.
    Overflow,
}

impl PageKind {
    fn from_u8(b: u8) -> Option<PageKind> {
        Some(match b {
            0 => PageKind::Free,
            1 => PageKind::Leaf,
            2 => PageKind::Interior,
            3 => PageKind::Overflow,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            PageKind::Free => 0,
            PageKind::Leaf => 1,
            PageKind::Interior => 2,
            PageKind::Overflow => 3,
        }
    }
}

/// One in-memory page image.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("kind", &self.kind())
            .field("ncells", &self.ncells())
            .field("lsn", &self.lsn())
            .field("next", &self.next())
            .finish()
    }
}

impl Page {
    /// A zeroed page of the given kind.
    pub fn new(kind: PageKind) -> Page {
        let mut p = Page {
            buf: Box::new([0u8; PAGE_SIZE]),
        };
        p.buf[4] = kind.as_u8();
        p
    }

    /// Reconstruct a page from raw bytes, verifying length and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(DbError::Storage(format!(
                "page corrupt: {} bytes (want {PAGE_SIZE})",
                bytes.len()
            )));
        }
        let stored = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if crc32(&bytes[4..]) != stored {
            return Err(DbError::Storage("page corrupt: checksum mismatch".into()));
        }
        if PageKind::from_u8(bytes[4]).is_none() {
            return Err(DbError::Storage(format!(
                "page corrupt: unknown kind {}",
                bytes[4]
            )));
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(bytes);
        Ok(Page { buf })
    }

    /// The page's kind byte.
    pub fn kind(&self) -> PageKind {
        PageKind::from_u8(self.buf[4]).expect("validated on construction")
    }

    /// Number of cells in the slot directory.
    pub fn ncells(&self) -> usize {
        u16::from_le_bytes(self.buf[6..8].try_into().unwrap()) as usize
    }

    /// Store LSN stamped when the page was last sealed.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[8..16].try_into().unwrap())
    }

    /// Stamp the store LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.buf[8..16].copy_from_slice(&lsn.to_le_bytes());
    }

    /// The `next` pointer (rightmost child / overflow continuation).
    pub fn next(&self) -> u64 {
        u64::from_le_bytes(self.buf[16..24].try_into().unwrap())
    }

    /// Set the `next` pointer.
    pub fn set_next(&mut self, next: u64) {
        self.buf[16..24].copy_from_slice(&next.to_le_bytes());
    }

    /// Borrow cell `i`'s bytes.
    pub fn cell(&self, i: usize) -> &[u8] {
        let at = PAGE_HDR + i * SLOT_ENTRY;
        let off = u16::from_le_bytes(self.buf[at..at + 2].try_into().unwrap()) as usize;
        let len = u16::from_le_bytes(self.buf[at + 2..at + 4].try_into().unwrap()) as usize;
        &self.buf[off..off + len]
    }

    /// Decode every cell into owned byte vectors, in slot order.
    pub fn cells(&self) -> Vec<Vec<u8>> {
        (0..self.ncells()).map(|i| self.cell(i).to_vec()).collect()
    }

    /// Bytes the given cells would occupy (header + slots + payloads).
    pub fn used_by(cells: &[Vec<u8>]) -> usize {
        PAGE_HDR + cells.iter().map(|c| SLOT_ENTRY + c.len()).sum::<usize>()
    }

    /// Replace the page's cell content: rewrite the slot directory and
    /// pack the cells downward from the page tail in slot order. Returns
    /// `false` (leaving the page untouched) if the cells do not fit.
    pub fn set_cells(&mut self, cells: &[Vec<u8>]) -> bool {
        if Page::used_by(cells) > PAGE_SIZE || cells.len() > u16::MAX as usize {
            return false;
        }
        // Wipe the old directory + cell area so sealed bytes are a pure
        // function of the logical content (golden-test determinism).
        self.buf[PAGE_HDR..].fill(0);
        self.buf[6..8].copy_from_slice(&(cells.len() as u16).to_le_bytes());
        let mut tail = PAGE_SIZE;
        for (i, cell) in cells.iter().enumerate() {
            tail -= cell.len();
            self.buf[tail..tail + cell.len()].copy_from_slice(cell);
            let at = PAGE_HDR + i * SLOT_ENTRY;
            self.buf[at..at + 2].copy_from_slice(&(tail as u16).to_le_bytes());
            self.buf[at + 2..at + 4].copy_from_slice(&(cell.len() as u16).to_le_bytes());
        }
        true
    }

    /// Compute and store the header checksum; call before writing out.
    pub fn seal(&mut self) {
        let crc = crc32(&self.buf[4..]);
        self.buf[0..4].copy_from_slice(&crc.to_le_bytes());
    }

    /// The raw page bytes (valid after [`Page::seal`]).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }
}

/// The page file: fixed-size CRC-checked pages addressed by id.
#[derive(Debug)]
pub struct Pager {
    file: fs::File,
}

fn io_err(ctx: &str, e: &std::io::Error) -> DbError {
    DbError::Storage(format!("{ctx}: {e}"))
}

impl Pager {
    /// Open (or create) the page file at `path`.
    pub fn open(path: &Path) -> Result<Pager> {
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open page file", &e))?;
        Ok(Pager { file })
    }

    /// Read and verify page `id`.
    pub fn read_page(&mut self, id: u64) -> Result<Page> {
        let mut bytes = [0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek page", &e))?;
        self.file
            .read_exact(&mut bytes)
            .map_err(|e| io_err(&format!("read page {id}"), &e))?;
        Page::from_bytes(&bytes)
    }

    /// Seal and write page `id` (no fsync; see [`Pager::sync`]).
    pub fn write_page(&mut self, id: u64, page: &mut Page) -> Result<()> {
        page.seal();
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek page", &e))?;
        self.file
            .write_all(page.as_bytes())
            .map_err(|e| io_err(&format!("write page {id}"), &e))?;
        Ok(())
    }

    /// Make every page write issued so far durable.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| io_err("sync page file", &e))
    }

    /// Reset the file to empty (fresh store with no checkpoint meta).
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| io_err("reset page file", &e))
    }
}

// ----------------------------------------------------------------------
// checkpoint meta codec
// ----------------------------------------------------------------------

/// Per-table entry in the checkpoint meta: everything needed to rebuild
/// the in-memory [`crate::Table`] from pages at open.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Lower-cased catalog key.
    pub key: String,
    /// Schema name as created (case preserved).
    pub name: String,
    /// Column name/type pairs in order.
    pub columns: Vec<(String, DataType)>,
    /// Root page of the table's B-tree (0 = empty).
    pub root: u64,
    /// Slot-vector length, trailing tombstones included, so WAL replay
    /// appends rows at the positions the log recorded.
    pub slots_len: u64,
    /// Column indices carrying a hash index (rebuilt at open).
    pub indexed: Vec<u32>,
    /// Column indices carrying an ordered index (rebuilt at open).
    pub ordered: Vec<u32>,
    /// Optimizer statistics captured at checkpoint time, if the table
    /// has been `ANALYZE`d.
    pub stats: Option<crate::stats::TableStatistics>,
}

/// Decoded contents of the checkpoint meta file: the commit point of the
/// copy-on-write page store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Checkpoint generation (same protocol as the snapshot/WAL pair).
    pub generation: u64,
    /// The engine's id counter at checkpoint time.
    pub next_id: i64,
    /// Highest allocated page id.
    pub page_count: u64,
    /// Store LSN at checkpoint time.
    pub lsn: u64,
    /// Free page ids available for reuse.
    pub free: Vec<u64>,
    /// Table catalog, sorted by key.
    pub tables: Vec<TableMeta>,
    /// Triggers in registration order, as `CREATE TRIGGER` SQL.
    pub triggers: Vec<String>,
}

/// Encode a checkpoint meta file: magic, then one `[len][crc][body]`
/// frame (the same framing discipline as the WAL and snapshot codecs).
pub fn encode_meta(meta: &StoreMeta) -> Vec<u8> {
    let mut body = Vec::new();
    wal::put_u64(&mut body, meta.generation);
    wal::put_i64(&mut body, meta.next_id);
    wal::put_u64(&mut body, meta.page_count);
    wal::put_u64(&mut body, meta.lsn);
    wal::put_u32(&mut body, meta.free.len() as u32);
    for id in &meta.free {
        wal::put_u64(&mut body, *id);
    }
    wal::put_u32(&mut body, meta.tables.len() as u32);
    for t in &meta.tables {
        wal::put_str(&mut body, &t.key);
        wal::put_str(&mut body, &t.name);
        wal::put_u32(&mut body, t.columns.len() as u32);
        for (name, ty) in &t.columns {
            wal::put_str(&mut body, name);
            wal::put_data_type(&mut body, *ty);
        }
        wal::put_u64(&mut body, t.root);
        wal::put_u64(&mut body, t.slots_len);
        wal::put_u32(&mut body, t.indexed.len() as u32);
        for ci in &t.indexed {
            wal::put_u32(&mut body, *ci);
        }
        wal::put_u32(&mut body, t.ordered.len() as u32);
        for ci in &t.ordered {
            wal::put_u32(&mut body, *ci);
        }
        crate::stats::put_stats(&mut body, t.stats.as_ref());
    }
    wal::put_u32(&mut body, meta.triggers.len() as u32);
    for sql in &meta.triggers {
        wal::put_str(&mut body, sql);
    }
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(META_MAGIC);
    wal::put_u32(&mut out, body.len() as u32);
    wal::put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode a checkpoint meta file. The meta is written atomically (tmp +
/// rename), so any corruption — truncation at *any* offset included —
/// is an error, never a partial parse.
pub fn decode_meta(bytes: &[u8]) -> Result<StoreMeta> {
    let corrupt = |what: &str| DbError::Storage(format!("page meta corrupt: {what}"));
    if bytes.len() < 16 || &bytes[..8] != META_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let body = bytes
        .get(16..16 + len)
        .ok_or_else(|| corrupt("short body"))?;
    if bytes.len() != 16 + len {
        return Err(corrupt("trailing bytes"));
    }
    if crc32(body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let parse = || corrupt("truncated field");
    let generation = r.u64().ok_or_else(parse)?;
    let next_id = r.i64().ok_or_else(parse)?;
    let page_count = r.u64().ok_or_else(parse)?;
    let lsn = r.u64().ok_or_else(parse)?;
    let nfree = r.u32().ok_or_else(parse)? as usize;
    let mut free = Vec::with_capacity(nfree.min(1 << 20));
    for _ in 0..nfree {
        free.push(r.u64().ok_or_else(parse)?);
    }
    let ntables = r.u32().ok_or_else(parse)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let key = r.str().ok_or_else(parse)?;
        let name = r.str().ok_or_else(parse)?;
        let ncols = r.u32().ok_or_else(parse)? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1024));
        for _ in 0..ncols {
            let cname = r.str().ok_or_else(parse)?;
            let ty = match r.u8().ok_or_else(parse)? {
                0 => DataType::Integer,
                1 => DataType::Text,
                2 => DataType::Boolean,
                _ => return Err(corrupt("bad column type tag")),
            };
            columns.push((cname, ty));
        }
        let root = r.u64().ok_or_else(parse)?;
        let slots_len = r.u64().ok_or_else(parse)?;
        let nidx = r.u32().ok_or_else(parse)? as usize;
        let mut indexed = Vec::with_capacity(nidx.min(1024));
        for _ in 0..nidx {
            indexed.push(r.u32().ok_or_else(parse)?);
        }
        let nord = r.u32().ok_or_else(parse)? as usize;
        let mut ordered = Vec::with_capacity(nord.min(1024));
        for _ in 0..nord {
            ordered.push(r.u32().ok_or_else(parse)?);
        }
        let stats =
            crate::stats::read_stats(&mut r).ok_or_else(|| corrupt("bad statistics block"))?;
        tables.push(TableMeta {
            key,
            name,
            columns,
            root,
            slots_len,
            indexed,
            ordered,
            stats,
        });
    }
    let ntriggers = r.u32().ok_or_else(parse)? as usize;
    let mut triggers = Vec::with_capacity(ntriggers.min(1024));
    for _ in 0..ntriggers {
        triggers.push(r.str().ok_or_else(parse)?);
    }
    if !r.done() {
        return Err(corrupt("trailing body bytes"));
    }
    Ok(StoreMeta {
        generation,
        next_id,
        page_count,
        lsn,
        free,
        tables,
        triggers,
    })
}
