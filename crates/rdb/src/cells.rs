//! Thread-safe counter cells.
//!
//! The engine's bookkeeping (statistics, WAL offsets, fault countdowns)
//! historically lived in `Cell`s so `&self` paths could update them while
//! disjoint `&mut` borrows were live. The concurrency subsystem
//! (`crate::mvcc`, `crate::session`) shares one [`crate::Database`]
//! across threads, so these cells are now thin atomic wrappers keeping
//! the `get`/`set` call shape the engine was written against. All loads
//! and stores are `Relaxed`: each cell is an independent monotonic
//! counter or flag, never used to publish other memory — cross-thread
//! ordering of *data* is provided by the `RwLock`/`Mutex` that guards
//! the `Database` itself.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// A `Cell<u64>` replacement backed by an `AtomicU64`.
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicU64);

impl Counter {
    pub fn new(v: u64) -> Self {
        Counter(AtomicU64::new(v))
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, by: u64) -> u64 {
        self.0.fetch_add(by, Ordering::Relaxed) + by
    }
}

/// A `Cell<i64>` replacement backed by an `AtomicI64`.
#[derive(Debug, Default)]
pub(crate) struct IdCell(AtomicI64);

impl IdCell {
    pub fn new(v: i64) -> Self {
        IdCell(AtomicI64::new(v))
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A `Cell<bool>` replacement backed by an `AtomicBool`.
#[derive(Debug, Default)]
pub(crate) struct FlagCell(AtomicBool);

impl FlagCell {
    pub fn new(v: bool) -> Self {
        FlagCell(AtomicBool::new(v))
    }

    #[inline]
    pub fn get(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set(&self, v: bool) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A `Cell<Duration>` replacement storing whole nanoseconds.
#[derive(Debug, Default)]
pub(crate) struct DurCell(AtomicU64);

impl DurCell {
    #[inline]
    pub fn get(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn set(&self, d: std::time::Duration) {
        self.0.store(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A `Cell<Option<Duration>>` replacement; `u64::MAX` encodes `None`
/// (a threshold of ~584 years disables the slow-query log anyway).
#[derive(Debug)]
pub(crate) struct OptDurCell(AtomicU64);

impl Default for OptDurCell {
    fn default() -> Self {
        OptDurCell(AtomicU64::new(u64::MAX))
    }
}

impl OptDurCell {
    #[inline]
    pub fn get(&self) -> Option<std::time::Duration> {
        match self.0.load(Ordering::Relaxed) {
            u64::MAX => None,
            ns => Some(std::time::Duration::from_nanos(ns)),
        }
    }

    #[inline]
    pub fn set(&self, d: Option<std::time::Duration>) {
        let ns = d.map_or(u64::MAX, |d| (d.as_nanos() as u64).min(u64::MAX - 1));
        self.0.store(ns, Ordering::Relaxed);
    }
}
