//! SQL tokenizer.
//!
//! Keywords are not distinguished at the token level — every bare word is
//! an [`Tok::Ident`], and the parser matches keywords case-insensitively in
//! context. This lets the paper's schemas use `Order` as a table name while
//! `ORDER BY` still parses (the parser disambiguates with one token of
//! lookahead).

use crate::error::{DbError, Result};

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare word: identifier or keyword (parser decides).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (with `''` escape decoded).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `?` — positional parameter placeholder.
    Question,
    /// `$n` — explicit 1-based parameter placeholder.
    Dollar(usize),
}

impl Tok {
    /// Case-insensitive keyword test for `Ident` tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl std::fmt::Display for Tok {
    /// Render the token back as SQL text (string literals re-escaped).
    /// Used for error messages that quote the statement being executed.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Semi => write!(f, ";"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Question => write!(f, "?"),
            Tok::Dollar(n) => write!(f, "${n}"),
        }
    }
}

/// Tokenize SQL text. `--` line comments and `/* … */` block comments are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Tok>> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(DbError::SqlParse("unterminated block comment".into()));
                }
                i += 2;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            b';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Tok::Percent);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Ne);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            b'?' => {
                out.push(Tok::Question);
                i += 1;
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(DbError::SqlParse(format!(
                        "expected digits after `$` at byte {i}"
                    )));
                }
                let text = std::str::from_utf8(&b[start..j]).unwrap();
                let n: usize = text
                    .parse()
                    .map_err(|_| DbError::SqlParse(format!("parameter index overflow: ${text}")))?;
                out.push(Tok::Dollar(n));
                i = j;
            }
            b'\'' => {
                i += 1;
                // Collect raw bytes and decode as UTF-8 at the end —
                // byte-as-char would Latin-1-mangle multi-byte sequences.
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match b.get(i) {
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            raw.push(b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            raw.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(DbError::SqlParse("unterminated string literal".into()))
                        }
                    }
                }
                let s = String::from_utf8(raw)
                    .map_err(|_| DbError::SqlParse("string literal is not UTF-8".into()))?;
                out.push(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let n: i64 = text
                    .parse()
                    .map_err(|_| DbError::SqlParse(format!("integer overflow: {text}")))?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(
                    std::str::from_utf8(&b[start..i]).unwrap().to_string(),
                ));
            }
            other => {
                return Err(DbError::SqlParse(format!(
                    "unexpected character `{}` at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT id, name FROM t WHERE x >= 10;").unwrap();
        assert_eq!(toks[0], Tok::Ident("SELECT".into()));
        assert!(toks.contains(&Tok::Ge));
        assert!(toks.contains(&Tok::Int(10)));
        assert_eq!(*toks.last().unwrap(), Tok::Semi);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex("'John''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("John's".into())]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT 1 -- comment\n, 2 /* block\nspanning */ , 3").unwrap();
        let ints: Vec<_> = toks.iter().filter(|t| matches!(t, Tok::Int(_))).collect();
        assert_eq!(ints.len(), 3);
    }

    #[test]
    fn ne_variants() {
        assert_eq!(lex("<>").unwrap(), vec![Tok::Ne]);
        assert_eq!(lex("!=").unwrap(), vec![Tok::Ne]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        let toks = lex("SELECT * FROM t WHERE a = ? AND b = $2").unwrap();
        assert!(toks.contains(&Tok::Question));
        assert!(toks.contains(&Tok::Dollar(2)));
        assert!(lex("$x").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = lex("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[0].is_kw("FROM"));
    }
}
