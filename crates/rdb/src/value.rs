//! Runtime values and column types for the relational engine.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine — the set needed by the
/// paper's shredded schemas (integer ids, string/PCDATA payloads, boolean
/// presence flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER` / `INT` / `BIGINT`).
    Integer,
    /// UTF-8 string (`VARCHAR(n)` / `TEXT` / `CHAR(n)`; lengths are parsed
    /// and ignored, as the engine does not enforce them).
    Text,
    /// Boolean (`BOOLEAN`), used for inlined-element presence flags and ASR
    /// delete marks.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Boolean => write!(f, "BOOLEAN"),
        }
    }
}

/// A runtime value. SQL three-valued logic is implemented at the expression
/// layer; `Null` compares as *unknown* there, while [`Value::sort_cmp`]
/// provides the total order used by `ORDER BY` and index keys
/// (NULLs first, matching the sort the Sorted Outer Union relies on to put
/// parent tuples ahead of their children).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// `true` if this is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type this value inhabits, if non-null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Integer),
            Value::Str(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Boolean),
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown), or when
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting and index keys: NULL < Bool < Int < Str;
    /// within a type, the natural order.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Rendering used by result printing and error messages.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A [`Value`] wrapper whose `Ord` is [`Value::sort_cmp`]'s total order
/// (NULL < Bool < Int < Str). This is the key type of ordered secondary
/// indexes (`BTreeMap<OrdValue, Vec<usize>>`), where a total order over
/// heterogeneous keys is required.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrdValue(pub Value);

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.sort_cmp(&other.0)
    }
}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<Value> for OrdValue {
    fn from(v: Value) -> Self {
        OrdValue(v)
    }
}

/// A tuple (row) of values.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn sort_cmp_puts_null_first() {
        let mut vals = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(Value::sort_cmp);
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn cross_type_sort_is_total() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Bool(true),
            Value::Int(5),
            Value::Null,
        ];
        vals.sort_by(Value::sort_cmp);
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[3], Value::Str("a".into()));
    }

    #[test]
    fn hash_eq_consistent() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Value::Int(7), "x");
        assert_eq!(m.get(&Value::Int(7)), Some(&"x"));
        m.insert(Value::Str("k".into()), "y");
        assert_eq!(m.get(&Value::Str("k".into())), Some(&"y"));
    }

    #[test]
    fn ord_value_matches_sort_cmp() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<OrdValue, usize> = BTreeMap::new();
        m.insert(OrdValue(Value::Int(2)), 0);
        m.insert(OrdValue(Value::Null), 1);
        m.insert(OrdValue(Value::Str("a".into())), 2);
        m.insert(OrdValue(Value::Int(1)), 3);
        let keys: Vec<&OrdValue> = m.keys().collect();
        assert_eq!(keys[0].0, Value::Null);
        assert_eq!(keys[1].0, Value::Int(1));
        assert_eq!(keys[2].0, Value::Int(2));
        assert_eq!(keys[3].0, Value::Str("a".into()));
    }

    #[test]
    fn renders() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::Bool(false).render(), "FALSE");
    }
}
