//! Per-table statistics feeding the cost-based planner.
//!
//! `ANALYZE` performs a full scan and builds exact statistics: row count,
//! per-column distinct count, null count, min/max, and an equi-depth
//! histogram of at most [`HISTOGRAM_BUCKETS`] buckets. Between analyzes
//! the *counters* (row count, null counts, per-bucket counts) are
//! maintained incrementally by the table's slot mutations — forward DML,
//! rollback undo, and WAL replay all funnel through the same six methods,
//! so the counters are deterministic across recovery paths and exactly
//! reversible under rollback. The *shape* of the statistics (distinct
//! count, min/max, bucket boundaries) is frozen until the next `ANALYZE`;
//! values outside the analyzed range are clamped into the edge buckets.
//!
//! Statistics persist through checkpoints on both backends (the full
//! snapshot and the paged store's meta file) so a restart does not lose
//! them, and `ANALYZE` itself is WAL-logged as DDL so replay rebuilds
//! identical statistics.

use crate::value::{Row, Value};
use crate::wal::{put_u32, put_u64, put_value, Reader};

/// Maximum number of equi-depth histogram buckets per column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// One equi-depth histogram bucket: all analyzed non-null values `v` with
/// `prev.upper < v <= upper` (the first bucket is lower-bounded by the
/// column minimum, inclusively).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive upper boundary of the bucket.
    pub upper: Value,
    /// Number of rows currently attributed to the bucket.
    pub count: u64,
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Distinct non-null values at the last `ANALYZE` (frozen between
    /// analyzes).
    pub distinct: u64,
    /// Current number of NULL cells (maintained incrementally).
    pub null_count: u64,
    /// Smallest non-null value at the last `ANALYZE`.
    pub min: Option<Value>,
    /// Largest non-null value at the last `ANALYZE`.
    pub max: Option<Value>,
    /// Equi-depth histogram over non-null values; counts are maintained
    /// incrementally, boundaries are frozen between analyzes.
    pub buckets: Vec<Bucket>,
}

/// Statistics for one table, built by `ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Current live-row count (maintained incrementally).
    pub row_count: u64,
    /// Per-column statistics, in schema column order.
    pub columns: Vec<ColumnStatistics>,
}

impl ColumnStatistics {
    fn build(mut values: Vec<&Value>) -> ColumnStatistics {
        let null_count = values.iter().filter(|v| v.is_null()).count() as u64;
        values.retain(|v| !v.is_null());
        values.sort_by(|a, b| a.sort_cmp(b));
        let mut distinct = 0u64;
        for (i, v) in values.iter().enumerate() {
            if i == 0 || values[i - 1] != *v {
                distinct += 1;
            }
        }
        let min = values.first().map(|v| (*v).clone());
        let max = values.last().map(|v| (*v).clone());
        let mut buckets = Vec::new();
        if !values.is_empty() {
            let n = values.len();
            let nbuckets = HISTOGRAM_BUCKETS.min(n);
            // Equi-depth boundaries over the sorted values. A boundary
            // value repeated across the split point would make bucket
            // attribution ambiguous, so each bucket's upper absorbs any
            // run of equal values crossing it.
            let mut start = 0usize;
            for b in 0..nbuckets {
                if start >= n {
                    break;
                }
                let mut end = ((b + 1) * n).div_ceil(nbuckets).max(start + 1);
                while end < n && values[end] == values[end - 1] {
                    end += 1;
                }
                buckets.push(Bucket {
                    upper: values[end - 1].clone(),
                    count: (end - start) as u64,
                });
                start = end;
            }
        }
        ColumnStatistics {
            distinct,
            null_count,
            min,
            max,
            buckets,
        }
    }

    /// Index of the bucket a value is attributed to: the first bucket
    /// whose upper bound is `>= v`, clamped to the last bucket so values
    /// outside the analyzed range stay accounted for.
    fn bucket_for(&self, v: &Value) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let at = self
            .buckets
            .partition_point(|b| b.upper.sort_cmp(v) == std::cmp::Ordering::Less);
        Some(at.min(self.buckets.len() - 1))
    }

    fn non_null(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Estimated rows matching `column = v`.
    pub fn est_eq_rows(&self, v: &Value) -> u64 {
        if v.is_null() {
            // `= NULL` never matches under three-valued logic.
            return 0;
        }
        let non_null = self.non_null();
        if self.distinct == 0 || non_null == 0 {
            return 0;
        }
        // Uniformity within the column: every distinct value is assumed
        // equally frequent, but never more frequent than its bucket.
        let uniform = non_null.div_ceil(self.distinct);
        match self.bucket_for(v) {
            Some(b) => uniform.min(self.buckets[b].count.max(1)),
            None => uniform,
        }
    }

    /// Estimated rows matching a (half-)bounded range over the column.
    /// Bounds are `(value, inclusive)`; `None` means unbounded on that
    /// side. Buckets fully inside the range contribute their whole count,
    /// boundary buckets contribute half.
    pub fn est_range_rows(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> u64 {
        use std::cmp::Ordering::*;
        if self.buckets.is_empty() {
            return 0;
        }
        let mut est = 0u64;
        let mut lo_bound = self.min.clone().unwrap_or(Value::Null);
        for b in &self.buckets {
            // Bucket covers (lo_bound, b.upper] — approximate overlap.
            let below = match lower {
                Some((lv, _)) => b.upper.sort_cmp(lv) == Less,
                None => false,
            };
            let above = match upper {
                Some((uv, incl)) => {
                    let c = lo_bound.sort_cmp(uv);
                    c == Greater || (!incl && c == Equal)
                }
                None => false,
            };
            if !below && !above {
                let lo_inside = match lower {
                    Some((lv, _)) => lo_bound.sort_cmp(lv) != Less,
                    None => true,
                };
                let hi_inside = match upper {
                    Some((uv, incl)) => match b.upper.sort_cmp(uv) {
                        Less => true,
                        Equal => incl,
                        Greater => false,
                    },
                    None => true,
                };
                est += if lo_inside && hi_inside {
                    b.count
                } else {
                    // Partial overlap: attribute half the bucket.
                    b.count.div_ceil(2)
                };
            }
            lo_bound = b.upper.clone();
        }
        est
    }
}

impl TableStatistics {
    /// Build exact statistics from a full scan of the live rows
    /// (the `ANALYZE` path).
    pub fn build<'a>(rows: impl Iterator<Item = &'a Row> + Clone, ncols: usize) -> TableStatistics {
        let mut row_count = 0u64;
        for _ in rows.clone() {
            row_count += 1;
        }
        let mut columns = Vec::with_capacity(ncols);
        for ci in 0..ncols {
            let values: Vec<&Value> = rows.clone().map(|r| &r[ci]).collect();
            columns.push(ColumnStatistics::build(values));
        }
        TableStatistics { row_count, columns }
    }

    /// A row was inserted (or restored by rollback/replay).
    pub fn note_insert(&mut self, row: &Row) {
        self.row_count = self.row_count.saturating_add(1);
        for (ci, v) in row.iter().enumerate() {
            let Some(col) = self.columns.get_mut(ci) else {
                break;
            };
            if v.is_null() {
                col.null_count = col.null_count.saturating_add(1);
            } else if let Some(b) = col.bucket_for(v) {
                col.buckets[b].count = col.buckets[b].count.saturating_add(1);
            }
        }
    }

    /// A row was deleted (or an insert undone). Exact inverse of
    /// [`TableStatistics::note_insert`], so rollback retraces the same
    /// counter path.
    pub fn note_delete(&mut self, row: &Row) {
        self.row_count = self.row_count.saturating_sub(1);
        for (ci, v) in row.iter().enumerate() {
            let Some(col) = self.columns.get_mut(ci) else {
                break;
            };
            if v.is_null() {
                col.null_count = col.null_count.saturating_sub(1);
            } else if let Some(b) = col.bucket_for(v) {
                col.buckets[b].count = col.buckets[b].count.saturating_sub(1);
            }
        }
    }

    /// One cell changed from `old` to `new` (update or its undo).
    pub fn note_update(&mut self, ci: usize, old: &Value, new: &Value) {
        let Some(col) = self.columns.get_mut(ci) else {
            return;
        };
        if old.is_null() {
            col.null_count = col.null_count.saturating_sub(1);
        } else if let Some(b) = col.bucket_for(old) {
            col.buckets[b].count = col.buckets[b].count.saturating_sub(1);
        }
        if new.is_null() {
            col.null_count = col.null_count.saturating_add(1);
        } else if let Some(b) = col.bucket_for(new) {
            col.buckets[b].count = col.buckets[b].count.saturating_add(1);
        }
    }
}

// ----------------------------------------------------------------------
// codec — shared by the snapshot file and the paged store's meta file
// ----------------------------------------------------------------------

pub(crate) fn put_stats(out: &mut Vec<u8>, stats: Option<&TableStatistics>) {
    let Some(s) = stats else {
        out.push(0);
        return;
    };
    out.push(1);
    put_u64(out, s.row_count);
    put_u32(out, s.columns.len() as u32);
    for c in &s.columns {
        put_u64(out, c.distinct);
        put_u64(out, c.null_count);
        for bound in [&c.min, &c.max] {
            match bound {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_value(out, v);
                }
            }
        }
        put_u32(out, c.buckets.len() as u32);
        for b in &c.buckets {
            put_value(out, &b.upper);
            put_u64(out, b.count);
        }
    }
}

pub(crate) fn read_stats(r: &mut Reader<'_>) -> Option<Option<TableStatistics>> {
    match r.u8()? {
        0 => Some(None),
        1 => {
            let row_count = r.u64()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                let distinct = r.u64()?;
                let null_count = r.u64()?;
                let mut bounds = [None, None];
                for slot in &mut bounds {
                    *slot = match r.u8()? {
                        0 => None,
                        1 => Some(r.value()?),
                        _ => return None,
                    };
                }
                let [min, max] = bounds;
                let nbuckets = r.u32()? as usize;
                let mut buckets = Vec::with_capacity(nbuckets.min(1 << 16));
                for _ in 0..nbuckets {
                    let upper = r.value()?;
                    let count = r.u64()?;
                    buckets.push(Bucket { upper, count });
                }
                columns.push(ColumnStatistics {
                    distinct,
                    null_count,
                    min,
                    max,
                    buckets,
                });
            }
            Some(Some(TableStatistics { row_count, columns }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(vals: &[i64]) -> Vec<Row> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn build_counts_distinct_nulls_and_bounds() {
        let mut rows = int_rows(&[5, 1, 3, 3, 9]);
        rows.push(vec![Value::Null]);
        let s = TableStatistics::build(rows.iter(), 1);
        assert_eq!(s.row_count, 6);
        let c = &s.columns[0];
        assert_eq!(c.distinct, 4);
        assert_eq!(c.null_count, 1);
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(9)));
        assert_eq!(c.non_null(), 5);
    }

    #[test]
    fn histogram_is_equi_depth() {
        let rows = int_rows(&(0..640).collect::<Vec<_>>());
        let s = TableStatistics::build(rows.iter(), 1);
        let c = &s.columns[0];
        assert_eq!(c.buckets.len(), HISTOGRAM_BUCKETS);
        assert!(c.buckets.iter().all(|b| b.count == 20));
        assert_eq!(c.buckets.last().unwrap().upper, Value::Int(639));
    }

    #[test]
    fn range_estimate_tracks_selectivity() {
        let rows = int_rows(&(0..1000).collect::<Vec<_>>());
        let s = TableStatistics::build(rows.iter(), 1);
        let c = &s.columns[0];
        let lo = Value::Int(100);
        let hi = Value::Int(199);
        let est = c.est_range_rows(Some((&lo, true)), Some((&hi, true)));
        assert!(
            (50..=200).contains(&est),
            "10% range estimated {est} of 1000"
        );
        let all = c.est_range_rows(None, None);
        assert_eq!(all, 1000);
    }

    #[test]
    fn eq_estimate_uses_distinct() {
        let rows = int_rows(&(0..100).map(|i| i % 10).collect::<Vec<_>>());
        let s = TableStatistics::build(rows.iter(), 1);
        assert_eq!(s.columns[0].est_eq_rows(&Value::Int(3)), 10);
        assert_eq!(s.columns[0].est_eq_rows(&Value::Null), 0);
    }

    #[test]
    fn incremental_updates_are_reversible() {
        let rows = int_rows(&(0..50).collect::<Vec<_>>());
        let mut s = TableStatistics::build(rows.iter(), 1);
        let before = s.clone();
        let row = vec![Value::Int(25)];
        s.note_insert(&row);
        assert_eq!(s.row_count, 51);
        s.note_update(0, &Value::Int(25), &Value::Null);
        s.note_update(0, &Value::Null, &Value::Int(25));
        s.note_delete(&row);
        assert_eq!(s, before);
    }

    #[test]
    fn out_of_range_values_clamp_into_edge_buckets() {
        let rows = int_rows(&(0..64).collect::<Vec<_>>());
        let mut s = TableStatistics::build(rows.iter(), 1);
        s.note_insert(&vec![Value::Int(1_000_000)]);
        s.note_insert(&vec![Value::Int(-1_000_000)]);
        assert_eq!(s.columns[0].non_null(), 66);
        s.note_delete(&vec![Value::Int(1_000_000)]);
        s.note_delete(&vec![Value::Int(-1_000_000)]);
        assert_eq!(s.columns[0].non_null(), 64);
    }

    #[test]
    fn stats_codec_roundtrips() {
        let rows = int_rows(&[4, 8, 15, 16, 23, 42]);
        let s = TableStatistics::build(rows.iter(), 1);
        let mut out = Vec::new();
        put_stats(&mut out, Some(&s));
        put_stats(&mut out, None);
        let mut r = Reader::new(&out);
        assert_eq!(read_stats(&mut r), Some(Some(s)));
        assert_eq!(read_stats(&mut r), Some(None));
        assert!(r.done());
    }
}
