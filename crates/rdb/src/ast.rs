//! Abstract syntax for the SQL subset the engine executes.
//!
//! The subset is exactly what the paper's translation layer emits: DDL
//! (tables, indexes, AFTER-DELETE/INSERT triggers), DML
//! (`INSERT … VALUES`/`INSERT … SELECT`, `DELETE`, `UPDATE`), and queries
//! with multi-way joins, `WITH` common table expressions, `UNION ALL`,
//! `ORDER BY`, uncorrelated `IN`/`NOT IN` subqueries, `EXISTS`, and the
//! aggregates needed by the id-remapping heuristics (`MIN`/`MAX`/`COUNT`).

use crate::value::{DataType, Value};

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

/// Trigger firing granularity (paper Section 6.1.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerGranularity {
    /// `FOR EACH ROW` — fired per deleted tuple with `OLD` bound.
    Row,
    /// `FOR EACH STATEMENT` — fired once per statement that affected rows.
    Statement,
}

/// Trigger event. The paper's strategies need `AFTER DELETE`; `AFTER
/// INSERT` is supported for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerEvent {
    /// `AFTER DELETE`
    Delete,
    /// `AFTER INSERT`
    Insert,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE [IF NOT EXISTS] name (col type, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Suppress the duplicate-table error.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the missing-table error.
        if_exists: bool,
    },
    /// `CREATE INDEX name ON table (column) [USING ORDERED | USING HASH]`
    CreateIndex {
        /// Index name (bookkeeping only).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// `USING ORDERED` — an ordered index supporting range and
        /// prefix seeks (default is a hash index).
        ordered: bool,
    },
    /// `ANALYZE [table]` — rebuild planner statistics (row counts,
    /// distinct counts, min/max, equi-depth histograms) for one table or
    /// every table. DDL-like: it is WAL-logged as SQL text and bumps the
    /// schema epoch so cached plans replan against the new statistics.
    Analyze {
        /// Table to analyze; `None` analyzes all tables.
        table: Option<String>,
    },
    /// `CREATE TRIGGER name AFTER DELETE ON table FOR EACH ROW BEGIN … END`
    CreateTrigger {
        /// Trigger name.
        name: String,
        /// Firing event.
        event: TriggerEvent,
        /// Table the trigger is attached to.
        table: String,
        /// Row- or statement-level firing.
        granularity: TriggerGranularity,
        /// Body statements executed on firing.
        body: Vec<Stmt>,
    },
    /// `DROP TRIGGER name`
    DropTrigger {
        /// Trigger name.
        name: String,
    },
    /// `INSERT INTO table [(cols)] VALUES (…)[, (…)]` or `INSERT INTO table [(cols)] SELECT …`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, … [WHERE expr]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A query.
    Select(Box<SelectStmt>),
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — commit the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK] [TO [SAVEPOINT] name]` — roll the
    /// open transaction back entirely, or to a named savepoint.
    Rollback {
        /// Savepoint to roll back to; `None` rolls back the whole
        /// transaction.
        to_savepoint: Option<String>,
    },
    /// `SAVEPOINT name` — mark a partial-rollback point.
    Savepoint {
        /// Savepoint name.
        name: String,
    },
    /// `CHECKPOINT` — snapshot a durable database and truncate its WAL
    /// (see `crate::wal`). Rejected inside explicit transactions and
    /// trigger bodies, and on non-durable databases.
    Checkpoint,
    /// `EXPLAIN [ANALYZE] stmt` — compile the inner statement into a
    /// physical plan and return the rendered operator tree (one output
    /// row per line). Plain `EXPLAIN` does not execute; `EXPLAIN
    /// ANALYZE` executes the statement (side effects included) and
    /// annotates each operator with actual rows, loops, and elapsed
    /// time next to the planner's estimates.
    Explain {
        /// Execute and annotate with actuals (`EXPLAIN ANALYZE`).
        analyze: bool,
        /// The statement being explained.
        stmt: Box<Stmt>,
    },
}

impl Stmt {
    /// Whether this is a transaction-control statement (`BEGIN`,
    /// `COMMIT`, `ROLLBACK`, `SAVEPOINT`). These manage the undo log
    /// rather than run under it, and are rejected inside trigger bodies.
    pub fn is_txn_control(&self) -> bool {
        matches!(
            self,
            Stmt::Begin | Stmt::Commit | Stmt::Rollback { .. } | Stmt::Savepoint { .. }
        )
    }
}

/// Row source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal tuples.
    Values(Vec<Vec<Expr>>),
    /// `INSERT … SELECT`.
    Select(Box<SelectStmt>),
}

/// A full query: optional CTEs, a `UNION ALL` chain of cores, ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `WITH name(cols) AS (core), …` — each CTE sees the previous ones.
    pub ctes: Vec<Cte>,
    /// One or more cores combined with `UNION ALL`.
    pub body: Vec<SelectCore>,
    /// Sort keys over the output columns.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional explicit output column names.
    pub columns: Option<Vec<String>>,
    /// The CTE body (may itself be a UNION ALL chain, no nested WITH).
    pub body: Vec<SelectCore>,
}

/// A single `SELECT … FROM … WHERE …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// `SELECT DISTINCT` — deduplicate output rows.
    pub distinct: bool,
    /// Projected items.
    pub projections: Vec<SelectItem>,
    /// Joined tables (comma syntax; inner joins expressed in `WHERE`).
    pub from: Vec<TableRef>,
    /// Filter / join predicates.
    pub filter: Option<Expr>,
}

/// One projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Output name override.
        alias: Option<String>,
    },
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or CTE name.
    pub name: String,
    /// Binding alias (defaults to the name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds to in the query's namespace.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Output column name or 1-based position.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Whether this operator is a comparison yielding a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Aggregate functions (evaluated over the whole core; the subset has no
/// `GROUP BY` because the paper's generated SQL never needs one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `SUM(expr)`
    Sum,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A parameter placeholder (`?` or `$n`), 0-based. Bound to a value at
    /// execution time by [`crate::engine::Database::execute_prepared`].
    Param(usize),
    /// A column reference, optionally qualified by a table binding.
    Column {
        /// Qualifier (`t` in `t.c`), if any.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` — SQL pattern match with `%` (any
    /// run) and `_` (any single character) wildcards. The pattern is a
    /// string literal, fixed at parse time, which lets the planner turn
    /// a non-wildcard prefix into an ordered-index range seek.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern text (unescaped string literal).
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)` — uncorrelated.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (single output column).
        query: Box<SelectStmt>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)` — uncorrelated.
    Exists {
        /// The subquery.
        query: Box<SelectStmt>,
        /// `NOT EXISTS` when true.
        negated: bool,
    },
    /// A scalar subquery returning one row, one column.
    ScalarSubquery(Box<SelectStmt>),
    /// Aggregate call; `arg` is `None` for `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Argument expression (`None` = `*`).
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience: qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: equality.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinOp::Eq,
            right: Box::new(right),
        }
    }

    /// Whether the expression tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}
