//! Write-ahead log and snapshot file formats for the durability layer.
//!
//! This module is pure encoding/decoding — it owns the byte formats and
//! nothing else. The engine (`crate::engine`) decides *when* records are
//! emitted, buffered, flushed, and replayed; see `Database::open`,
//! `Database::checkpoint`, and the commit paths there.
//!
//! # WAL format
//!
//! A WAL file is a 16-byte header (`b"XUPWAL01"` magic + little-endian
//! `u64` generation) followed by a sequence of framed records:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! All integers are little-endian. The CRC is the standard CRC-32
//! (IEEE/zlib polynomial, reflected). A crash can leave a *torn tail* —
//! a partially written frame — which the decoder detects by a short
//! header, a length running past end-of-file, or a CRC mismatch; it
//! returns every record before the tear plus the clean byte offset so the
//! opener can truncate the tear away.
//!
//! Records are *logical redo*: transaction frames
//! (`TxnBegin … TxnCommit`) bracket the physical row effects
//! (slot-positioned insert/delete/update — replay never re-fires
//! triggers, whose effects were logged as their own records), DDL is
//! carried as SQL text (`crate::sql` renders it; recovery re-parses), and
//! id-counter movement is an absolute `NextId` so replay order of
//! discarded frames cannot skew it.
//!
//! # Snapshot format
//!
//! A snapshot file is `b"XUPSNAP1"` magic, then a `[u32 len][u32 crc]`
//! frame around one body: generation, `next_id`, every table (schema,
//! slots *including tombstones*, index buckets with exact in-bucket
//! position order), and the trigger list as rendered `CREATE TRIGGER`
//! text. Buckets are written value-sorted so snapshot bytes are
//! deterministic for a given database state.

use crate::error::{DbError, Result};
use crate::stats::{put_stats, read_stats, TableStatistics};
use crate::value::{DataType, Row, Value};

/// WAL file magic, followed by a little-endian `u64` generation.
pub const WAL_MAGIC: &[u8; 8] = b"XUPWAL01";
/// Snapshot file magic (the trailing `1` is the format version).
pub const SNAP_MAGIC: &[u8; 8] = b"XUPSNAP1";
/// Size of the WAL header: magic + generation.
pub const WAL_HEADER_LEN: usize = 16;

/// One logical redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Start of a transaction's frame. Records after it are buffered by
    /// recovery and applied only when the matching commit arrives.
    TxnBegin {
        /// Per-process transaction sequence number (diagnostic only —
        /// recovery relies on frame adjacency, not ids).
        txn: u64,
    },
    /// Commit: apply the buffered frame.
    TxnCommit {
        /// Sequence number of the committing transaction.
        txn: u64,
    },
    /// Abort marker written when an explicit transaction rolls back.
    /// Informational — the aborted work was never flushed.
    TxnAbort {
        /// Sequence number of the aborted transaction.
        txn: u64,
    },
    /// A row was appended to `table`. The slot position is implicit:
    /// appends are deterministic (`slots.len()`), and rolled-back work
    /// restores slot-vector lengths exactly, so replaying only committed
    /// frames reproduces the original positions.
    Insert {
        /// Lower-cased table key.
        table: String,
        /// The inserted row.
        row: Row,
    },
    /// The row at slot `pos` was deleted (tombstoned).
    Delete {
        /// Lower-cased table key.
        table: String,
        /// Slot position.
        pos: u64,
    },
    /// One cell of the row at slot `pos` was overwritten.
    Update {
        /// Lower-cased table key.
        table: String,
        /// Slot position.
        pos: u64,
        /// Column index.
        column: u32,
        /// The new value.
        value: Value,
    },
    /// A DDL statement ran; recovery re-parses and re-executes the text.
    Ddl {
        /// The statement as SQL (see [`crate::sql::stmt_to_sql`]).
        sql: String,
    },
    /// The id counter reached `value` (absolute, not a delta).
    NextId {
        /// New counter value.
        value: i64,
    },
}

// ----------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected — the zlib polynomial)
// ----------------------------------------------------------------------

/// CRC-32 checksum of `bytes` (IEEE polynomial, as used by zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    // Built once at compile time; the whole computation is const-able.
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------------
// primitive encoders/decoders
// ----------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
        Value::Str(s) => {
            out.push(2);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
    }
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

/// Strict cursor over a byte slice; every accessor fails on short input.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => Some(Value::Int(self.i64()?)),
            2 => Some(Value::Str(self.str()?)),
            3 => Some(Value::Bool(self.u8()? != 0)),
            _ => None,
        }
    }

    pub(crate) fn row(&mut self) -> Option<Row> {
        let n = self.u32()? as usize;
        // Guard against corrupt lengths: a row cannot have more values
        // than bytes remaining (every value is at least one tag byte).
        if n > self.bytes.len() - self.at {
            return None;
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Some(row)
    }

    pub(crate) fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

// ----------------------------------------------------------------------
// record codec
// ----------------------------------------------------------------------

fn encode_payload(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::TxnBegin { txn } => {
            out.push(1);
            put_u64(out, *txn);
        }
        WalRecord::TxnCommit { txn } => {
            out.push(2);
            put_u64(out, *txn);
        }
        WalRecord::TxnAbort { txn } => {
            out.push(3);
            put_u64(out, *txn);
        }
        WalRecord::Insert { table, row } => {
            out.push(4);
            put_str(out, table);
            put_row(out, row);
        }
        WalRecord::Delete { table, pos } => {
            out.push(5);
            put_str(out, table);
            put_u64(out, *pos);
        }
        WalRecord::Update {
            table,
            pos,
            column,
            value,
        } => {
            out.push(6);
            put_str(out, table);
            put_u64(out, *pos);
            put_u32(out, *column);
            put_value(out, value);
        }
        WalRecord::Ddl { sql } => {
            out.push(7);
            put_str(out, sql);
        }
        WalRecord::NextId { value } => {
            out.push(8);
            put_i64(out, *value);
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        1 => WalRecord::TxnBegin { txn: r.u64()? },
        2 => WalRecord::TxnCommit { txn: r.u64()? },
        3 => WalRecord::TxnAbort { txn: r.u64()? },
        4 => WalRecord::Insert {
            table: r.str()?,
            row: r.row()?,
        },
        5 => WalRecord::Delete {
            table: r.str()?,
            pos: r.u64()?,
        },
        6 => WalRecord::Update {
            table: r.str()?,
            pos: r.u64()?,
            column: r.u32()?,
            value: r.value()?,
        },
        7 => WalRecord::Ddl { sql: r.str()? },
        8 => WalRecord::NextId { value: r.i64()? },
        _ => return None,
    };
    // Trailing bytes mean the frame length lied about the payload.
    r.done().then_some(rec)
}

/// Append one framed record (`len + crc + payload`) to `out`.
pub fn encode_frame(rec: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_payload(rec, &mut payload);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// Encode a fresh WAL header for `generation`.
pub fn encode_wal_header(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    put_u64(&mut out, generation);
    out
}

/// Parsed contents of a WAL file body.
#[derive(Debug)]
pub struct WalContents {
    /// The header's generation number.
    pub generation: u64,
    /// Every record before the first tear (or all of them).
    pub records: Vec<WalRecord>,
    /// Byte offset (from file start, header included) of the end of the
    /// last intact frame. Anything past it is a torn tail to truncate.
    pub clean_len: u64,
}

/// Decode a WAL file: header, then frames until end-of-file or a torn
/// tail. Never fails on a tear — that is the normal crash case; only a
/// missing/garbled *header* is an error (the opener recreates the file).
pub fn decode_wal(bytes: &[u8]) -> Result<WalContents> {
    if bytes.len() < WAL_HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return Err(DbError::Storage("WAL header missing or corrupt".into()));
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    // A short frame header past `at` is a torn tail: stop cleanly.
    while let Some(header) = bytes.get(at..at + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            break; // payload runs past EOF: torn tail
        };
        if crc32(payload) != crc {
            break; // bit rot or a tear that kept the length intact
        }
        let Some(rec) = decode_payload(payload) else {
            break; // CRC-clean but undecodable: treat as a tear, stop here
        };
        records.push(rec);
        at += 8 + len;
    }
    Ok(WalContents {
        generation,
        records,
        clean_len: at as u64,
    })
}

// ----------------------------------------------------------------------
// snapshot codec
// ----------------------------------------------------------------------

/// Indexed columns with their buckets, as `(column, buckets)` pairs.
pub type IndexBuckets = Vec<(u32, Vec<(Value, Vec<u64>)>)>;

/// Serialized state of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTable {
    /// Lower-cased catalog key.
    pub key: String,
    /// Schema name as created (case preserved).
    pub name: String,
    /// Column name/type pairs in order.
    pub columns: Vec<(String, DataType)>,
    /// Every slot, tombstones included, in position order.
    pub slots: Vec<Option<Row>>,
    /// Indexed columns with their buckets; in-bucket position order is
    /// exact (it is part of the byte-identical equality contract).
    pub indexes: IndexBuckets,
    /// Columns carrying an ordered index, ascending. Bucket contents are
    /// not serialized: ordered buckets are a pure function of the slots
    /// (positions ascending) and are rebuilt on restore.
    pub ordered: Vec<u32>,
    /// `ANALYZE` statistics, if built.
    pub stats: Option<TableStatistics>,
}

/// Full serialized database state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Checkpoint generation this snapshot belongs to. A WAL whose header
    /// carries an older generation is stale (its effects are already in
    /// the snapshot) and is discarded on open.
    pub generation: u64,
    /// The id counter.
    pub next_id: i64,
    /// Tables, sorted by key.
    pub tables: Vec<SnapshotTable>,
    /// Triggers in registration order, as `CREATE TRIGGER` SQL.
    pub triggers: Vec<String>,
}

pub(crate) fn put_data_type(out: &mut Vec<u8>, ty: DataType) {
    out.push(match ty {
        DataType::Integer => 0,
        DataType::Text => 1,
        DataType::Boolean => 2,
    });
}

/// Encode a snapshot file: magic, then one `[len][crc][body]` frame.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, snap.generation);
    put_i64(&mut body, snap.next_id);
    put_u32(&mut body, snap.tables.len() as u32);
    for t in &snap.tables {
        put_str(&mut body, &t.key);
        put_str(&mut body, &t.name);
        put_u32(&mut body, t.columns.len() as u32);
        for (name, ty) in &t.columns {
            put_str(&mut body, name);
            put_data_type(&mut body, *ty);
        }
        put_u64(&mut body, t.slots.len() as u64);
        for slot in &t.slots {
            match slot {
                None => body.push(0),
                Some(row) => {
                    body.push(1);
                    put_row(&mut body, row);
                }
            }
        }
        put_u32(&mut body, t.indexes.len() as u32);
        for (column, buckets) in &t.indexes {
            put_u32(&mut body, *column);
            put_u32(&mut body, buckets.len() as u32);
            for (value, positions) in buckets {
                put_value(&mut body, value);
                put_u32(&mut body, positions.len() as u32);
                for p in positions {
                    put_u64(&mut body, *p);
                }
            }
        }
        put_u32(&mut body, t.ordered.len() as u32);
        for c in &t.ordered {
            put_u32(&mut body, *c);
        }
        put_stats(&mut body, t.stats.as_ref());
    }
    put_u32(&mut body, snap.triggers.len() as u32);
    for sql in &snap.triggers {
        put_str(&mut body, sql);
    }

    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode a snapshot file. Unlike the WAL, a snapshot is written
/// atomically (temp file + rename), so any corruption is an error rather
/// than a tolerable tear.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot> {
    let corrupt = |what: &str| DbError::Storage(format!("snapshot corrupt: {what}"));
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let body = bytes
        .get(16..16 + len)
        .ok_or_else(|| corrupt("short body"))?;
    if crc32(body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let parse = || corrupt("truncated field");
    let generation = r.u64().ok_or_else(parse)?;
    let next_id = r.i64().ok_or_else(parse)?;
    let ntables = r.u32().ok_or_else(parse)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let key = r.str().ok_or_else(parse)?;
        let name = r.str().ok_or_else(parse)?;
        let ncols = r.u32().ok_or_else(parse)? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1024));
        for _ in 0..ncols {
            let cname = r.str().ok_or_else(parse)?;
            let ty = match r.u8().ok_or_else(parse)? {
                0 => DataType::Integer,
                1 => DataType::Text,
                2 => DataType::Boolean,
                _ => return Err(corrupt("bad column type tag")),
            };
            columns.push((cname, ty));
        }
        let nslots = r.u64().ok_or_else(parse)? as usize;
        let mut slots = Vec::with_capacity(nslots.min(1 << 20));
        for _ in 0..nslots {
            match r.u8().ok_or_else(parse)? {
                0 => slots.push(None),
                1 => slots.push(Some(r.row().ok_or_else(parse)?)),
                _ => return Err(corrupt("bad slot tag")),
            }
        }
        let nindexes = r.u32().ok_or_else(parse)? as usize;
        let mut indexes = Vec::with_capacity(nindexes.min(1024));
        for _ in 0..nindexes {
            let column = r.u32().ok_or_else(parse)?;
            let nbuckets = r.u32().ok_or_else(parse)? as usize;
            let mut buckets = Vec::with_capacity(nbuckets.min(1 << 20));
            for _ in 0..nbuckets {
                let value = r.value().ok_or_else(parse)?;
                let npos = r.u32().ok_or_else(parse)? as usize;
                let mut positions = Vec::with_capacity(npos.min(1 << 20));
                for _ in 0..npos {
                    positions.push(r.u64().ok_or_else(parse)?);
                }
                buckets.push((value, positions));
            }
            indexes.push((column, buckets));
        }
        let nordered = r.u32().ok_or_else(parse)? as usize;
        let mut ordered = Vec::with_capacity(nordered.min(1024));
        for _ in 0..nordered {
            ordered.push(r.u32().ok_or_else(parse)?);
        }
        let stats = read_stats(&mut r).ok_or_else(|| corrupt("bad statistics block"))?;
        tables.push(SnapshotTable {
            key,
            name,
            columns,
            slots,
            indexes,
            ordered,
            stats,
        });
    }
    let ntriggers = r.u32().ok_or_else(parse)? as usize;
    let mut triggers = Vec::with_capacity(ntriggers.min(1024));
    for _ in 0..ntriggers {
        triggers.push(r.str().ok_or_else(parse)?);
    }
    if !r.done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Snapshot {
        generation,
        next_id,
        tables,
        triggers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TxnBegin { txn: 1 },
            WalRecord::Ddl {
                sql: "CREATE TABLE t (id INTEGER, name TEXT)".into(),
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![Value::Int(1), Value::Str("Jean's café".into())],
            },
            WalRecord::Update {
                table: "t".into(),
                pos: 0,
                column: 1,
                value: Value::Null,
            },
            WalRecord::Delete {
                table: "t".into(),
                pos: 0,
            },
            WalRecord::NextId { value: 42 },
            WalRecord::TxnCommit { txn: 1 },
            WalRecord::TxnAbort { txn: 2 },
        ]
    }

    #[test]
    fn frame_roundtrip() {
        let mut bytes = encode_wal_header(7);
        for rec in sample_records() {
            encode_frame(&rec, &mut bytes);
        }
        let contents = decode_wal(&bytes).unwrap();
        assert_eq!(contents.generation, 7);
        assert_eq!(contents.records, sample_records());
        assert_eq!(contents.clean_len, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_yields_prefix() {
        let mut bytes = encode_wal_header(0);
        let boundaries: Vec<usize> = sample_records()
            .iter()
            .map(|rec| {
                encode_frame(rec, &mut bytes);
                bytes.len()
            })
            .collect();
        // Cut one byte short of the end: the last record is torn.
        let cut = &bytes[..bytes.len() - 1];
        let contents = decode_wal(cut).unwrap();
        assert_eq!(contents.records.len(), sample_records().len() - 1);
        assert_eq!(
            contents.clean_len as usize,
            boundaries[boundaries.len() - 2]
        );
    }

    #[test]
    fn corrupt_byte_stops_at_tear() {
        let mut bytes = encode_wal_header(0);
        for rec in sample_records() {
            encode_frame(&rec, &mut bytes);
        }
        // Flip a byte inside the third frame's payload.
        let mut at = WAL_HEADER_LEN;
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 8 + len;
        }
        bytes[at + 10] ^= 0xFF;
        let contents = decode_wal(&bytes).unwrap();
        assert_eq!(contents.records.len(), 2, "stops before the corrupt frame");
        assert_eq!(contents.clean_len as usize, at);
    }

    #[test]
    fn header_corruption_is_an_error() {
        assert!(decode_wal(b"short").is_err());
        let mut bytes = encode_wal_header(0);
        bytes[0] = b'Y';
        assert!(decode_wal(&bytes).is_err());
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = Snapshot {
            generation: 3,
            next_id: 99,
            tables: vec![SnapshotTable {
                key: "t".into(),
                name: "T".into(),
                columns: vec![
                    ("id".into(), DataType::Integer),
                    ("name".into(), DataType::Text),
                    ("flag".into(), DataType::Boolean),
                ],
                slots: vec![
                    Some(vec![Value::Int(1), Value::Str("a".into()), Value::Bool(true)]),
                    None,
                    Some(vec![Value::Int(2), Value::Null, Value::Bool(false)]),
                ],
                indexes: vec![(
                    0,
                    vec![(Value::Int(1), vec![0]), (Value::Int(2), vec![2])],
                )],
                ordered: vec![1],
                stats: Some(crate::stats::TableStatistics::build(
                    [
                        &vec![Value::Int(1), Value::Str("a".into()), Value::Bool(true)],
                        &vec![Value::Int(2), Value::Null, Value::Bool(false)],
                    ]
                    .into_iter(),
                    3,
                )),
            }],
            triggers: vec!["CREATE TRIGGER x AFTER DELETE ON T FOR EACH ROW BEGIN DELETE FROM T WHERE (id = OLD.id); END".into()],
        };
        let bytes = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn snapshot_corruption_detected() {
        let snap = Snapshot {
            generation: 0,
            next_id: 0,
            tables: vec![],
            triggers: vec![],
        };
        let mut bytes = encode_snapshot(&snap);
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(decode_snapshot(&bytes).is_err());
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_snapshot(b"nope").is_err());
    }
}
