//! Rule-based query planner: compiles a [`SelectStmt`] AST into a
//! physical [`SelectPlan`] executed by the Volcano cursors in `exec`.
//!
//! Planning is a single pass per core, mirroring the access decisions
//! the old interpreter made on the fly so results (and the counters the
//! paper's experiments read) stay comparable:
//!
//! 1. **Join selection** — for each FROM source after the first, the
//!    first equality conjunct `src.col = expr-over-earlier-bindings`
//!    turns the source into a hash-join build side; everything else
//!    falls back to a nested-loop (cartesian) join.
//! 2. **Predicate pushdown** — each remaining conjunct that references
//!    exactly one binding is pushed into that binding's scan, filtering
//!    rows before they are cloned out of the table's slot array.
//! 3. **Access selection** — a pushed conjunct of the shape
//!    `col = <row-independent>` or `col IN (subquery)` over an indexed
//!    base-table column turns the scan into an index probe.
//!
//! Consuming an equality conjunct without re-checking it is sound
//! because index buckets and hash-join tables group values by
//! `Value`'s derived equality, which agrees with SQL `=` on the
//! non-null, same-type values that reach them (nulls never enter
//! buckets or build tables).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::ast::{Expr, InsertSource, SelectCore, SelectItem, SelectStmt, Stmt};
use crate::engine::{Database, ResultSet, StatsCells};
use crate::error::{DbError, Result};
use crate::exec::{CoreProf, EvalCtx, OpProf, PlanProf, SliceEnv};
use crate::sql::{expr_to_sql, stmt_to_sql};
use crate::table::Table;
use crate::value::Value;

/// The literal prefix of a LIKE pattern: the characters before the first
/// wildcard. `None` when the pattern starts with a wildcard (no usable
/// prefix).
fn like_prefix(pattern: &str) -> Option<String> {
    let p: String = pattern
        .chars()
        .take_while(|c| *c != '%' && *c != '_')
        .collect();
    if p.is_empty() {
        None
    } else {
        Some(p)
    }
}

/// Smallest string strictly greater than every string starting with
/// `prefix` under code-point order (which matches `str`'s byte order for
/// UTF-8): increment the last incrementable character and drop the tail.
/// `None` when no such string exists — the range is unbounded above.
fn prefix_successor(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(&last) = chars.last() {
        let mut code = last as u32 + 1;
        // Skip the surrogate gap, which `char` cannot represent.
        if (0xD800..=0xDFFF).contains(&code) {
            code = 0xE000;
        }
        if let Some(next) = char::from_u32(code) {
            *chars.last_mut().unwrap() = next;
            return Some(chars.into_iter().collect());
        }
        chars.pop();
    }
    None
}

/// Literal view of a planned range bound: `Some(None)` for unbounded,
/// `Some(Some(..))` for a literal, `None` when the bound is an expression
/// statistics cannot evaluate at plan time.
fn literal_bound(b: &Option<(Expr, bool)>) -> Option<Option<(&Value, bool)>> {
    match b {
        None => Some(None),
        Some((Expr::Literal(v), incl)) => Some(Some((v, *incl))),
        Some(_) => None,
    }
}

/// How a scan reaches its rows.
#[derive(Debug, Clone)]
pub(crate) enum Access {
    /// Walk every live slot.
    Seq,
    /// Probe the index on column `ci` with a row-independent key.
    IndexEq { ci: usize, key: Expr },
    /// Probe the index on column `ci` with every value produced by an
    /// uncorrelated subquery.
    IndexIn { ci: usize, query: Box<SelectStmt> },
    /// Probe the index on column `ci` with every distinct value of a
    /// row-independent IN-list (the batched-DML shape `id IN (…)`).
    IndexInList { ci: usize, list: Vec<Expr> },
    /// Seek the ordered index on column `ci` between row-independent
    /// bounds (`(expr, inclusive)`; `None` is unbounded). The bounding
    /// conjuncts stay in `pushed` and are re-checked per row, so the seek
    /// only narrows candidates — three-valued logic and cross-type
    /// comparison semantics are preserved by the re-check. With
    /// `ordered`, positions are emitted in key order (reversed by `desc`)
    /// instead of slot order, letting the plan elide an `ORDER BY` sort.
    Range {
        ci: usize,
        lower: Option<(Expr, bool)>,
        upper: Option<(Expr, bool)>,
        ordered: bool,
        desc: bool,
    },
}

/// One FROM source compiled to a physical scan.
#[derive(Debug, Clone)]
pub(crate) struct ScanPlan {
    /// Whether the source is a CTE of the same statement (resolved in
    /// the per-execution CTE environment, not the catalog).
    pub is_cte: bool,
    /// Whether the source is a system view (`rdb_*`), materialized from
    /// engine state at cursor-open time. User tables shadow views, so
    /// this is only set when no table of the same name exists.
    pub is_sys: bool,
    /// Catalog/CTE key (lower-cased name).
    pub key: String,
    /// Source name as written (for error messages and EXPLAIN).
    pub name: String,
    /// FROM-clause binding (alias or table name).
    pub binding: String,
    /// Column names of the source.
    pub columns: Vec<String>,
    pub access: Access,
    /// Conjuncts referencing only this binding, evaluated before the
    /// row is cloned out of the source.
    pub pushed: Vec<Expr>,
    /// Planner cardinality estimate: table size for a sequential scan,
    /// average index-bucket size for a probe, 0 for CTEs (unknown at
    /// plan time). Shown by `EXPLAIN ANALYZE` next to actual rows.
    pub est_rows: u64,
    /// Whether `est_rows` came from `ANALYZE` statistics (histogram /
    /// distinct-count estimation) rather than the legacy table-size
    /// heuristics. Statistics-backed estimates also show in plain
    /// `EXPLAIN`.
    pub stats_est: bool,
}

/// How a scan joins against the bindings to its left.
#[derive(Debug, Clone)]
pub(crate) enum JoinKind {
    /// Build a hash table on this scan's column `right_ci`; probe with
    /// `left_key` evaluated over the prefix layout.
    Hash { right_ci: usize, left_key: Expr },
    /// Cartesian nested loop (residual predicates filter later).
    Loop,
}

/// One projection output.
#[derive(Debug, Clone)]
pub(crate) enum ProjStep {
    /// `*` — the whole joined row.
    All,
    /// `binding.*` — a contiguous column range of the joined row.
    Range { off: usize, len: usize },
    /// A plain column reference, pre-resolved to its row offset.
    Col(usize),
    /// A computed expression.
    Expr(Expr),
}

/// Physical plan for one SELECT core.
#[derive(Debug, Clone)]
pub(crate) struct CorePlan {
    /// Scans in FROM order; the join kind of the first entry is unused.
    pub scans: Vec<(ScanPlan, JoinKind)>,
    /// (binding, columns, offset) for the fully joined row.
    pub layout: Vec<(String, Vec<String>, usize)>,
    /// Conjuncts not consumed by joins, pushdown, or index probes.
    pub residual: Vec<Expr>,
    pub projections: Vec<ProjStep>,
    pub out_columns: Vec<String>,
    /// `Some(projection exprs)` when any projection aggregates.
    pub aggregate: Option<Vec<Expr>>,
    pub distinct: bool,
}

/// Physical plan for one CTE.
#[derive(Debug, Clone)]
pub(crate) struct CtePlan {
    pub key: String,
    pub name: String,
    pub columns: Vec<String>,
    pub body: Vec<CorePlan>,
}

/// Physical plan for a full SELECT statement.
#[derive(Debug, Clone)]
pub(crate) struct SelectPlan {
    pub ctes: Vec<CtePlan>,
    pub body: Vec<CorePlan>,
    /// ORDER BY keys as (row offset, descending).
    pub keys: Vec<(usize, bool)>,
    /// Hidden sort keys computable from the output columns alone,
    /// appended to each output row before sorting.
    pub hidden_on_output: Vec<Expr>,
    /// Number of visible output columns (rows are truncated back to
    /// this width after sorting on hidden keys).
    pub visible: usize,
    pub limit: Option<u64>,
    pub columns: Vec<String>,
    /// Whether an `ORDER BY` sort was elided because the single scan
    /// already emits rows in key order (ordered-index walk).
    pub elided_sort: bool,
}

/// A shared, epoch-stamped slot for a statement's compiled [`SelectPlan`].
/// The same slot is held by the SQL-text plan cache and by every
/// [`PreparedStmt`](crate::PreparedStmt) for that text, so replanning
/// after DDL benefits all holders at once.
#[derive(Debug, Default)]
pub(crate) struct PlanSlot {
    /// The compiled plan, stamped with the schema epoch it was built at.
    pub(crate) plan: Mutex<Option<(u64, Arc<SelectPlan>)>>,
    /// Literal-normalized fingerprint of the statement text, computed at
    /// most once per slot and shared by every execution of the text
    /// (statement tracking and slow-query attribution both read it).
    pub(crate) fingerprint: std::sync::OnceLock<Arc<crate::sysview::Fingerprint>>,
}

impl Database {
    /// Compile a SELECT into a physical plan.
    pub(crate) fn build_select_plan(
        &self,
        q: &SelectStmt,
        ctx: &EvalCtx<'_>,
    ) -> Result<SelectPlan> {
        let _span = crate::obs::Span::enter("sql.plan");
        StatsCells::bump(&self.stats.plans_built, 1);
        let naive = self.planner_naive.get();
        let mut cte_cols: HashMap<String, Vec<String>> = HashMap::new();
        let mut cte_plans: Vec<CtePlan> = Vec::new();
        for cte in &q.ctes {
            let body = self.plan_cores(&cte.body, ctx, &cte_cols, naive)?;
            let derived = body[0].out_columns.clone();
            let columns = match &cte.columns {
                Some(cols) => {
                    if cols.len() != derived.len() {
                        return Err(DbError::Schema(format!(
                            "CTE `{}` declares {} columns but produces {}",
                            cte.name,
                            cols.len(),
                            derived.len()
                        )));
                    }
                    cols.clone()
                }
                None => derived,
            };
            let key = cte.name.to_ascii_lowercase();
            cte_cols.insert(key.clone(), columns.clone());
            cte_plans.push(CtePlan {
                key,
                name: cte.name.clone(),
                columns,
                body,
            });
        }
        let mut body = self.plan_cores(&q.body, ctx, &cte_cols, naive)?;
        let columns = body[0].out_columns.clone();
        let visible = columns.len();
        let mut keys: Vec<(usize, bool)> = Vec::with_capacity(q.order_by.len());
        let mut hidden: Vec<&Expr> = Vec::new();
        for k in &q.order_by {
            let idx = match &k.expr {
                Expr::Column { table: None, name } => {
                    columns.iter().position(|c| c.eq_ignore_ascii_case(name))
                }
                Expr::Literal(Value::Int(n)) => {
                    if *n >= 1 && (*n as usize) <= visible {
                        Some(*n as usize - 1)
                    } else {
                        return Err(DbError::Execution(format!(
                            "ORDER BY position {n} is out of range (1..={visible})"
                        )));
                    }
                }
                _ => None,
            };
            match idx {
                Some(i) => keys.push((i, k.desc)),
                None => {
                    keys.push((visible + hidden.len(), k.desc));
                    hidden.push(&k.expr);
                }
            }
        }
        let mut hidden_on_output: Vec<Expr> = Vec::new();
        if !hidden.is_empty() {
            if hidden
                .iter()
                .all(|e| Self::computable_on_output(e, &columns))
            {
                hidden_on_output = hidden.iter().map(|e| (*e).clone()).collect();
            } else if q.body.len() != 1 {
                return Err(DbError::Execution(
                    "ORDER BY over a UNION must name an output column".into(),
                ));
            } else if q.body[0].distinct {
                return Err(DbError::Execution(
                    "ORDER BY items must appear in the select list with DISTINCT".into(),
                ));
            } else {
                // Hidden keys over the source rows: append them to the
                // single core as extra (invisible) projections.
                let core = &mut body[0];
                {
                    let probe = SliceEnv {
                        layout: &core.layout,
                        values: &[],
                    };
                    for e in &hidden {
                        self.check_columns(e, &probe, ctx)?;
                    }
                }
                for e in &hidden {
                    match &mut core.aggregate {
                        Some(exprs) => exprs.push((*e).clone()),
                        None => core.projections.push(ProjStep::Expr((*e).clone())),
                    }
                }
            }
        }
        // --- ORDER BY pushdown -------------------------------------------
        // A single-key sort over a single-scan, non-aggregated core whose
        // key is a direct column of an ordered-indexed base table is
        // elided: the scan walks the ordered index in key order instead,
        // and `LIMIT k` then pulls only the first `k` rows.
        let mut elided_sort = false;
        if !naive
            && body.len() == 1
            && keys.len() == 1
            && hidden.is_empty()
            && hidden_on_output.is_empty()
        {
            let core = &mut body[0];
            if core.scans.len() == 1 && core.aggregate.is_none() && !core.distinct {
                let (key_off, key_desc) = keys[0];
                // Map the output offset back to a source-row offset
                // through the projection steps; with a single scan, row
                // offsets are table column indices.
                let mut src: Option<usize> = None;
                let mut out = 0usize;
                for step in &core.projections {
                    let w = match step {
                        ProjStep::All => core.layout.iter().map(|(_, c, _)| c.len()).sum(),
                        ProjStep::Range { len, .. } => *len,
                        ProjStep::Col(_) | ProjStep::Expr(_) => 1,
                    };
                    if key_off >= out && key_off < out + w {
                        src = match step {
                            ProjStep::All => Some(key_off - out),
                            ProjStep::Range { off, .. } => Some(off + (key_off - out)),
                            ProjStep::Col(off) => Some(*off),
                            ProjStep::Expr(_) => None,
                        };
                        break;
                    }
                    out += w;
                }
                if let Some(rci) = src {
                    let scan = &mut core.scans[0].0;
                    if !scan.is_cte
                        && self
                            .tables
                            .get(&scan.key)
                            .is_some_and(|t| t.has_ordered_index(rci))
                    {
                        match &mut scan.access {
                            a @ Access::Seq => {
                                *a = Access::Range {
                                    ci: rci,
                                    lower: None,
                                    upper: None,
                                    ordered: true,
                                    desc: key_desc,
                                };
                                elided_sort = true;
                            }
                            Access::Range {
                                ci, ordered, desc, ..
                            } if *ci == rci => {
                                *ordered = true;
                                *desc = key_desc;
                                elided_sort = true;
                            }
                            _ => {}
                        }
                    }
                }
                if elided_sort {
                    keys.clear();
                }
            }
        }
        Ok(SelectPlan {
            ctes: cte_plans,
            body,
            keys,
            hidden_on_output,
            visible,
            limit: q.limit,
            columns,
            elided_sort,
        })
    }

    fn plan_cores(
        &self,
        cores: &[SelectCore],
        ctx: &EvalCtx<'_>,
        cte_cols: &HashMap<String, Vec<String>>,
        naive: bool,
    ) -> Result<Vec<CorePlan>> {
        let mut out: Vec<CorePlan> = Vec::with_capacity(cores.len());
        for core in cores {
            let plan = self.plan_core(core, ctx, cte_cols, naive)?;
            if let Some(first) = out.first() {
                if plan.out_columns.len() != first.out_columns.len() {
                    return Err(DbError::Schema(format!(
                        "UNION ALL arity mismatch: {} vs {}",
                        first.out_columns.len(),
                        plan.out_columns.len()
                    )));
                }
            }
            out.push(plan);
        }
        if out.is_empty() {
            return Err(DbError::Execution("empty select body".into()));
        }
        Ok(out)
    }

    fn plan_core(
        &self,
        core: &SelectCore,
        ctx: &EvalCtx<'_>,
        cte_cols: &HashMap<String, Vec<String>>,
        naive: bool,
    ) -> Result<CorePlan> {
        let conjuncts: Vec<Expr> = core
            .filter
            .as_ref()
            .map(|f| f.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        let mut consumed = vec![false; conjuncts.len()];

        // --- join order --------------------------------------------------
        // `order[k]` is the FROM index planned as the k-th scan. Greedy
        // smallest-estimate-first reordering only fires when every source
        // is a base table with ANALYZE statistics, so plans (and the row
        // orders existing results bake in) for un-analyzed schemas are
        // byte-stable.
        let order: Vec<usize> = if naive {
            (0..core.from.len()).collect()
        } else {
            self.join_order(core, &conjuncts, cte_cols)
        };
        let identity_order = order.iter().enumerate().all(|(k, &j)| k == j);

        // --- sources -----------------------------------------------------
        let mut scans: Vec<(ScanPlan, JoinKind)> = Vec::with_capacity(core.from.len());
        let mut layout: Vec<(String, Vec<String>, usize)> = Vec::new();
        let mut width = 0usize;
        for &fi in &order {
            let tref = &core.from[fi];
            let binding = tref.binding().to_string();
            if layout
                .iter()
                .any(|(b, _, _)| b.eq_ignore_ascii_case(&binding))
            {
                return Err(DbError::Schema(format!(
                    "duplicate binding `{binding}` in FROM"
                )));
            }
            let key = tref.name.to_ascii_lowercase();
            let (is_cte, is_sys, columns) = if let Some(cols) = cte_cols.get(&key) {
                (true, false, cols.clone())
            } else if let Some(t) = self.tables.get(&key) {
                (false, false, t.schema.column_names())
            } else if let Some(cols) = crate::sysview::view_columns(&key) {
                // System views resolve last, so a CTE or user table of
                // the same name shadows them.
                (false, true, cols.iter().map(|c| c.to_string()).collect())
            } else {
                return Err(DbError::NoSuchTable(tref.name.clone()));
            };
            layout.push((binding.clone(), columns.clone(), width));
            width += columns.len();
            scans.push((
                ScanPlan {
                    is_cte,
                    is_sys,
                    key,
                    name: tref.name.clone(),
                    binding,
                    columns,
                    access: Access::Seq,
                    pushed: Vec::new(),
                    est_rows: 0,
                    stats_est: false,
                },
                JoinKind::Loop,
            ));
        }

        // --- validation --------------------------------------------------
        // Column references must resolve even when the input is empty.
        {
            let probe = SliceEnv {
                layout: &layout,
                values: &[],
            };
            if let Some(f) = &core.filter {
                self.check_columns(f, &probe, ctx)?;
            }
            for item in &core.projections {
                if let SelectItem::Expr { expr, .. } = item {
                    self.check_columns(expr, &probe, ctx)?;
                }
            }
        }

        // --- join selection ----------------------------------------------
        // For each source after the first, take the first equality
        // conjunct `src.col = expr-over-earlier-bindings` (either operand
        // order) as a hash-join key. The pre-planner interpreter made the
        // same choice, so join selection runs in naive mode too — but
        // there the conjunct is NOT consumed, reproducing the
        // interpreter's re-check of the whole filter on joined rows.
        for i in 1..scans.len() {
            let prefix = SliceEnv {
                layout: &layout[..i],
                values: &[],
            };
            'conj: for (ci_conj, conj) in conjuncts.iter().enumerate() {
                if consumed[ci_conj] {
                    continue;
                }
                if let Expr::Binary {
                    left,
                    op: crate::ast::BinOp::Eq,
                    right,
                } = conj
                {
                    for (a, b) in [(left, right), (right, left)] {
                        if let Expr::Column { table: qual, name } = a.as_ref() {
                            let qual_matches = qual
                                .as_deref()
                                .map(|q| q.eq_ignore_ascii_case(&scans[i].0.binding))
                                .unwrap_or(false);
                            if qual_matches {
                                if let Some(col) = scans[i]
                                    .0
                                    .columns
                                    .iter()
                                    .position(|c| c.eq_ignore_ascii_case(name))
                                {
                                    if self.expr_resolvable(b, &prefix, ctx) {
                                        scans[i].1 = JoinKind::Hash {
                                            right_ci: col,
                                            left_key: (**b).clone(),
                                        };
                                        if !naive {
                                            consumed[ci_conj] = true;
                                        }
                                        break 'conj;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        if !naive {
            // --- predicate pushdown --------------------------------------
            // A conjunct whose column references land in exactly one
            // binding filters inside that binding's scan. Conjuncts that
            // reference no binding stay residual so their evaluation
            // errors surface exactly as the filter's would.
            if scans.len() <= 64 {
                for (ci_conj, conj) in conjuncts.iter().enumerate() {
                    if consumed[ci_conj] {
                        continue;
                    }
                    if let Some(mask) = Self::binding_mask(conj, &layout) {
                        if mask.count_ones() == 1 {
                            let target = mask.trailing_zeros() as usize;
                            scans[target].0.pushed.push(conj.clone());
                            consumed[ci_conj] = true;
                            StatsCells::bump(&self.stats.predicates_pushed, 1);
                        }
                    }
                }
            }

            // --- access selection ----------------------------------------
            // A pushed conjunct `col = <row-independent>` or
            // `col IN (subquery)` over an indexed base-table column turns
            // the scan into an index probe and is consumed by it.
            for (scan, _) in &mut scans {
                if scan.is_cte {
                    continue;
                }
                let Some(t) = self.tables.get(&scan.key) else {
                    continue;
                };
                let mut probe: Option<(usize, Access)> = None;
                'pushed: for (pi, p) in scan.pushed.iter().enumerate() {
                    if let Expr::Binary {
                        left,
                        op: crate::ast::BinOp::Eq,
                        right,
                    } = p
                    {
                        for (colside, keyside) in [(left, right), (right, left)] {
                            if let Expr::Column { table: qual, name } = colside.as_ref() {
                                let qual_ok = qual
                                    .as_deref()
                                    .map(|q| q.eq_ignore_ascii_case(&scan.binding))
                                    .unwrap_or(true);
                                if qual_ok && Self::row_independent(keyside) {
                                    if let Some(ci) = t.schema.column_index(name) {
                                        if t.has_index(ci) || t.has_ordered_index(ci) {
                                            probe = Some((
                                                pi,
                                                Access::IndexEq {
                                                    ci,
                                                    key: (**keyside).clone(),
                                                },
                                            ));
                                            break 'pushed;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if let Expr::InSubquery {
                        expr,
                        query,
                        negated: false,
                    } = p
                    {
                        if let Expr::Column { table: qual, name } = expr.as_ref() {
                            let qual_ok = qual
                                .as_deref()
                                .map(|q| q.eq_ignore_ascii_case(&scan.binding))
                                .unwrap_or(true);
                            if qual_ok {
                                if let Some(ci) = t.schema.column_index(name) {
                                    if t.has_index(ci) || t.has_ordered_index(ci) {
                                        probe = Some((
                                            pi,
                                            Access::IndexIn {
                                                ci,
                                                query: query.clone(),
                                            },
                                        ));
                                        break 'pushed;
                                    }
                                }
                            }
                        }
                    }
                    if let Expr::InList {
                        expr,
                        list,
                        negated: false,
                    } = p
                    {
                        if let Expr::Column { table: qual, name } = expr.as_ref() {
                            let qual_ok = qual
                                .as_deref()
                                .map(|q| q.eq_ignore_ascii_case(&scan.binding))
                                .unwrap_or(true);
                            if qual_ok && list.iter().all(Self::row_independent) {
                                if let Some(ci) = t.schema.column_index(name) {
                                    if t.has_index(ci) || t.has_ordered_index(ci) {
                                        probe = Some((
                                            pi,
                                            Access::IndexInList {
                                                ci,
                                                list: list.clone(),
                                            },
                                        ));
                                        break 'pushed;
                                    }
                                }
                            }
                        }
                    }
                }
                if let Some((pi, access)) = probe {
                    scan.pushed.remove(pi);
                    scan.access = access;
                }
            }

            // --- range access selection ----------------------------------
            // Scans still sequential check their pushed conjuncts for
            // bounds over an ordered-indexed column: comparisons against
            // a row-independent expression and `LIKE 'prefix%'` patterns.
            // Unlike equality probes, the bounding conjuncts are NOT
            // consumed — the scan re-checks them per candidate row.
            for (scan, _) in &mut scans {
                if scan.is_cte || !matches!(scan.access, Access::Seq) {
                    continue;
                }
                let Some(t) = self.tables.get(&scan.key) else {
                    continue;
                };
                Self::pick_range_access(scan, t);
            }
        }

        // --- cardinality estimates ---------------------------------------
        // Without ANALYZE statistics the legacy heuristics apply: table
        // size for a sequential scan, average index-bucket size for a
        // probe — so plans and EXPLAIN output for un-analyzed schemas are
        // unchanged. With statistics, estimates come from distinct counts
        // and equi-depth histograms. CTE sizes are unknown at plan time.
        for (scan, _) in &mut scans {
            scan.est_rows = if scan.is_cte {
                0
            } else if let Some(t) = self.tables.get(&scan.key) {
                scan.stats_est = t.statistics().is_some();
                Self::estimate_scan(scan, t)
            } else {
                0
            };
        }

        let residual: Vec<Expr> = conjuncts
            .into_iter()
            .zip(&consumed)
            .filter(|(_, c)| !**c)
            .map(|(e, _)| e)
            .collect();

        // --- projections -------------------------------------------------
        let aggregate_mode = core.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
        let mut out_columns: Vec<String> = Vec::new();
        let mut steps: Vec<ProjStep> = Vec::new();
        let mut agg_exprs: Vec<Expr> = Vec::new();
        for (i, item) in core.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    if aggregate_mode {
                        return Err(DbError::Execution(
                            "wildcards cannot be mixed with aggregates".into(),
                        ));
                    }
                    if identity_order {
                        for (_, cols, _) in &layout {
                            out_columns.extend(cols.iter().cloned());
                        }
                        steps.push(ProjStep::All);
                    } else {
                        // Reordered join: `*` still expands in FROM order.
                        for j in 0..order.len() {
                            let k = order.iter().position(|&o| o == j).unwrap();
                            let (_, cols, off) = &layout[k];
                            out_columns.extend(cols.iter().cloned());
                            steps.push(ProjStep::Range {
                                off: *off,
                                len: cols.len(),
                            });
                        }
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    if aggregate_mode {
                        return Err(DbError::Execution(
                            "wildcards cannot be mixed with aggregates".into(),
                        ));
                    }
                    let (_, cols, off) = layout
                        .iter()
                        .find(|(b, _, _)| b.eq_ignore_ascii_case(t))
                        .ok_or_else(|| DbError::NoSuchTable(format!("{t}.*")))?;
                    out_columns.extend(cols.iter().cloned());
                    steps.push(ProjStep::Range {
                        off: *off,
                        len: cols.len(),
                    });
                }
                SelectItem::Expr { expr, alias } => {
                    out_columns.push(match alias {
                        Some(a) => a.clone(),
                        None => match expr {
                            Expr::Column { name, .. } => name.clone(),
                            _ => format!("col{}", i + 1),
                        },
                    });
                    if aggregate_mode {
                        agg_exprs.push(expr.clone());
                    } else if let Expr::Column { table, name } = expr {
                        // Pre-resolve plain columns to row offsets; OLD/NEW
                        // pseudo references resolve to None and stay as
                        // expressions.
                        match crate::exec::layout_resolve(&layout, table.as_deref(), name)? {
                            Some(off) => steps.push(ProjStep::Col(off)),
                            None => steps.push(ProjStep::Expr(expr.clone())),
                        }
                    } else {
                        steps.push(ProjStep::Expr(expr.clone()));
                    }
                }
            }
        }

        Ok(CorePlan {
            scans,
            layout,
            residual,
            projections: steps,
            out_columns,
            aggregate: if aggregate_mode {
                Some(agg_exprs)
            } else {
                None
            },
            distinct: core.distinct,
        })
    }

    /// Bitmask of bindings an expression's column references land in, or
    /// `None` when the expression cannot be classified (aggregates,
    /// unresolvable names). Pseudo-row (OLD/NEW) references contribute no
    /// bits — they are row-independent constants during a statement.
    fn binding_mask(e: &Expr, layout: &[(String, Vec<String>, usize)]) -> Option<u64> {
        match e {
            Expr::Literal(_) | Expr::Param(_) => Some(0),
            Expr::Column { table, name } => match table.as_deref() {
                Some(t) => {
                    if let Some(i) = layout
                        .iter()
                        .position(|(b, _, _)| b.eq_ignore_ascii_case(t))
                    {
                        Some(1u64 << i)
                    } else {
                        // Validated already: must be an OLD/NEW pseudo
                        // reference, constant for the statement.
                        Some(0)
                    }
                }
                None => layout
                    .iter()
                    .position(|(_, cols, _)| cols.iter().any(|c| c.eq_ignore_ascii_case(name)))
                    .map(|i| 1u64 << i),
            },
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
                Self::binding_mask(expr, layout)
            }
            Expr::Binary { left, right, .. } => {
                Some(Self::binding_mask(left, layout)? | Self::binding_mask(right, layout)?)
            }
            Expr::InList { expr, list, .. } => {
                let mut m = Self::binding_mask(expr, layout)?;
                for l in list {
                    m |= Self::binding_mask(l, layout)?;
                }
                Some(m)
            }
            Expr::InSubquery { expr, .. } => Self::binding_mask(expr, layout),
            Expr::Like { expr, .. } => Self::binding_mask(expr, layout),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => Some(0),
            Expr::Aggregate { .. } => None,
        }
    }

    // ------------------------------------------------------------------
    // cost model
    // ------------------------------------------------------------------

    /// Choose the scan order for a core's FROM sources: greedy
    /// smallest-estimate-first, preferring sources that share an equality
    /// conjunct with an already-placed binding (so hash joins stay hash
    /// joins). Returns the identity order unless every source is a base
    /// table with ANALYZE statistics — cost comparisons need real
    /// cardinalities, and gating on statistics keeps plans for
    /// un-analyzed schemas byte-stable.
    fn join_order(
        &self,
        core: &SelectCore,
        conjuncts: &[Expr],
        cte_cols: &HashMap<String, Vec<String>>,
    ) -> Vec<usize> {
        let n = core.from.len();
        let identity: Vec<usize> = (0..n).collect();
        if !(2..=4).contains(&n) {
            return identity;
        }
        let mut layout: Vec<(String, Vec<String>, usize)> = Vec::new();
        let mut tables: Vec<&Table> = Vec::new();
        let mut width = 0usize;
        for tref in &core.from {
            let key = tref.name.to_ascii_lowercase();
            if cte_cols.contains_key(&key) {
                return identity;
            }
            // A missing table surfaces as NoSuchTable in the main pass.
            let Some(t) = self.tables.get(&key) else {
                return identity;
            };
            if t.statistics().is_none() {
                return identity;
            }
            let cols = t.schema.column_names();
            layout.push((tref.binding().to_string(), cols, width));
            width += layout.last().map_or(0, |(_, c, _)| c.len());
            tables.push(t);
        }
        let mut est: Vec<u64> = tables.iter().map(|t| (t.len() as u64).max(1)).collect();
        let mut edges = vec![0u64; n];
        for conj in conjuncts {
            let Some(mask) = Self::binding_mask(conj, &layout) else {
                continue;
            };
            if mask.count_ones() == 1 {
                let j = mask.trailing_zeros() as usize;
                if let Some(e) = Self::est_conjunct(tables[j], conj, &layout[j].0) {
                    est[j] = est[j].min(e.max(1));
                }
            } else if mask.count_ones() == 2
                && matches!(
                    conj,
                    Expr::Binary {
                        op: crate::ast::BinOp::Eq,
                        ..
                    }
                )
            {
                let a = mask.trailing_zeros() as usize;
                let b = 63 - mask.leading_zeros() as usize;
                edges[a] |= 1 << b;
                edges[b] |= 1 << a;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut placed = 0u64;
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let connected: Vec<usize> = if placed == 0 {
                Vec::new()
            } else {
                remaining
                    .iter()
                    .copied()
                    .filter(|&j| edges[j] & placed != 0)
                    .collect()
            };
            let pool: &[usize] = if connected.is_empty() {
                &remaining
            } else {
                &connected
            };
            // Ties keep the original FROM order (min index wins).
            let pick = *pool.iter().min_by_key(|&&j| (est[j], j)).unwrap();
            order.push(pick);
            placed |= 1 << pick;
            remaining.retain(|&j| j != pick);
        }
        order
    }

    /// Statistics-based row estimate for a single-binding conjunct over
    /// base table `t`, or `None` when the shape is not estimable
    /// (non-literal operands, unresolvable columns, no statistics).
    fn est_conjunct(t: &Table, conj: &Expr, binding: &str) -> Option<u64> {
        use crate::ast::BinOp::{Eq, Ge, Gt, Le, Lt};
        let s = t.statistics()?;
        let col_of = |e: &Expr| -> Option<usize> {
            if let Expr::Column { table: qual, name } = e {
                let qual_ok = qual
                    .as_deref()
                    .map(|q| q.eq_ignore_ascii_case(binding))
                    .unwrap_or(true);
                if qual_ok {
                    let ci = t.schema.column_index(name)?;
                    if ci < s.columns.len() {
                        return Some(ci);
                    }
                }
            }
            None
        };
        match conj {
            Expr::Binary { left, op, right } => {
                for (colside, keyside, flipped) in [(left, right, false), (right, left, true)] {
                    let (Some(ci), Expr::Literal(v)) = (col_of(colside), keyside.as_ref()) else {
                        continue;
                    };
                    let c = &s.columns[ci];
                    return Some(match (op, flipped) {
                        (Eq, _) => c.est_eq_rows(v),
                        (Gt, false) | (Lt, true) => c.est_range_rows(Some((v, false)), None),
                        (Ge, false) | (Le, true) => c.est_range_rows(Some((v, true)), None),
                        (Lt, false) | (Gt, true) => c.est_range_rows(None, Some((v, false))),
                        (Le, false) | (Ge, true) => c.est_range_rows(None, Some((v, true))),
                        _ => return None,
                    });
                }
                None
            }
            Expr::Like {
                expr,
                pattern,
                negated: false,
            } => {
                let ci = col_of(expr)?;
                let prefix = like_prefix(pattern)?;
                let hi = prefix_successor(&prefix).map(Value::Str);
                let lo = Value::Str(prefix);
                Some(
                    s.columns[ci]
                        .est_range_rows(Some((&lo, true)), hi.as_ref().map(|h| (h, false))),
                )
            }
            Expr::IsNull { expr, negated } => {
                let ci = col_of(expr)?;
                let nulls = s.columns[ci].null_count;
                Some(if *negated {
                    s.row_count.saturating_sub(nulls)
                } else {
                    nulls
                })
            }
            _ => None,
        }
    }

    /// Turn a sequential scan into an ordered-index range seek when its
    /// pushed conjuncts bound an ordered-indexed column and the seek is
    /// estimated (or, without statistics, assumed) to be selective.
    fn pick_range_access(scan: &mut ScanPlan, t: &Table) {
        use crate::ast::BinOp::{Ge, Gt, Le, Lt};
        type RangeBounds = (Option<(Expr, bool)>, Option<(Expr, bool)>);
        // Per ordered-indexed column in first-seen order; only the first
        // lower and first upper bound are kept (any single bound is a
        // superset of the conjunction, and every conjunct is re-checked).
        let mut bounds: Vec<(usize, RangeBounds)> = Vec::new();
        for p in &scan.pushed {
            let (ci, lower, upper) = match p {
                Expr::Binary { left, op, right } if matches!(op, Lt | Le | Gt | Ge) => {
                    let mut hit = None;
                    for (colside, keyside, flipped) in [(left, right, false), (right, left, true)] {
                        let Expr::Column { table: qual, name } = colside.as_ref() else {
                            continue;
                        };
                        let qual_ok = qual
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(&scan.binding))
                            .unwrap_or(true);
                        if !qual_ok || !Self::row_independent(keyside) {
                            continue;
                        }
                        let Some(ci) = t.schema.column_index(name) else {
                            continue;
                        };
                        if !t.has_ordered_index(ci) {
                            continue;
                        }
                        let (is_lower, incl) = match (op, flipped) {
                            (Gt, false) | (Lt, true) => (true, false),
                            (Ge, false) | (Le, true) => (true, true),
                            (Lt, false) | (Gt, true) => (false, false),
                            (Le, false) | (Ge, true) => (false, true),
                            _ => unreachable!(),
                        };
                        let b = ((**keyside).clone(), incl);
                        hit = Some(if is_lower {
                            (ci, Some(b), None)
                        } else {
                            (ci, None, Some(b))
                        });
                        break;
                    }
                    match hit {
                        Some(h) => h,
                        None => continue,
                    }
                }
                Expr::Like {
                    expr,
                    pattern,
                    negated: false,
                } => {
                    let Expr::Column { table: qual, name } = expr.as_ref() else {
                        continue;
                    };
                    let qual_ok = qual
                        .as_deref()
                        .map(|q| q.eq_ignore_ascii_case(&scan.binding))
                        .unwrap_or(true);
                    if !qual_ok {
                        continue;
                    }
                    let Some(ci) = t.schema.column_index(name) else {
                        continue;
                    };
                    if !t.has_ordered_index(ci) {
                        continue;
                    }
                    let Some(prefix) = like_prefix(pattern) else {
                        continue;
                    };
                    let upper =
                        prefix_successor(&prefix).map(|s| (Expr::Literal(Value::Str(s)), false));
                    (ci, Some((Expr::Literal(Value::Str(prefix)), true)), upper)
                }
                _ => continue,
            };
            if let Some((_, b)) = bounds.iter_mut().find(|(c, _)| *c == ci) {
                if b.0.is_none() {
                    b.0 = lower;
                }
                if b.1.is_none() {
                    b.1 = upper;
                }
            } else {
                bounds.push((ci, (lower, upper)));
            }
        }
        // Prefer a column bounded on both sides, else the first bounded.
        let Some(i) = bounds
            .iter()
            .position(|(_, b)| b.0.is_some() && b.1.is_some())
            .or(if bounds.is_empty() { None } else { Some(0) })
        else {
            return;
        };
        let (ci, (lower, upper)) = bounds.swap_remove(i);
        // Selectivity check: with statistics and literal bounds, seek only
        // when it is expected to skip at least half the table. Without
        // statistics an explicitly bounded column is assumed selective.
        if let Some(s) = t.statistics() {
            if ci < s.columns.len() {
                if let (Some(lo), Some(hi)) = (literal_bound(&lower), literal_bound(&upper)) {
                    let est = s.columns[ci].est_range_rows(lo, hi);
                    if est.saturating_mul(2) > t.len() as u64 {
                        return;
                    }
                }
            }
        }
        scan.access = Access::Range {
            ci,
            lower,
            upper,
            ordered: false,
            desc: false,
        };
    }

    /// Cardinality estimate for one scan. Statistics-backed when the
    /// table has them; the legacy size heuristics otherwise.
    fn estimate_scan(scan: &ScanPlan, t: &Table) -> u64 {
        let total = t.len() as u64;
        let stats = t.statistics();
        match &scan.access {
            Access::Seq => match stats {
                Some(_) => {
                    let mut est = total;
                    for p in &scan.pushed {
                        if let Some(e) = Self::est_conjunct(t, p, &scan.binding) {
                            est = est.min(e);
                        }
                    }
                    est
                }
                None => total,
            },
            Access::IndexEq { ci, key } => {
                if let (Some(s), Expr::Literal(v)) = (stats, key) {
                    if *ci < s.columns.len() {
                        return s.columns[*ci].est_eq_rows(v);
                    }
                }
                let distinct = t.index_distinct(*ci) as u64;
                if distinct == 0 {
                    0
                } else {
                    total.div_ceil(distinct)
                }
            }
            Access::IndexIn { ci, .. } | Access::IndexInList { ci, .. } => {
                let distinct = t.index_distinct(*ci) as u64;
                if distinct == 0 {
                    0
                } else {
                    total.div_ceil(distinct)
                }
            }
            Access::Range {
                ci, lower, upper, ..
            } => {
                if let Some(s) = stats {
                    if *ci < s.columns.len() {
                        if let (Some(lo), Some(hi)) = (literal_bound(lower), literal_bound(upper)) {
                            return s.columns[*ci].est_range_rows(lo, hi);
                        }
                    }
                }
                // Bounded seek without statistics: assume a third of the
                // table survives.
                total.div_ceil(3)
            }
        }
    }

    // ------------------------------------------------------------------
    // EXPLAIN
    // ------------------------------------------------------------------

    /// Render the physical plan of a statement without executing it:
    /// one output row per operator line, indented by tree depth.
    pub(crate) fn explain_stmt(&self, stmt: &Stmt, ctx: &EvalCtx<'_>) -> Result<ResultSet> {
        let mut lines: Vec<String> = Vec::new();
        self.explain_into(stmt, ctx, 0, &mut lines)?;
        Ok(ResultSet {
            columns: vec!["plan".into()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    pub(crate) fn explain_into(
        &self,
        stmt: &Stmt,
        ctx: &EvalCtx<'_>,
        ind: usize,
        lines: &mut Vec<String>,
    ) -> Result<()> {
        match stmt {
            Stmt::Explain { stmt, .. } => self.explain_into(stmt, ctx, ind, lines),
            Stmt::Select(q) => {
                let plan = self.build_select_plan(q, ctx)?;
                render_select_plan(&plan, ind, lines);
                Ok(())
            }
            Stmt::Insert { table, source, .. } => match source {
                InsertSource::Values(rows) => {
                    push(
                        lines,
                        ind,
                        format!("Insert {table} ({} row(s))", rows.len()),
                    );
                    Ok(())
                }
                InsertSource::Select(q) => {
                    push(lines, ind, format!("Insert {table}"));
                    let plan = self.build_select_plan(q, ctx)?;
                    render_select_plan(&plan, ind + 1, lines);
                    Ok(())
                }
            },
            Stmt::Delete { table, filter } => {
                push(lines, ind, format!("Delete {table}"));
                self.explain_dml_access(table, filter.as_ref(), ind + 1, lines)
            }
            Stmt::Update { table, filter, .. } => {
                push(lines, ind, format!("Update {table}"));
                self.explain_dml_access(table, filter.as_ref(), ind + 1, lines)
            }
            other => {
                push(lines, ind, stmt_to_sql(other));
                Ok(())
            }
        }
    }

    /// Mirror of the access choice `select_positions` makes for DELETE
    /// and UPDATE: an equality or IN-subquery index probe when one
    /// applies, otherwise a sequential scan. The full filter is always
    /// re-checked on those paths, so it renders as a `[filter: …]` tag.
    fn explain_dml_access(
        &self,
        table: &str,
        filter: Option<&Expr>,
        ind: usize,
        lines: &mut Vec<String>,
    ) -> Result<()> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let suffix = match filter {
            Some(f) => format!(" [filter: {}]", expr_to_sql(f)),
            None => String::new(),
        };
        if let Some(f) = filter {
            if let Some((ci, key_expr)) = self.find_index_probe(t, f, &[]) {
                push(
                    lines,
                    ind,
                    format!(
                        "IndexScan {} ({} = {}){suffix}",
                        t.schema.name,
                        t.schema.columns[ci].name,
                        expr_to_sql(key_expr)
                    ),
                );
                return Ok(());
            }
            for conj in f.conjuncts() {
                if let Expr::InSubquery {
                    expr,
                    negated: false,
                    ..
                } = conj
                {
                    if let Expr::Column { table: qual, name } = expr.as_ref() {
                        let qual_ok = qual
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(&t.schema.name))
                            .unwrap_or(true);
                        if qual_ok {
                            if let Some(ci) = t.schema.column_index(name) {
                                if t.has_index(ci) || t.has_ordered_index(ci) {
                                    push(
                                        lines,
                                        ind,
                                        format!(
                                            "IndexScan {} ({} IN (subquery)){suffix}",
                                            t.schema.name, t.schema.columns[ci].name
                                        ),
                                    );
                                    return Ok(());
                                }
                            }
                        }
                    }
                }
                if let Expr::InList {
                    expr,
                    list,
                    negated: false,
                } = conj
                {
                    if let Expr::Column { table: qual, name } = expr.as_ref() {
                        let qual_ok = qual
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(&t.schema.name))
                            .unwrap_or(true);
                        if qual_ok && list.iter().all(Self::row_independent) {
                            if let Some(ci) = t.schema.column_index(name) {
                                if t.has_index(ci) || t.has_ordered_index(ci) {
                                    push(
                                        lines,
                                        ind,
                                        format!(
                                            "IndexScan {} ({} IN ({} values)){suffix}",
                                            t.schema.name,
                                            t.schema.columns[ci].name,
                                            list.len()
                                        ),
                                    );
                                    return Ok(());
                                }
                            }
                        }
                    }
                }
            }
        }
        push(lines, ind, format!("SeqScan {}{suffix}", t.schema.name));
        Ok(())
    }
}

fn push(lines: &mut Vec<String>, ind: usize, line: String) {
    lines.push(format!("{}{line}", "  ".repeat(ind)));
}

/// ` (actual rows=R loops=L time=T)` suffix for an analyzed operator;
/// empty when no profile is attached (plain `EXPLAIN` stays unchanged).
fn actual_suffix(prof: Option<&OpProf>) -> String {
    match prof {
        Some(p) => format!(
            " (actual rows={} loops={} time={})",
            p.rows.get(),
            p.loops.get(),
            crate::obs::fmt_ns(p.ns.get())
        ),
        None => String::new(),
    }
}

fn render_select_plan(plan: &SelectPlan, ind: usize, lines: &mut Vec<String>) {
    render_select_plan_prof(plan, ind, lines, None);
}

pub(crate) fn render_select_plan_prof(
    plan: &SelectPlan,
    ind: usize,
    lines: &mut Vec<String>,
    prof: Option<&PlanProf>,
) {
    for (i, cte) in plan.ctes.iter().enumerate() {
        push(
            lines,
            ind,
            format!("CTE {} [{}]", cte.name, cte.columns.join(", ")),
        );
        render_cores(&cte.body, ind + 1, lines, prof.map(|p| &p.ctes[i][..]));
    }
    let mut ind = ind;
    if let Some(n) = plan.limit {
        push(lines, ind, format!("Limit {n}"));
        ind += 1;
    }
    if !plan.keys.is_empty() {
        let keys: Vec<String> = plan
            .keys
            .iter()
            .map(|(i, desc)| format!("#{}{}", i + 1, if *desc { " DESC" } else { "" }))
            .collect();
        push(lines, ind, format!("Sort [{}]", keys.join(", ")));
        ind += 1;
    }
    render_cores(&plan.body, ind, lines, prof.map(|p| &p.cores[..]));
}

fn render_cores(
    cores: &[CorePlan],
    ind: usize,
    lines: &mut Vec<String>,
    prof: Option<&[CoreProf]>,
) {
    let mut ind = ind;
    if cores.len() > 1 {
        push(lines, ind, "UnionAll".to_string());
        ind += 1;
    }
    for (i, core) in cores.iter().enumerate() {
        render_core(core, ind, lines, prof.map(|ps| &ps[i]));
    }
}

fn render_core(core: &CorePlan, ind: usize, lines: &mut Vec<String>, prof: Option<&CoreProf>) {
    let mut ind = ind;
    if core.distinct && core.aggregate.is_none() {
        push(
            lines,
            ind,
            format!("Distinct{}", actual_suffix(prof.map(|p| &p.distinct))),
        );
        ind += 1;
    }
    match &core.aggregate {
        Some(exprs) => {
            let rendered: Vec<String> = exprs.iter().map(expr_to_sql).collect();
            push(
                lines,
                ind,
                format!(
                    "Aggregate [{}]{}",
                    rendered.join(", "),
                    actual_suffix(prof.map(|p| &p.output))
                ),
            );
        }
        None => push(
            lines,
            ind,
            format!(
                "Project [{}]{}",
                core.out_columns.join(", "),
                actual_suffix(prof.map(|p| &p.output))
            ),
        ),
    }
    ind += 1;
    if !core.residual.is_empty() {
        let rendered: Vec<String> = core.residual.iter().map(expr_to_sql).collect();
        push(
            lines,
            ind,
            format!(
                "Filter ({}){}",
                rendered.join(" AND "),
                actual_suffix(prof.map(|p| &p.filter))
            ),
        );
        ind += 1;
    }
    render_joins(core, core.scans.len(), ind, lines, prof);
}

fn render_joins(
    core: &CorePlan,
    n: usize,
    ind: usize,
    lines: &mut Vec<String>,
    prof: Option<&CoreProf>,
) {
    match n {
        0 => push(lines, ind, "Result (one row)".to_string()),
        1 => render_scan(&core.scans[0].0, ind, lines, prof.map(|p| &p.scans[0])),
        _ => {
            let join_suffix = actual_suffix(prof.map(|p| &p.joins[n - 2]));
            let (scan, kind) = &core.scans[n - 1];
            match kind {
                JoinKind::Hash { right_ci, left_key } => push(
                    lines,
                    ind,
                    format!(
                        "HashJoin ({}.{} = {}){join_suffix}",
                        scan.binding,
                        scan.columns[*right_ci],
                        expr_to_sql(left_key)
                    ),
                ),
                JoinKind::Loop => push(lines, ind, format!("NestedLoop{join_suffix}")),
            }
            render_joins(core, n - 1, ind + 1, lines, prof);
            render_scan(scan, ind + 1, lines, prof.map(|p| &p.scans[n - 1]));
        }
    }
}

fn render_scan(scan: &ScanPlan, ind: usize, lines: &mut Vec<String>, prof: Option<&OpProf>) {
    let mut line = if scan.is_cte {
        format!("CteScan {}", scan.name)
    } else if scan.is_sys {
        format!("SysScan {}", scan.name)
    } else {
        match &scan.access {
            Access::Seq => format!("SeqScan {}", scan.name),
            Access::IndexEq { ci, key } => format!(
                "IndexScan {} ({} = {})",
                scan.name,
                scan.columns[*ci],
                expr_to_sql(key)
            ),
            Access::IndexIn { ci, .. } => format!(
                "IndexScan {} ({} IN (subquery))",
                scan.name, scan.columns[*ci]
            ),
            Access::IndexInList { ci, list } => format!(
                "IndexScan {} ({} IN ({} values))",
                scan.name,
                scan.columns[*ci],
                list.len()
            ),
            Access::Range {
                ci,
                lower,
                upper,
                ordered,
                desc,
            } => {
                let col = &scan.columns[*ci];
                let mut parts: Vec<String> = Vec::new();
                if let Some((e, incl)) = lower {
                    parts.push(format!(
                        "{col} >{} {}",
                        if *incl { "=" } else { "" },
                        expr_to_sql(e)
                    ));
                }
                if let Some((e, incl)) = upper {
                    parts.push(format!(
                        "{col} <{} {}",
                        if *incl { "=" } else { "" },
                        expr_to_sql(e)
                    ));
                }
                let what = if parts.is_empty() {
                    col.clone()
                } else {
                    parts.join(" AND ")
                };
                if *ordered {
                    format!(
                        "OrderedScan {} ({what}{})",
                        scan.name,
                        if *desc { " DESC" } else { "" }
                    )
                } else {
                    format!("RangeScan {} ({what})", scan.name)
                }
            }
        }
    };
    if !scan.binding.eq_ignore_ascii_case(&scan.name) {
        line.push_str(&format!(" AS {}", scan.binding));
    }
    if !scan.pushed.is_empty() {
        let rendered: Vec<String> = scan.pushed.iter().map(expr_to_sql).collect();
        line.push_str(&format!(" [filter: {}]", rendered.join(" AND ")));
    }
    if prof.is_some() || scan.stats_est {
        line.push_str(&format!(" (est rows={})", scan.est_rows));
        line.push_str(&actual_suffix(prof));
    }
    push(lines, ind, line);
}
