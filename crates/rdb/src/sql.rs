//! Render parsed statements back to SQL text.
//!
//! The durability layer persists DDL *logically*: a WAL record or
//! snapshot stores the SQL text of the statement, and recovery re-parses
//! and re-executes it. That only works if rendering is an exact inverse
//! of parsing — `parse_stmt(stmt_to_sql(s)) == s` for every statement the
//! parser can produce. Expressions are rendered fully parenthesized so
//! operator precedence never has to be reconstructed.
//!
//! The one deliberate exception: `Expr::Literal(Value::Int(n))` with
//! negative `n` renders as `-n`, which re-parses as unary negation of a
//! positive literal. The parser itself never produces a negative integer
//! literal, so ASTs that round-tripped through SQL once (trigger bodies,
//! replayed DDL) are unaffected.

use crate::ast::*;
use crate::value::Value;
use std::fmt::Write;

/// Render a statement as parseable SQL text.
pub fn stmt_to_sql(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt);
    out
}

fn write_stmt(out: &mut String, stmt: &Stmt) {
    match stmt {
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            out.push_str("CREATE TABLE ");
            if *if_not_exists {
                out.push_str("IF NOT EXISTS ");
            }
            out.push_str(name);
            out.push_str(" (");
            for (i, c) in columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} {}", c.name, c.ty);
            }
            out.push(')');
        }
        Stmt::DropTable { name, if_exists } => {
            out.push_str("DROP TABLE ");
            if *if_exists {
                out.push_str("IF EXISTS ");
            }
            out.push_str(name);
        }
        Stmt::CreateIndex {
            name,
            table,
            column,
            ordered,
        } => {
            let _ = write!(out, "CREATE INDEX {name} ON {table} ({column})");
            if *ordered {
                out.push_str(" USING ORDERED");
            }
        }
        Stmt::Analyze { table } => {
            out.push_str("ANALYZE");
            if let Some(t) = table {
                let _ = write!(out, " {t}");
            }
        }
        Stmt::CreateTrigger {
            name,
            event,
            table,
            granularity,
            body,
        } => {
            let event = match event {
                TriggerEvent::Delete => "DELETE",
                TriggerEvent::Insert => "INSERT",
            };
            let granularity = match granularity {
                TriggerGranularity::Row => "ROW",
                TriggerGranularity::Statement => "STATEMENT",
            };
            let _ = write!(
                out,
                "CREATE TRIGGER {name} AFTER {event} ON {table} FOR EACH {granularity} BEGIN "
            );
            for s in body {
                write_stmt(out, s);
                out.push_str("; ");
            }
            out.push_str("END");
        }
        Stmt::DropTrigger { name } => {
            let _ = write!(out, "DROP TRIGGER {name}");
        }
        Stmt::Insert {
            table,
            columns,
            source,
        } => {
            let _ = write!(out, "INSERT INTO {table} ");
            if let Some(cols) = columns {
                out.push('(');
                out.push_str(&cols.join(", "));
                out.push_str(") ");
            }
            match source {
                InsertSource::Values(rows) => {
                    out.push_str("VALUES ");
                    for (i, row) in rows.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push('(');
                        for (j, e) in row.iter().enumerate() {
                            if j > 0 {
                                out.push_str(", ");
                            }
                            write_expr(out, e);
                        }
                        out.push(')');
                    }
                }
                InsertSource::Select(q) => write_select(out, q),
            }
        }
        Stmt::Delete { table, filter } => {
            let _ = write!(out, "DELETE FROM {table}");
            if let Some(f) = filter {
                out.push_str(" WHERE ");
                write_expr(out, f);
            }
        }
        Stmt::Update {
            table,
            sets,
            filter,
        } => {
            let _ = write!(out, "UPDATE {table} SET ");
            for (i, (col, e)) in sets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{col} = ");
                write_expr(out, e);
            }
            if let Some(f) = filter {
                out.push_str(" WHERE ");
                write_expr(out, f);
            }
        }
        Stmt::Select(q) => write_select(out, q),
        Stmt::Begin => out.push_str("BEGIN"),
        Stmt::Commit => out.push_str("COMMIT"),
        Stmt::Rollback { to_savepoint } => {
            out.push_str("ROLLBACK");
            if let Some(name) = to_savepoint {
                let _ = write!(out, " TO SAVEPOINT {name}");
            }
        }
        Stmt::Savepoint { name } => {
            let _ = write!(out, "SAVEPOINT {name}");
        }
        Stmt::Checkpoint => out.push_str("CHECKPOINT"),
        Stmt::Explain { analyze, stmt } => {
            out.push_str(if *analyze {
                "EXPLAIN ANALYZE "
            } else {
                "EXPLAIN "
            });
            write_stmt(out, stmt);
        }
    }
}

/// Render one expression as SQL (fully parenthesized), for plan display.
pub(crate) fn expr_to_sql(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn write_select(out: &mut String, q: &SelectStmt) {
    if !q.ctes.is_empty() {
        out.push_str("WITH ");
        for (i, cte) in q.ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&cte.name);
            if let Some(cols) = &cte.columns {
                out.push('(');
                out.push_str(&cols.join(", "));
                out.push(')');
            }
            out.push_str(" AS (");
            write_union(out, &cte.body);
            out.push(')');
        }
        out.push(' ');
    }
    write_union(out, &q.body);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, key) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &key.expr);
            if key.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_union(out: &mut String, cores: &[SelectCore]) {
    if cores.len() == 1 {
        write_core(out, &cores[0]);
        return;
    }
    for (i, core) in cores.iter().enumerate() {
        if i > 0 {
            out.push_str(" UNION ALL ");
        }
        out.push('(');
        write_core(out, core);
        out.push(')');
    }
}

fn write_core(out: &mut String, core: &SelectCore) {
    out.push_str("SELECT ");
    if core.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in core.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                let _ = write!(out, "{t}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if !core.from.is_empty() {
        out.push_str(" FROM ");
        for (i, tref) in core.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&tref.name);
            if let Some(a) = &tref.alias {
                let _ = write!(out, " AS {a}");
            }
        }
    }
    if let Some(f) = &core.filter {
        out.push_str(" WHERE ");
        write_expr(out, f);
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Literal(v) => write_literal(out, v),
        Expr::Param(i) => {
            let _ = write!(out, "${}", i + 1);
        }
        Expr::Column { table, name } => match table {
            Some(t) => {
                let _ = write!(out, "{t}.{name}");
            }
            None => out.push_str(name),
        },
        Expr::Unary { op, expr } => {
            out.push('(');
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push_str("NOT "),
            }
            write_expr(out, expr);
            out.push(')');
        }
        Expr::Binary { left, op, right } => {
            out.push('(');
            write_expr(out, left);
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
            };
            let _ = write!(out, " {op} ");
            write_expr(out, right);
            out.push(')');
        }
        Expr::IsNull { expr, negated } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            out.push(')');
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            let _ = write!(out, "'{}'", pattern.replace('\'', "''"));
            out.push(')');
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item);
            }
            out.push_str("))");
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_select(out, query);
            out.push_str("))");
        }
        Expr::Exists { query, negated } => {
            out.push('(');
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_select(out, query);
            out.push_str("))");
        }
        Expr::ScalarSubquery(query) => {
            out.push('(');
            write_select(out, query);
            out.push(')');
        }
        Expr::Aggregate { func, arg } => {
            let func = match func {
                AggFunc::Count => "COUNT",
                AggFunc::Min => "MIN",
                AggFunc::Max => "MAX",
                AggFunc::Sum => "SUM",
            };
            let _ = write!(out, "{func}(");
            match arg {
                None => out.push('*'),
                Some(e) => write_expr(out, e),
            }
            out.push(')');
        }
    }
}

fn write_literal(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("NULL"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_stmt;

    /// Parsing the rendered text must reproduce the AST exactly.
    fn roundtrip(sql: &str) {
        let stmt = parse_stmt(sql).unwrap();
        let rendered = stmt_to_sql(&stmt);
        let reparsed = parse_stmt(&rendered)
            .unwrap_or_else(|e| panic!("render of `{sql}` unparseable: `{rendered}`: {e}"));
        assert_eq!(
            stmt, reparsed,
            "roundtrip changed AST for `{sql}`\nrendered: {rendered}"
        );
    }

    #[test]
    fn ddl_roundtrips() {
        roundtrip("CREATE TABLE Customer (id INTEGER, Name TEXT, active BOOLEAN)");
        roundtrip("CREATE TABLE IF NOT EXISTS t (x INT)");
        roundtrip("DROP TABLE t");
        roundtrip("DROP TABLE IF EXISTS t");
        roundtrip("CREATE INDEX c_id ON Customer (id)");
        roundtrip("CREATE INDEX c_id ON Customer (id) USING ORDERED");
        roundtrip("CREATE INDEX c_id ON Customer (id) USING HASH");
        roundtrip("ANALYZE");
        roundtrip("ANALYZE Customer");
        roundtrip("DROP TRIGGER del_cust");
    }

    #[test]
    fn trigger_bodies_roundtrip() {
        roundtrip(
            "CREATE TRIGGER del_cust AFTER DELETE ON Customer FOR EACH ROW BEGIN
               DELETE FROM Order WHERE parentId = OLD.id;
               UPDATE ASR SET deleted = TRUE WHERE id = OLD.id;
             END",
        );
        roundtrip(
            "CREATE TRIGGER gc AFTER DELETE ON A FOR EACH STATEMENT BEGIN
               DELETE FROM B WHERE parentId NOT IN (SELECT id FROM A);
             END",
        );
    }

    #[test]
    fn dml_roundtrips() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
        roundtrip("INSERT INTO t SELECT a, b FROM u WHERE a > 3");
        roundtrip("DELETE FROM t WHERE id = 5 AND name = 'John''s'");
        roundtrip("UPDATE t SET a = a + 1, b = NULL WHERE id IN (1, 2, 3)");
    }

    #[test]
    fn queries_roundtrip() {
        roundtrip("SELECT DISTINCT id, Name AS n FROM Customer C, Order O WHERE O.parentId = C.id ORDER BY id DESC LIMIT 10");
        roundtrip("SELECT COUNT(*), MIN(id), MAX(id), SUM(Qty) FROM t");
        roundtrip("SELECT (SELECT MAX(id) FROM t) FROM u WHERE NOT EXISTS (SELECT * FROM v)");
        roundtrip("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
        roundtrip("SELECT O.* FROM Order O WHERE O.id IS NOT NULL");
        roundtrip("SELECT * FROM t WHERE name LIKE 'Jo%' AND path NOT LIKE '%''s_'");
        roundtrip("SELECT * FROM t WHERE num BETWEEN 3 AND 7 AND id NOT BETWEEN 1 AND 2");
        roundtrip(
            "WITH Q1(C1, C2) AS (SELECT id, Name FROM Customer WHERE Name = 'John'),
                  Q2(C1, C2) AS (SELECT C1, NULL FROM Q1)
             (SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2) ORDER BY C1, C2",
        );
    }

    #[test]
    fn control_roundtrips() {
        roundtrip("BEGIN");
        roundtrip("COMMIT");
        roundtrip("ROLLBACK");
        roundtrip("ROLLBACK TO SAVEPOINT sp1");
        roundtrip("SAVEPOINT sp1");
        roundtrip("CHECKPOINT");
    }

    #[test]
    fn parameters_roundtrip() {
        roundtrip("INSERT INTO t VALUES ($1, $2, $3)");
        roundtrip("UPDATE t SET a = $1 WHERE id = $2");
    }

    #[test]
    fn explain_roundtrips() {
        roundtrip("EXPLAIN SELECT id FROM t WHERE id = 1");
        roundtrip("EXPLAIN DELETE FROM t WHERE parentId NOT IN (SELECT id FROM u)");
        roundtrip("EXPLAIN INSERT INTO t SELECT a, b FROM u");
        roundtrip("EXPLAIN EXPLAIN SELECT * FROM t");
    }
}
