//! Errors for the relational engine.

use std::fmt;

/// Any error raised by SQL parsing, planning, or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text could not be tokenized or parsed.
    SqlParse(String),
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// A referenced column does not exist or is ambiguous.
    NoSuchColumn(String),
    /// Schema-level problem (duplicate table, bad column count, …).
    Schema(String),
    /// Type error during expression evaluation.
    Type(String),
    /// Anything else that indicates a malformed statement at runtime.
    Execution(String),
    /// Trigger recursion exceeded the safety limit.
    TriggerDepth(String),
    /// Transaction-control misuse (nested `BEGIN`, `COMMIT` outside a
    /// transaction, unknown savepoint, …).
    Txn(String),
    /// A deterministic injected fault fired (see
    /// `Database::fail_after_statements` / `Database::fail_on_table_write`).
    FaultInjected(String),
    /// Durable-storage failure: WAL/snapshot I/O, a corrupt snapshot, or
    /// `CHECKPOINT` against a non-durable database.
    Storage(String),
    /// A statement inside `Database::run_script` failed; carries the
    /// failing statement's 0-based index and SQL text plus the
    /// underlying error.
    ScriptStatement {
        /// 0-based index of the failing statement within the script.
        index: usize,
        /// SQL text of the failing statement.
        sql: String,
        /// The underlying engine error.
        cause: Box<DbError>,
    },
}

impl DbError {
    /// The innermost error, unwrapping any script-statement context.
    pub fn root_cause(&self) -> &DbError {
        match self {
            DbError::ScriptStatement { cause, .. } => cause.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::SqlParse(m) => write!(f, "SQL parse error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::TriggerDepth(m) => write!(f, "trigger recursion limit: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::FaultInjected(m) => write!(f, "injected fault: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::ScriptStatement { index, sql, cause } => {
                write!(f, "script statement #{index} (`{sql}`): {cause}")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, DbError>;
