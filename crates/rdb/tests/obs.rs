//! Observability tests: EXPLAIN ANALYZE goldens, histogram bucket math,
//! metrics-text format stability, trace-JSON schema, the slow-query
//! log, and the regression that tracing state never perturbs engine
//! counters.

use std::time::Duration;
use xmlup_rdb::{obs, Database, Value};

/// Collect an EXPLAIN/EXPLAIN ANALYZE result as one string. Goes
/// through the `&mut` statement funnel because `EXPLAIN ANALYZE` over
/// DML executes (and so mutates); the read-only `query` path rejects it.
fn explain(db: &mut Database, sql: &str) -> String {
    let rs = db.query_mut(sql).unwrap();
    rs.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.as_str(),
            other => panic!("EXPLAIN row is not a string: {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Replace every measured duration with `X` so goldens are
/// deterministic: `time=…)` suffixes and the `Execution time:` /
/// `Actual:` trailing times.
fn scrub_times(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("time=") {
        out.push_str(&rest[..i]);
        out.push_str("time=X");
        let tail = &rest[i + "time=".len()..];
        let end = tail.find([')', '\n']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out.lines()
        .map(|l| {
            if l.starts_with("Execution time:") {
                "Execution time: X"
            } else {
                l
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Three-level edge forest: 8 roots, 2 children each, 3 grandchildren
/// each, with the shredded-storage index layout. Row counts are exact
/// so per-operator actuals are predictable.
fn forest_db() -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE n1 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE TABLE n2 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE TABLE n3 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE INDEX n1_id ON n1 (id);
         CREATE INDEX n2_parent ON n2 (parentId);
         CREATE INDEX n3_parent ON n3 (parentId);",
    )
    .unwrap();
    for i in 0..8i64 {
        db.execute(&format!("INSERT INTO n1 VALUES ({i}, 0, {i})"))
            .unwrap();
        for j in 0..2i64 {
            let id2 = 10 + i * 2 + j;
            db.execute(&format!("INSERT INTO n2 VALUES ({id2}, {i}, {j})"))
                .unwrap();
            for k in 0..3i64 {
                let id3 = id2 * 10 + k;
                db.execute(&format!("INSERT INTO n3 VALUES ({id3}, {id2}, {k})"))
                    .unwrap();
            }
        }
    }
    db
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE goldens
// ---------------------------------------------------------------------

#[test]
fn explain_analyze_hash_join_rows_golden() {
    let mut db = forest_db();
    // 4 roots pass the filter -> 8 n2 rows -> 24 n3 rows.
    let plan = explain(
        &mut db,
        "EXPLAIN ANALYZE SELECT n3.id FROM n1, n2, n3 \
         WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 4",
    );
    let expected = "\
Project [id] (actual rows=24 loops=1 time=X)
  HashJoin (n3.parentId = n2.id) (actual rows=24 loops=1 time=X)
    HashJoin (n2.parentId = n1.id) (actual rows=8 loops=1 time=X)
      SeqScan n1 [filter: (n1.num < 4)] (est rows=8) (actual rows=4 loops=1 time=X)
      SeqScan n2 (est rows=16) (actual rows=16 loops=1 time=X)
    SeqScan n3 (est rows=48) (actual rows=48 loops=1 time=X)
Execution time: X";
    assert_eq!(scrub_times(&plan), expected, "raw plan:\n{plan}");
}

#[test]
fn explain_analyze_index_probe_loop_counts() {
    let mut db = forest_db();
    db.run_script(
        "CREATE TABLE marks (id INTEGER);
         INSERT INTO marks VALUES (1);
         INSERT INTO marks VALUES (2);
         INSERT INTO marks VALUES (5);",
    )
    .unwrap();
    // The IN-subquery probe issues one index lookup per distinct key:
    // loops counts the probes (3), rows the matches (3). The estimate
    // is one row per probe (8 rows over 8 distinct indexed ids).
    let plan = explain(
        &mut db,
        "EXPLAIN ANALYZE SELECT num FROM n1 WHERE id IN (SELECT id FROM marks)",
    );
    let expected = "\
Project [num] (actual rows=3 loops=1 time=X)
  IndexScan n1 (id IN (subquery)) (est rows=1) (actual rows=3 loops=3 time=X)
Execution time: X";
    assert_eq!(scrub_times(&plan), expected, "raw plan:\n{plan}");
}

#[test]
fn explain_analyze_in_list_probe_loop_counts() {
    let mut db = forest_db();
    // A literal IN-list (the batched-DML shape `id IN (…)`) probes the
    // index once per listed value: loops counts the probes, and the
    // plan line names the list width.
    let plan = explain(
        &mut db,
        "EXPLAIN ANALYZE SELECT num FROM n1 WHERE id IN (1, 2, 5)",
    );
    let expected = "\
Project [num] (actual rows=3 loops=1 time=X)
  IndexScan n1 (id IN (3 values)) (est rows=1) (actual rows=3 loops=3 time=X)
Execution time: X";
    assert_eq!(scrub_times(&plan), expected, "raw plan:\n{plan}");
}

#[test]
fn in_list_probe_set_is_built_once_per_statement() {
    let db = forest_db();
    // No index on n3.num, so the IN-list runs as a row filter over all
    // 48 n3 rows — the probe set must still be materialized exactly
    // once for the whole scan, not once per row.
    let before = db.stats().in_list_builds;
    let rs = db
        .query("SELECT id FROM n3 WHERE num IN (0, 2, 7, 9)")
        .unwrap();
    assert_eq!(rs.rows.len(), 32, "two of the four values match");
    assert_eq!(
        db.stats().in_list_builds - before,
        1,
        "probe set rebuilt per row instead of per statement"
    );
}

#[test]
fn vectorized_execution_engages_and_matches_row_at_a_time() {
    let mut db = forest_db();
    let sql = "SELECT n3.id FROM n1, n2, n3 \
               WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 4";
    let before = db.stats().exec_batches;
    let rs = db.query(sql).unwrap();
    // The plain query runs the batch pipeline; its 24-row answer equals
    // the row-at-a-time actuals pinned by the EXPLAIN ANALYZE golden
    // (profiling forces the per-row path on the same plan).
    assert_eq!(rs.rows.len(), 24);
    assert!(
        db.stats().exec_batches > before,
        "plain query must pull row batches"
    );
    let plan = explain(&mut db, &format!("EXPLAIN ANALYZE {sql}"));
    assert!(plan.contains("actual rows=24"), "{plan}");
}

#[test]
fn explain_analyze_dml_reports_actuals() {
    let mut db = forest_db();
    // Orphan two n2 rows so the garbage-collecting NOT IN delete has
    // real work, then ANALYZE it: the plan lines must match the plain
    // EXPLAIN, plus one Actual: summary line (DML executes for real).
    db.execute("DELETE FROM n1 WHERE id = 3").unwrap();
    let plain = explain(
        &mut db,
        "EXPLAIN DELETE FROM n2 WHERE parentId NOT IN (SELECT id FROM n1)",
    );
    let analyzed = explain(
        &mut db,
        "EXPLAIN ANALYZE DELETE FROM n2 WHERE parentId NOT IN (SELECT id FROM n1)",
    );
    let (head, last) = analyzed.rsplit_once('\n').unwrap();
    assert_eq!(head, plain, "ANALYZE must render the same plan tree");
    let scrubbed = scrub_times(last);
    assert!(
        scrubbed.starts_with("Actual: rows=2 scanned="),
        "two orphaned children deleted: {last}"
    );
    assert!(scrubbed.contains("triggers="), "{last}");
    assert!(scrubbed.ends_with("time=X"), "{last}");
    // And the delete really happened.
    let left = db.query("SELECT COUNT(*) FROM n2").unwrap();
    assert_eq!(left.scalar(), Some(&Value::Int(14)));
}

#[test]
fn plain_explain_has_no_actuals() {
    let mut db = forest_db();
    let plan = explain(
        &mut db,
        "EXPLAIN SELECT n3.id FROM n1, n2, n3 \
         WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 4",
    );
    assert!(!plan.contains("actual"), "{plan}");
    assert!(!plan.contains("est rows"), "{plan}");
    assert!(!plan.contains("Execution time"), "{plan}");
}

// ---------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------

#[test]
fn histogram_bucket_math() {
    assert_eq!(obs::Histogram::bucket_index(0), 0);
    assert_eq!(obs::Histogram::bucket_index(1), 0);
    assert_eq!(obs::Histogram::bucket_index(2), 1);
    assert_eq!(obs::Histogram::bucket_index(3), 1);
    assert_eq!(obs::Histogram::bucket_index(4), 2);
    assert_eq!(obs::Histogram::bucket_index(1023), 9);
    assert_eq!(obs::Histogram::bucket_index(1024), 10);
    assert_eq!(obs::Histogram::bucket_index(u64::MAX), 63);
    assert_eq!(obs::Histogram::bucket_bound(0), 1);
    assert_eq!(obs::Histogram::bucket_bound(1), 3);
    assert_eq!(obs::Histogram::bucket_bound(9), 1023);
    assert_eq!(obs::Histogram::bucket_bound(63), u64::MAX);
    // Every value lands in a bucket whose bound contains it.
    for ns in [0u64, 1, 2, 7, 100, 4096, 1 << 40] {
        let i = obs::Histogram::bucket_index(ns);
        assert!(ns <= obs::Histogram::bucket_bound(i));
        if i > 0 {
            assert!(ns > obs::Histogram::bucket_bound(i - 1));
        }
    }

    let mut h = obs::Histogram::new();
    for ns in [10u64, 20, 30, 40, 1000] {
        h.record(ns);
    }
    assert_eq!(h.count(), 5);
    assert_eq!(h.sum_ns(), 1100);
    assert_eq!(h.max_ns(), 1000);
    // Median sample (30) is in bucket 4 (16..=31): p50 reports its bound.
    assert_eq!(h.p50_ns(), 31);
    // p95 rank is the 5th sample (1000), clamped to the exact max.
    assert_eq!(h.p95_ns(), 1000);
    assert_eq!(h.quantile_ns(0.0), 15, "rank clamps to the first sample");
    let empty = obs::Histogram::new();
    assert_eq!(empty.p50_ns(), 0);
    assert_eq!(empty.p95_ns(), 0);
}

// ---------------------------------------------------------------------
// Metrics registry and Prometheus text
// ---------------------------------------------------------------------

#[test]
fn metrics_text_format_is_stable() {
    let db = forest_db();
    db.query("SELECT COUNT(*) FROM n2").unwrap();
    let text = db.metrics_text();
    // Counter families the dashboards depend on.
    for family in [
        "rdb_rows_scanned_total",
        "rdb_plan_cache_hits_total",
        "rdb_plan_cache_misses_total",
        "rdb_recovered_txns_total",
        "rdb_wal_replayed_bytes_total",
        "rdb_recovery_micros_total",
        "rdb_tables",
        "rdb_plan_cache_entries",
        "rdb_uptime_seconds",
        "rdb_recovery_timestamp_seconds",
        "rdb_statement_tracking_enabled",
        "rdb_tracked_statements",
        "rdb_statement_store_evictions_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing TYPE for {family}:\n{text}"
        );
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "missing HELP for {family}:\n{text}"
        );
    }
    // Exposition-format shape: every line is HELP, TYPE, or a sample;
    // HELP/TYPE appear exactly once per family.
    let mut seen_type: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().unwrap();
            assert!(!seen_type.contains(&family), "duplicate TYPE for {family}");
            seen_type.push(family);
            let kind = rest.split_whitespace().nth(1).unwrap();
            assert!(kind == "counter" || kind == "gauge", "{line}");
        } else if !line.starts_with("# HELP ") && !line.is_empty() {
            let (name_part, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample line has no value: {line}"));
            assert!(value.parse::<u64>().is_ok(), "non-numeric sample: {line}");
            assert!(!name_part.is_empty());
        }
    }
    // Gauges reflect live state.
    assert!(text.contains("rdb_tables 3"), "{text}");
    // Phase-labeled series render with a label set when present.
    obs::set_tracing(true);
    db.query("SELECT COUNT(*) FROM n1").unwrap();
    let traced = db.metrics_text();
    obs::set_tracing(false);
    obs::clear_trace();
    assert!(
        traced.contains("rdb_phase_spans_total{phase=\"sql.execute\"}"),
        "{traced}"
    );
}

// ---------------------------------------------------------------------
// Trace JSON schema
// ---------------------------------------------------------------------

#[test]
fn trace_json_schema_and_lifecycle() {
    obs::clear_trace();
    obs::set_tracing(true);
    let db = forest_db();
    db.query("SELECT id FROM n1 WHERE id = 3").unwrap();
    obs::set_tracing(false);

    let events = obs::trace_events();
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| e.name == "sql.execute"));
    assert!(events.iter().any(|e| e.name == "sql.parse"));
    assert!(events.iter().any(|e| e.name == "sql.plan"));

    let json = obs::trace_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    // One complete-event object per buffered event, chrome schema.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), events.len());
    assert_eq!(json.matches("\"pid\":1").count(), events.len());
    assert!(json.contains("\"name\":\"sql.execute\""));
    assert!(json.contains("\"ts\":"));
    assert!(json.contains("\"dur\":"));

    // Aggregation feeds the phase table.
    let stats = obs::phase_stats();
    let exec = stats.iter().find(|s| s.name == "sql.execute").unwrap();
    assert!(exec.count >= 1);
    assert!(exec.p50_ns <= exec.p95_ns || exec.p95_ns == exec.max_ns);
    assert!(exec.p95_ns <= exec.max_ns.max(1));
    assert!(obs::render_phase_table().contains("sql.execute"));

    obs::clear_trace();
    assert!(obs::trace_events().is_empty());
    assert_eq!(obs::trace_json(), "[]");
    assert_eq!(obs::trace_events_dropped(), 0);
}

// ---------------------------------------------------------------------
// Tracing state must not perturb engine counters
// ---------------------------------------------------------------------

#[test]
fn tracing_state_leaves_counters_identical() {
    let script = "SELECT n3.id FROM n1, n2, n3 \
                  WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 4;\
                  SELECT num FROM n1 WHERE id = 5;\
                  DELETE FROM n3 WHERE parentId = 11;";
    let run = |traced: bool| {
        obs::set_tracing(traced);
        let mut db = forest_db();
        db.reset_stats();
        db.run_script(script).unwrap();
        db.run_script(script).unwrap(); // second pass hits the plan cache
        obs::set_tracing(false);
        obs::clear_trace();
        db.stats()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "tracing must not change any engine counter");
}

// ---------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------

#[test]
fn slow_query_log_records_sql_phases_and_rows() {
    let mut db = forest_db();
    // Threshold zero: everything is "slow".
    db.set_slow_query_threshold(Some(Duration::ZERO));
    db.query("SELECT COUNT(*) FROM n2").unwrap();
    db.execute("DELETE FROM n3 WHERE parentId = 10").unwrap();
    let slow = db.take_slow_queries();
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].sql, "SELECT COUNT(*) FROM n2");
    assert!(slow[0].total_ns > 0);
    assert!(
        slow[0].phases.iter().any(|(p, _)| *p == "sql.execute"),
        "phase breakdown missing sql.execute: {:?}",
        slow[0].phases
    );
    assert!(slow[0].rows_touched >= 16, "scanned all of n2");
    // Statement attribution: outside a session the id is 0, but the
    // fingerprint always joins against `rdb_statements`.
    assert_eq!(slow[0].session_id, 0, "no session on a bare Database");
    assert_ne!(slow[0].fingerprint, 0, "fingerprint computed at parse time");
    assert_eq!(slow[0].snapshot_epoch, None, "autocommit pins no snapshot");
    assert_eq!(slow[1].sql, "DELETE FROM n3 WHERE parentId = 10");
    assert!(slow[1].rows_touched >= 3, "deleted three grandchildren");
    // take_ drains the log.
    assert!(db.take_slow_queries().is_empty());
    // Raising the threshold stops recording.
    db.set_slow_query_threshold(Some(Duration::from_secs(3600)));
    db.query("SELECT COUNT(*) FROM n1").unwrap();
    assert!(db.take_slow_queries().is_empty());
    // Disabling entirely costs nothing and records nothing.
    db.set_slow_query_threshold(None);
    db.query("SELECT COUNT(*) FROM n1").unwrap();
    assert!(db.take_slow_queries().is_empty());
}
