//! Transaction semantics: BEGIN/COMMIT/ROLLBACK, savepoints, autocommit
//! statement atomicity, trigger-aware undo, DDL undo, fault injection,
//! and `run_script` error context.

use xmlup_rdb::{Database, DbError, ExecResult, Table};

fn db_with_items() -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Item (id INTEGER, qty INTEGER, name VARCHAR(20));
         CREATE INDEX item_id ON Item (id);
         INSERT INTO Item VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c');",
    )
    .unwrap();
    db
}

/// Deep snapshot of every table (slots, tombstones, index buckets).
fn snapshot(db: &Database) -> Vec<(String, Table)> {
    db.table_names()
        .into_iter()
        .map(|n| {
            let t = db.table(&n).unwrap().clone();
            (n, t)
        })
        .collect()
}

fn ids(db: &mut Database) -> Vec<i64> {
    db.query("SELECT id FROM Item ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].clone().as_int().unwrap())
        .collect()
}

#[test]
fn commit_keeps_changes() {
    let mut db = db_with_items();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Item VALUES (4, 40, 'd')").unwrap();
    db.execute("DELETE FROM Item WHERE id = 1").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(ids(&mut db), vec![2, 3, 4]);
    assert_eq!(db.stats().txn_commits, 4); // 3 autocommitted loads + COMMIT
}

#[test]
fn rollback_restores_dml_exactly() {
    let mut db = db_with_items();
    let before = snapshot(&db);
    let next_id_before = db.peek_next_id();
    db.execute("BEGIN TRANSACTION").unwrap();
    db.execute("INSERT INTO Item VALUES (4, 40, 'd')").unwrap();
    db.execute("UPDATE Item SET qty = 99 WHERE id = 2").unwrap();
    db.execute("DELETE FROM Item WHERE id = 1").unwrap();
    db.allocate_ids(17);
    db.execute("ROLLBACK").unwrap();
    assert_eq!(snapshot(&db), before, "byte-identical restore");
    assert_eq!(db.peek_next_id(), next_id_before, "next_id restored");
    assert!(!db.in_transaction());
    assert!(db.stats().txn_rollbacks >= 1);
    assert!(db.stats().undo_records >= 3);
}

#[test]
fn rollback_restores_index_bucket_order() {
    let mut db = db_with_items();
    // Duplicate ids so one index bucket holds several positions.
    db.execute("INSERT INTO Item VALUES (2, 21, 'b2'), (2, 22, 'b3')")
        .unwrap();
    let before = snapshot(&db);
    db.execute("BEGIN").unwrap();
    // Delete the *middle* occupant of the id=2 bucket, then rollback:
    // the restored bucket must preserve the original ordering.
    db.execute("DELETE FROM Item WHERE qty = 21").unwrap();
    db.execute("UPDATE Item SET id = 7 WHERE qty = 20").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(snapshot(&db), before);
}

#[test]
fn savepoint_partial_rollback() {
    let mut db = db_with_items();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Item VALUES (4, 40, 'd')").unwrap();
    db.execute("SAVEPOINT sp1").unwrap();
    db.execute("INSERT INTO Item VALUES (5, 50, 'e')").unwrap();
    db.execute("ROLLBACK TO sp1").unwrap();
    // Savepoint survives a partial rollback and can be reused.
    db.execute("INSERT INTO Item VALUES (6, 60, 'f')").unwrap();
    db.execute("ROLLBACK TO SAVEPOINT sp1").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4]);
}

#[test]
fn txn_control_errors() {
    let mut db = db_with_items();
    assert!(matches!(db.execute("COMMIT"), Err(DbError::Txn(_))));
    assert!(matches!(db.execute("ROLLBACK"), Err(DbError::Txn(_))));
    assert!(matches!(db.execute("SAVEPOINT s"), Err(DbError::Txn(_))));
    db.execute("BEGIN").unwrap();
    assert!(matches!(db.execute("BEGIN"), Err(DbError::Txn(_))));
    assert!(matches!(
        db.execute("ROLLBACK TO nowhere"),
        Err(DbError::Txn(_))
    ));
    db.execute("ROLLBACK").unwrap();
    assert!(matches!(db.execute("BEGIN WORK"), Ok(ExecResult::Txn)));
    db.execute("COMMIT WORK").unwrap();
}

#[test]
fn autocommit_statement_is_atomic() {
    let mut db = db_with_items();
    let before = snapshot(&db);
    // Second row has the wrong arity: the whole INSERT must vanish even
    // though the first row was already applied.
    let err = db
        .execute("INSERT INTO Item SELECT id + 10, qty, name FROM Item WHERE id = 1 UNION ALL SELECT id, qty FROM Item WHERE id = 2")
        .unwrap_err();
    let _ = err;
    assert_eq!(snapshot(&db), before, "failed statement fully undone");
    assert_eq!(db.undo_log_len(), 0);
}

#[test]
fn trigger_mutations_roll_back_with_statement() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Parent (id INTEGER);
         CREATE TABLE Child (id INTEGER, parentId INTEGER);
         CREATE TABLE Audit (msg VARCHAR(10));
         INSERT INTO Parent VALUES (1), (2);
         INSERT INTO Child VALUES (10, 1), (11, 1), (12, 2);
         CREATE TRIGGER pd AFTER DELETE ON Parent FOR EACH ROW BEGIN
            DELETE FROM Child WHERE parentId = OLD.id;
            INSERT INTO Audit VALUES ('del');
         END;",
    )
    .unwrap();
    let before = snapshot(&db);
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM Parent WHERE id = 1").unwrap();
    assert_eq!(db.table("Child").unwrap().len(), 1, "trigger cascaded");
    assert_eq!(db.table("Audit").unwrap().len(), 1);
    db.execute("ROLLBACK").unwrap();
    assert_eq!(snapshot(&db), before, "trigger-body work undone too");
}

#[test]
fn failed_statement_undoes_its_trigger_work() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Parent (id INTEGER);
         CREATE TABLE Audit (msg VARCHAR(10));
         INSERT INTO Parent VALUES (1), (2);
         CREATE TRIGGER pd AFTER DELETE ON Parent FOR EACH ROW BEGIN
            INSERT INTO Audit VALUES ('del');
         END;",
    )
    .unwrap();
    let before = snapshot(&db);
    // Fault on Audit's 2nd write: the DELETE fires two row triggers, the
    // second insert fails, and the whole statement (both parent deletes
    // + the first audit row) must roll back under autocommit.
    db.fail_on_table_write("Audit", 2);
    let err = db.execute("DELETE FROM Parent").unwrap_err();
    assert!(matches!(err, DbError::FaultInjected(_)), "{err:?}");
    assert_eq!(snapshot(&db), before);
}

#[test]
fn ddl_rolls_back() {
    let mut db = db_with_items();
    db.run_script(
        "CREATE TABLE Keep (id INTEGER);
         CREATE TRIGGER keep_t AFTER DELETE ON Keep FOR EACH ROW BEGIN
            DELETE FROM Item WHERE id = OLD.id;
         END;",
    )
    .unwrap();
    let before = snapshot(&db);
    let triggers_before: Vec<String> = db.triggers().iter().map(|t| t.name.clone()).collect();
    db.execute("BEGIN").unwrap();
    db.run_script(
        "CREATE TABLE Tmp (x INTEGER);
         INSERT INTO Tmp VALUES (1);
         CREATE INDEX tmp_x ON Tmp (x);
         DROP TABLE Keep;
         DROP TABLE Item;
         CREATE TRIGGER ghost AFTER INSERT ON Tmp FOR EACH ROW BEGIN
            DELETE FROM Tmp WHERE x = 0;
         END;",
    )
    .unwrap();
    assert!(db.table("Item").is_none());
    db.execute("ROLLBACK").unwrap();
    assert_eq!(snapshot(&db), before, "tables and contents restored");
    let triggers_after: Vec<String> = db.triggers().iter().map(|t| t.name.clone()).collect();
    assert_eq!(triggers_after, triggers_before, "trigger list restored");
    assert!(db.table("Tmp").is_none(), "created table dropped by undo");
}

#[test]
fn dropped_index_restored_with_table() {
    let mut db = db_with_items();
    db.execute("BEGIN").unwrap();
    db.execute("DROP TABLE Item").unwrap();
    db.execute("ROLLBACK").unwrap();
    let t = db.table("Item").unwrap();
    let ci = t.schema.column_index("id").unwrap();
    assert!(t.has_index(ci), "index came back with the table snapshot");
}

#[test]
fn statement_fault_fires_on_nth_statement() {
    let mut db = db_with_items();
    db.fail_after_statements(2);
    db.execute("INSERT INTO Item VALUES (4, 40, 'd')").unwrap();
    let err = db
        .execute("INSERT INTO Item VALUES (5, 50, 'e')")
        .unwrap_err();
    assert!(matches!(err, DbError::FaultInjected(_)));
    assert!(!db.faults_armed(), "fault is one-shot");
    // Life goes on after the fault.
    db.execute("INSERT INTO Item VALUES (6, 60, 'f')").unwrap();
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4, 6]);
}

#[test]
fn table_write_fault_counts_all_dml_kinds() {
    let mut db = db_with_items();
    db.fail_on_table_write("Item", 3);
    db.execute("INSERT INTO Item VALUES (4, 40, 'd')").unwrap(); // write 1
                                                                 // Writes 2 and 3 within one statement: fails mid-statement, and the
                                                                 // statement rolls back while the previous one stays applied.
    let err = db.execute("DELETE FROM Item WHERE id <= 2").unwrap_err();
    assert!(matches!(err, DbError::FaultInjected(_)));
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4]);
    // UPDATE cell writes tick the same counter.
    db.fail_on_table_write("Item", 2);
    let err = db.execute("UPDATE Item SET qty = 0").unwrap_err();
    assert!(matches!(err, DbError::FaultInjected(_)));
    let qtys: Vec<i64> = db
        .query("SELECT qty FROM Item ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].clone().as_int().unwrap())
        .collect();
    assert_eq!(qtys, vec![10, 20, 30, 40], "partial update rolled back");
}

#[test]
fn api_transactions_match_sql_transactions() {
    let mut db = db_with_items();
    let before = snapshot(&db);
    db.begin().unwrap();
    assert!(db.in_transaction());
    db.execute("DELETE FROM Item").unwrap();
    db.rollback().unwrap();
    assert_eq!(snapshot(&db), before);
    db.begin().unwrap();
    db.savepoint("s").unwrap();
    db.execute("DELETE FROM Item WHERE id = 1").unwrap();
    db.rollback_to("s").unwrap();
    db.commit().unwrap();
    assert_eq!(snapshot(&db), before);
}

#[test]
fn txn_control_rejected_inside_triggers() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE T (id INTEGER);
         INSERT INTO T VALUES (1);
         CREATE TRIGGER bad AFTER DELETE ON T FOR EACH ROW BEGIN
            COMMIT;
         END;",
    )
    .unwrap();
    let err = db.execute("DELETE FROM T").unwrap_err();
    assert!(matches!(err, DbError::Txn(_)), "{err:?}");
    assert_eq!(db.table("T").unwrap().len(), 1, "statement rolled back");
}

#[test]
fn run_script_reports_failing_statement() {
    let mut db = Database::new();
    let err = db
        .run_script(
            "CREATE TABLE T (id INTEGER);
             INSERT INTO T VALUES (1);
             DELETE FROM Ghost WHERE id = 1;
             INSERT INTO T VALUES (2);",
        )
        .unwrap_err();
    match &err {
        DbError::ScriptStatement { index, sql, cause } => {
            assert_eq!(*index, 2);
            assert_eq!(sql, "DELETE FROM Ghost WHERE id = 1");
            assert!(matches!(**cause, DbError::NoSuchTable(_)));
        }
        other => panic!("expected ScriptStatement, got {other:?}"),
    }
    assert!(matches!(err.root_cause(), DbError::NoSuchTable(_)));
    let msg = err.to_string();
    assert!(
        msg.contains("#2") && msg.contains("DELETE FROM Ghost"),
        "{msg}"
    );
    // Under autocommit the preceding statements stay applied.
    assert_eq!(db.table("T").unwrap().len(), 1);
}

#[test]
fn run_script_can_span_a_transaction() {
    let mut db = db_with_items();
    db.run_script(
        "BEGIN;
         DELETE FROM Item WHERE id = 1;
         SAVEPOINT s;
         DELETE FROM Item;
         ROLLBACK TO s;
         COMMIT;",
    )
    .unwrap();
    assert_eq!(ids(&mut db), vec![2, 3]);
}

#[test]
fn undo_records_counted() {
    let mut db = db_with_items();
    db.reset_stats();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM Item").unwrap(); // 3 undo records
    db.execute("ROLLBACK").unwrap();
    let s = db.stats();
    assert_eq!(s.undo_records, 3);
    assert_eq!(s.txn_rollbacks, 1);
    assert_eq!(s.txn_commits, 0);
}
