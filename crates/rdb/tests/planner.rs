//! Planner and Volcano-executor tests: EXPLAIN golden shapes for the
//! paper's workload queries, LIMIT pushdown, plan-slot epoch behaviour,
//! and planned-vs-naive A/B equivalence.

use xmlup_rdb::{Database, Value};

fn explain(db: &mut Database, sql: &str) -> String {
    let rs = db.query(sql).unwrap();
    rs.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.as_str(),
            other => panic!("EXPLAIN row is not a string: {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Edge-table schema shaped like the paper's shredded XML storage:
/// node tables with indexed `id`/`parentId` plus the ASR closure table.
fn edge_db() -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE n1 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE TABLE n2 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE TABLE n3 (id INTEGER, parentId INTEGER, num INTEGER);
         CREATE TABLE asr (id INTEGER, descendant INTEGER, mark BOOLEAN);
         CREATE INDEX n1_id ON n1 (id);
         CREATE INDEX n2_parent ON n2 (parentId);
         CREATE INDEX n3_parent ON n3 (parentId);
         CREATE INDEX asr_id ON asr (id);",
    )
    .unwrap();
    let ins1 = db.prepare("INSERT INTO n1 VALUES ($1, $2, $3)").unwrap();
    let ins2 = db.prepare("INSERT INTO n2 VALUES ($1, $2, $3)").unwrap();
    let ins3 = db.prepare("INSERT INTO n3 VALUES ($1, $2, $3)").unwrap();
    let insa = db.prepare("INSERT INTO asr VALUES ($1, $2, $3)").unwrap();
    for i in 0..40i64 {
        db.execute_prepared(
            &ins1,
            &[Value::Int(i), Value::Int(0), Value::Int(i * 7 % 50)],
        )
        .unwrap();
        for j in 0..4i64 {
            let id2 = i * 4 + j;
            db.execute_prepared(
                &ins2,
                &[Value::Int(id2), Value::Int(i), Value::Int(id2 % 30)],
            )
            .unwrap();
            db.execute_prepared(
                &ins3,
                &[Value::Int(id2 * 2), Value::Int(id2), Value::Int(id2 % 9)],
            )
            .unwrap();
            db.execute_prepared(
                &insa,
                &[Value::Int(i), Value::Int(id2), Value::Bool(id2 % 5 == 0)],
            )
            .unwrap();
        }
    }
    db
}

// ---------------------------------------------------------------------
// EXPLAIN golden shapes
// ---------------------------------------------------------------------

#[test]
fn cascading_delete_children_lookup_uses_index_scan() {
    let mut db = edge_db();
    // The trigger body the translation layer emits for cascading
    // deletes: child lookup by indexed parentId.
    let plan = explain(&mut db, "EXPLAIN DELETE FROM n2 WHERE parentId = 7");
    assert!(
        plan.contains("IndexScan n2 (parentId = 7)"),
        "child delete should probe the parentId index:\n{plan}"
    );
}

#[test]
fn asr_descendant_lookup_uses_index_scan() {
    let mut db = edge_db();
    // ASR maintenance: delete closure rows whose id is named by a
    // marked-descendant subquery — an indexed IN probe, not a scan.
    let plan = explain(
        &mut db,
        "EXPLAIN DELETE FROM asr WHERE id IN (SELECT descendant FROM asr WHERE mark = TRUE)",
    );
    assert!(
        plan.contains("IndexScan asr (id IN (subquery))"),
        "ASR descendant delete should probe the id index:\n{plan}"
    );
    // SELECT-side descendant lookup makes the same choice.
    let plan = explain(
        &mut db,
        "EXPLAIN SELECT num FROM n1 WHERE id IN (SELECT id FROM asr WHERE mark = TRUE)",
    );
    assert!(
        plan.contains("IndexScan n1 (id IN (subquery))"),
        "descendant select should probe the id index:\n{plan}"
    );
}

#[test]
fn garbage_collect_not_in_stays_seq_scan() {
    let mut db = edge_db();
    // `NOT IN` cannot be answered by an index probe; it must remain a
    // sequential scan with the predicate pushed into it.
    let plan = explain(
        &mut db,
        "EXPLAIN DELETE FROM n2 WHERE parentId NOT IN (SELECT id FROM n1)",
    );
    assert!(
        plan.contains("SeqScan n2"),
        "NOT IN delete must fall back to a sequential scan:\n{plan}"
    );
    assert!(!plan.contains("IndexScan"), "no index applies:\n{plan}");
}

#[test]
fn outer_union_join_uses_hash_join() {
    let mut db = edge_db();
    // The outer-union reconstruction shape from the shredder:
    // `FROM Q P, child T WHERE T.parentId = P.C1` with Q a CTE.
    let plan = explain(
        &mut db,
        "EXPLAIN WITH Q1(C1) AS (SELECT id FROM n1 WHERE num < 10) \
         SELECT T.id, T.num FROM Q1 P, n2 T WHERE T.parentId = P.C1",
    );
    assert!(
        plan.contains("HashJoin (T.parentId = P.C1)"),
        "outer-union reconstruction should hash join:\n{plan}"
    );
    assert!(plan.contains("CteScan Q1 AS P"), "{plan}");
    // Three-way chain joins hash at every level.
    let plan = explain(
        &mut db,
        "EXPLAIN SELECT n3.id FROM n1, n2, n3 \
         WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 10",
    );
    assert!(plan.contains("HashJoin (n2.parentId = n1.id)"), "{plan}");
    assert!(plan.contains("HashJoin (n3.parentId = n2.id)"), "{plan}");
    assert!(
        plan.contains("SeqScan n1 [filter: (n1.num < 10)]"),
        "single-binding predicate should be pushed into the n1 scan:\n{plan}"
    );
}

#[test]
fn explain_renders_for_prepared_and_adhoc() {
    let mut db = edge_db();
    // Ad-hoc text.
    let plan = explain(&mut db, "EXPLAIN SELECT id FROM n1 WHERE id = 3");
    assert!(plan.contains("IndexScan n1 (id = 3)"), "{plan}");
    // Prepared with a bound parameter: the key renders as its slot.
    let p = db
        .prepare("EXPLAIN SELECT id FROM n1 WHERE id = $1")
        .unwrap();
    let rs = db.query_prepared(&p, &[Value::Int(3)]).unwrap();
    let text = rs
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            other => panic!("{other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("IndexScan n1 (id = $1)"), "{text}");
}

#[test]
fn explain_shapes_for_sort_limit_union_aggregate() {
    let mut db = edge_db();
    let plan = explain(
        &mut db,
        "EXPLAIN (SELECT id FROM n1) UNION ALL (SELECT id FROM n2) ORDER BY id DESC LIMIT 5",
    );
    assert!(plan.contains("Limit 5"), "{plan}");
    assert!(plan.contains("Sort [#1 DESC]"), "{plan}");
    assert!(plan.contains("UnionAll"), "{plan}");
    let plan = explain(&mut db, "EXPLAIN SELECT COUNT(*), MAX(num) FROM n2");
    assert!(plan.contains("Aggregate [COUNT(*), MAX(num)]"), "{plan}");
    let plan = explain(&mut db, "EXPLAIN SELECT DISTINCT parentId FROM n2");
    assert!(plan.contains("Distinct"), "{plan}");
}

// ---------------------------------------------------------------------
// LIMIT pushdown
// ---------------------------------------------------------------------

#[test]
fn limit_one_scans_few_rows() {
    let mut db = edge_db(); // n3 holds 160 rows
    db.reset_stats();
    let rs = db.query("SELECT id FROM n3 LIMIT 1").unwrap();
    assert_eq!(rs.rows.len(), 1);
    let scanned = db.stats().rows_scanned;
    assert!(
        scanned <= 2,
        "LIMIT 1 should stop the scan after the first row, scanned {scanned}"
    );
    // An ORDER BY blocks the pushdown: every row must be seen to sort.
    db.reset_stats();
    db.query("SELECT id FROM n3 ORDER BY num LIMIT 1").unwrap();
    assert!(
        db.stats().rows_scanned >= 160,
        "ORDER BY LIMIT must still scan everything, scanned {}",
        db.stats().rows_scanned
    );
}

#[test]
fn limit_zero_returns_nothing() {
    let mut db = edge_db();
    db.reset_stats();
    let rs = db.query("SELECT id FROM n3 LIMIT 0").unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(db.stats().rows_scanned, 0);
}

// ---------------------------------------------------------------------
// Plan caching across executions and DDL
// ---------------------------------------------------------------------

#[test]
fn repeated_select_compiles_once() {
    let mut db = edge_db();
    db.reset_stats();
    for _ in 0..5 {
        db.query("SELECT id FROM n1 WHERE id = 3").unwrap();
    }
    assert_eq!(
        db.stats().plans_built,
        1,
        "same SQL text should reuse the cached physical plan"
    );
}

#[test]
fn ddl_forces_replan_and_new_access_path() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE t (id INTEGER, num INTEGER);
         INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);",
    )
    .unwrap();
    let plan = explain(&mut db, "EXPLAIN SELECT num FROM t WHERE id = 2");
    assert!(plan.contains("SeqScan t"), "no index yet:\n{plan}");
    let sql = "SELECT num FROM t WHERE id = 2";
    assert_eq!(db.query(sql).unwrap().rows, vec![vec![Value::Int(20)]]);
    db.reset_stats();
    db.query(sql).unwrap();
    assert_eq!(db.stats().plans_built, 0, "still cached");
    // DDL bumps the schema epoch; the next execution replans and now
    // picks the index.
    db.execute("CREATE INDEX t_id ON t (id)").unwrap();
    db.reset_stats();
    assert_eq!(db.query(sql).unwrap().rows, vec![vec![Value::Int(20)]]);
    assert_eq!(db.stats().plans_built, 1, "DDL must invalidate the plan");
    assert_eq!(db.stats().index_scans, 1, "replanned query uses the index");
    let plan = explain(&mut db, "EXPLAIN SELECT num FROM t WHERE id = 2");
    assert!(plan.contains("IndexScan t (id = 2)"), "{plan}");
}

#[test]
fn prepared_statement_replans_after_ddl() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE t (id INTEGER, num INTEGER);
         INSERT INTO t VALUES (1, 10), (2, 20);",
    )
    .unwrap();
    let p = db.prepare("SELECT num FROM t WHERE id = $1").unwrap();
    assert_eq!(
        db.query_prepared(&p, &[Value::Int(2)]).unwrap().rows,
        vec![vec![Value::Int(20)]]
    );
    db.execute("CREATE INDEX t_id ON t (id)").unwrap();
    db.reset_stats();
    // The handle survives the DDL and its next execution replans onto
    // the new index.
    assert_eq!(
        db.query_prepared(&p, &[Value::Int(2)]).unwrap().rows,
        vec![vec![Value::Int(20)]]
    );
    assert_eq!(db.stats().plans_built, 1);
    assert_eq!(db.stats().index_scans, 1);
    db.reset_stats();
    db.query_prepared(&p, &[Value::Int(1)]).unwrap();
    assert_eq!(db.stats().plans_built, 0, "replanned slot is reused");
}

// ---------------------------------------------------------------------
// Planned vs naive A/B equivalence
// ---------------------------------------------------------------------

#[test]
fn planned_results_match_naive_interpretation() {
    let queries = [
        "SELECT id, num FROM n1 WHERE num < 25 ORDER BY id",
        "SELECT n2.id FROM n1, n2 WHERE n2.parentId = n1.id AND n1.num < 10 ORDER BY n2.id",
        "SELECT n3.id FROM n1, n2, n3 \
         WHERE n2.parentId = n1.id AND n3.parentId = n2.id AND n1.num < 20 ORDER BY n3.id",
        "SELECT id FROM n2 WHERE parentId NOT IN (SELECT id FROM n1 WHERE num < 25) ORDER BY id",
        "SELECT num FROM n1 WHERE id IN (SELECT id FROM asr WHERE mark = TRUE) ORDER BY num, id",
        "SELECT COUNT(*), MIN(num), MAX(num), SUM(num) FROM n2 WHERE parentId < 12",
        "SELECT DISTINCT parentId FROM n3 ORDER BY parentId DESC LIMIT 7",
        "WITH Q1(C1) AS (SELECT id FROM n1 WHERE num < 15) \
         SELECT T.id, T.num FROM Q1 P, n2 T WHERE T.parentId = P.C1 ORDER BY T.id",
        "(SELECT id FROM n1 WHERE num < 5) UNION ALL (SELECT id FROM n2 WHERE num < 5) ORDER BY 1",
        "SELECT A.id, B.id FROM n2 A, n2 B WHERE A.parentId = B.parentId AND A.id < B.id \
         ORDER BY A.id, B.id LIMIT 20",
        "SELECT id FROM n1 WHERE EXISTS (SELECT * FROM n2 WHERE num > 28) ORDER BY id LIMIT 3",
        "SELECT id, num FROM n2 ORDER BY num DESC, id LIMIT 9",
    ];
    let planned = edge_db();
    let mut naive = edge_db();
    naive.set_planner_naive(true);
    for sql in queries {
        let a = planned.query(sql).unwrap();
        let b = naive.query(sql).unwrap();
        assert_eq!(a.columns, b.columns, "columns diverge for `{sql}`");
        assert_eq!(a.rows, b.rows, "rows diverge for `{sql}`");
    }
    // The planned side actually used its machinery.
    let s = planned.stats();
    assert!(s.hash_join_builds > 0, "no hash joins built: {s:?}");
    assert!(s.predicates_pushed > 0, "no predicates pushed: {s:?}");
    assert!(s.index_scans > 0, "no index scans chosen: {s:?}");
    // The naive side still hash joins (the interpreter did) but never
    // pushes predicates or chooses index scans.
    let s = naive.stats();
    assert!(s.hash_join_builds > 0);
    assert_eq!(s.predicates_pushed, 0);
    assert_eq!(s.index_scans, 0);
}

#[test]
fn planner_errors_match_interpreter_shapes() {
    let db = edge_db();
    // Unknown table / column errors still surface from planning.
    assert!(db.query("SELECT * FROM nosuch").is_err());
    assert!(db.query("SELECT nosuch FROM n1").is_err());
    assert!(db
        .query("SELECT id FROM n1, n2 WHERE num = 1")
        .unwrap_err()
        .to_string()
        .contains("ambiguous"));
    assert!(db
        .query("SELECT id FROM n1 A, n2 A")
        .unwrap_err()
        .to_string()
        .contains("duplicate binding"));
    assert!(db
        .query("SELECT id FROM n1 ORDER BY 99")
        .unwrap_err()
        .to_string()
        .contains("out of range"));
    // Non-boolean WHERE must still error even though the planner pushes
    // the predicate into the scan.
    assert!(db
        .query("SELECT id FROM n1 WHERE 1")
        .unwrap_err()
        .to_string()
        .contains("expected boolean"));
}

#[test]
fn trigger_cascade_unchanged_by_planner() {
    // The cascading-delete path (DML + triggers + ASR bookkeeping) must
    // behave identically: same survivors, same firing counts.
    let script = "CREATE TABLE parent (id INTEGER);
         CREATE TABLE child (id INTEGER, parentId INTEGER);
         CREATE INDEX c_parent ON child (parentId);
         CREATE TRIGGER cas AFTER DELETE ON parent FOR EACH ROW BEGIN
           DELETE FROM child WHERE parentId = OLD.id;
         END;
         INSERT INTO parent VALUES (1), (2), (3);
         INSERT INTO child VALUES (10, 1), (11, 1), (12, 2), (13, 3);";
    let run = |naive: bool| {
        let mut db = Database::new();
        if naive {
            db.set_planner_naive(true);
        }
        db.run_script(script).unwrap();
        db.execute("DELETE FROM parent WHERE id = 1").unwrap();
        let left = db.query("SELECT id FROM child ORDER BY id").unwrap();
        (
            left.rows,
            db.stats().trigger_firings,
            db.stats().rows_deleted,
        )
    };
    assert_eq!(run(false), run(true));
}
